// Thin RAII wrappers over TCP, UDP and UNIX-domain sockets.
//
// Two construction paths matter for this project:
//  * normal bind/listen/connect, and
//  * adoption of an already-open descriptor (`fromFd`), which is how a
//    Socket Takeover recipient resumes serving on inherited sockets.
#pragma once

#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <system_error>

#include "netcore/fd_guard.h"
#include "netcore/result.h"
#include "netcore/socket_addr.h"

namespace zdr {

class RecvBatch;
class SendBatch;

// Options applied at bind time.
struct BindOptions {
  bool reuseAddr = true;
  // SO_REUSEPORT: multiple sockets may bind the same (ip, port); the
  // kernel hashes incoming packets/SYNs across the socket ring. This is
  // the exact mechanism whose "flux" during naive restarts the paper's
  // Figure 2d measures.
  bool reusePort = false;
  bool nonBlocking = true;
};

namespace detail {
// Shared fd-level helpers.
void setNonBlocking(int fd, bool enabled);
void setCloExec(int fd);
int getSoError(int fd);
SocketAddr localAddrOf(int fd);
}  // namespace detail

// A connected (or connecting) TCP stream socket.
class TcpSocket {
 public:
  TcpSocket() = default;
  // Adopts an already-open connected/accepted socket fd.
  static TcpSocket fromFd(FdGuard fd);
  // Starts a non-blocking connect; completion is signalled by kEvWrite,
  // after which `connectError()` reports SO_ERROR.
  static TcpSocket connect(const SocketAddr& peer, std::error_code& ec);

  [[nodiscard]] int fd() const noexcept { return fd_.get(); }
  [[nodiscard]] bool valid() const noexcept { return fd_.valid(); }

  // Returns bytes read; 0 on orderly EOF. ec set on error (EAGAIN
  // included — callers in the event loop treat EAGAIN as "wait").
  size_t read(std::span<std::byte> buf, std::error_code& ec);
  size_t write(std::span<const std::byte> buf, std::error_code& ec);

  // Scatter read across several buffers in one readv(2) syscall.
  size_t readv(std::span<const iovec> iov, std::error_code& ec);
  // Gather write in one sendmsg(2) (MSG_NOSIGNAL, like write).
  // Injected short-write faults apply to the *total* byte count, so
  // message-level truncation semantics match the scalar write path.
  size_t writev(std::span<const iovec> iov, std::error_code& ec);

  // Relay fast path: splice(2) between this socket and a pipe end.
  // Bytes never cross userspace, so these bypass fault injection by
  // construction — relay callers must route fds with an armed fault
  // plan through the copying pump instead (Connection does). Returns
  // bytes moved; 0 with ec clear means orderly EOF (spliceIn only).
  size_t spliceIn(int pipeWr, size_t max, std::error_code& ec);   // socket→pipe
  size_t spliceOut(int pipeRd, size_t max, std::error_code& ec);  // pipe→socket

  // SO_ZEROCOPY opt-in; false when the kernel refuses (old kernel).
  bool enableZeroCopy() noexcept;
  // MSG_ZEROCOPY send. On success with `pinned` set true the kernel
  // holds references into `buf`: the caller must keep the memory
  // byte-stable until the errqueue completion for this send's sequence
  // number arrives (one seq per successful >0-byte send, starting at 0
  // after enableZeroCopy). When the kernel rejects the zerocopy send
  // (ENOBUFS), falls back to a plain copying send in the same call and
  // reports pinned=false.
  size_t sendZeroCopy(std::span<const std::byte> buf, bool& pinned,
                      std::error_code& ec);

  [[nodiscard]] std::error_code connectError() const;
  void shutdownWrite() noexcept;
  void setNoDelay(bool enabled);
  void close() noexcept { fd_.reset(); }
  [[nodiscard]] SocketAddr localAddr() const { return detail::localAddrOf(fd_.get()); }
  [[nodiscard]] SocketAddr peerAddr() const;
  // Relinquishes the fd (e.g. to hand it to another owner).
  FdGuard takeFd() noexcept { return std::move(fd_); }

 private:
  explicit TcpSocket(FdGuard fd) : fd_(std::move(fd)) {}
  FdGuard fd_;
};

// Result of draining a socket's error queue of MSG_ZEROCOPY completion
// notifications. Completions are reported as inclusive seq ranges; the
// kernel delivers them in order for TCP, so a high-water mark suffices.
struct ZeroCopyReap {
  bool any = false;         // at least one completion drained
  uint32_t highestSeq = 0;  // highest completed sequence (valid iff any)
  bool fatal = false;       // errqueue held a non-zerocopy error
};

// Drains MSG_ERRQUEUE on `fd`. Must run on kEvError *before* treating
// the event as fatal: zerocopy completions arrive via the error queue
// with SO_ERROR still 0. Bumps zcCompletions / zcCopiedCompletions.
ZeroCopyReap reapZeroCopyCompletions(int fd) noexcept;

// A listening TCP socket.
class TcpListener {
 public:
  TcpListener() = default;
  // Binds and listens; throws std::system_error on failure.
  TcpListener(const SocketAddr& addr, const BindOptions& opts = {},
              int backlog = 128);
  // Adopts an inherited listening socket (Socket Takeover recipient).
  static TcpListener fromFd(FdGuard fd);

  [[nodiscard]] int fd() const noexcept { return fd_.get(); }
  [[nodiscard]] bool valid() const noexcept { return fd_.valid(); }
  // The actual bound address (resolves port 0 to the kernel pick).
  [[nodiscard]] SocketAddr localAddr() const { return detail::localAddrOf(fd_.get()); }

  // Accepts one connection; empty optional on EAGAIN, ec set otherwise.
  std::optional<TcpSocket> accept(std::error_code& ec);

  FdGuard takeFd() noexcept { return std::move(fd_); }
  void close() noexcept { fd_.reset(); }

 private:
  explicit TcpListener(FdGuard fd) : fd_(std::move(fd)) {}
  FdGuard fd_;
};

// A UDP socket (bound and/or connected).
class UdpSocket {
 public:
  UdpSocket() = default;
  // Binds; throws on failure. SO_REUSEPORT in `opts` enables the
  // kernel socket-ring load spreading discussed in §4.1.
  explicit UdpSocket(const SocketAddr& addr, const BindOptions& opts = {});
  // Unbound socket for pure senders.
  static UdpSocket unbound();
  static UdpSocket fromFd(FdGuard fd);

  [[nodiscard]] int fd() const noexcept { return fd_.get(); }
  [[nodiscard]] bool valid() const noexcept { return fd_.valid(); }
  [[nodiscard]] SocketAddr localAddr() const { return detail::localAddrOf(fd_.get()); }

  size_t sendTo(std::span<const std::byte> buf, const SocketAddr& peer,
                std::error_code& ec);
  // Returns bytes received; `from` is filled in. EAGAIN → ec set.
  size_t recvFrom(std::span<std::byte> buf, SocketAddr& from,
                  std::error_code& ec);

  // Batched datagram plane (see udp_batch.h). recvMany fills `batch`
  // with up to batch.maxBatch() datagrams in one recvmmsg(2) — or a
  // scalar recvfrom loop under ZDR_NO_BATCHED_UDP — applies per-element
  // fault fates (drop/duplicate/truncate), and returns the surviving
  // count. ec is set when the kernel had nothing (EAGAIN) or errored; a
  // return of 0 with ec clear means data arrived but every element was
  // dropped by fault injection, so level-triggered callers keep
  // draining on `!ec`.
  size_t recvMany(RecvBatch& batch, std::error_code& ec);
  // Flushes every staged datagram in one sendmmsg(2) (scalar sendto
  // loop under ZDR_NO_BATCHED_UDP) and clears the batch. Returns the
  // number of staged datagrams handed to the kernel — an element
  // dropped by fault injection still counts as sent, matching sendTo.
  // On error, returns the wire datagrams out before the failure.
  size_t sendMany(SendBatch& batch, std::error_code& ec);

  FdGuard takeFd() noexcept { return std::move(fd_); }
  void close() noexcept { fd_.reset(); }

 private:
  explicit UdpSocket(FdGuard fd) : fd_(std::move(fd)) {}
  FdGuard fd_;
};

// UNIX-domain stream sockets: the Socket Takeover control channel.
class UnixSocket {
 public:
  UnixSocket() = default;
  static UnixSocket fromFd(FdGuard fd);
  // Blocking connect to a filesystem path.
  static UnixSocket connect(const std::string& path, std::error_code& ec);

  [[nodiscard]] int fd() const noexcept { return fd_.get(); }
  [[nodiscard]] bool valid() const noexcept { return fd_.valid(); }
  size_t read(std::span<std::byte> buf, std::error_code& ec);
  size_t write(std::span<const std::byte> buf, std::error_code& ec);
  void setNonBlocking(bool enabled) { detail::setNonBlocking(fd_.get(), enabled); }
  void close() noexcept { fd_.reset(); }
  FdGuard takeFd() noexcept { return std::move(fd_); }

 private:
  explicit UnixSocket(FdGuard fd) : fd_(std::move(fd)) {}
  FdGuard fd_;
};

class UnixListener {
 public:
  UnixListener() = default;
  // Binds to `path`, unlinking any stale socket file first.
  explicit UnixListener(const std::string& path, int backlog = 16);

  [[nodiscard]] int fd() const noexcept { return fd_.get(); }
  [[nodiscard]] bool valid() const noexcept { return fd_.valid(); }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  std::optional<UnixSocket> accept(std::error_code& ec);
  void close() noexcept { fd_.reset(); }

 private:
  FdGuard fd_;
  std::string path_;
};

// Connected socketpair(2) — in-process stand-in for a UNIX channel.
std::pair<UnixSocket, UnixSocket> unixSocketPair();

}  // namespace zdr
