// TimerQueue: the pluggable timer core under EventLoop.
//
// Two implementations:
//  * TimerWheel — hierarchical timing wheel (4 levels × 256 slots at
//    1 ms granularity): O(1) arm, cancel and fire regardless of how
//    many timers are pending, which is what a million idle-connection
//    timeouts need. The default.
//  * TimerHeap  — the original binary-heap queue, kept as the
//    `ZDR_NO_TIMER_WHEEL=1` fallback (kill-switch idiom, io_stats.h).
//
// Both preserve the EventLoop timer contract pinned by the regression
// tests: a periodic timer is re-armed BEFORE its callback runs (so
// cancelling it from inside the callback stops it for good), a fired
// one-shot leaves the bookkeeping before its callback runs (so
// cancelling yourself is a no-op), and cancellation from inside any
// firing callback — including for timers due in the same batch — is
// safe.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace zdr {

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;
using Duration = std::chrono::milliseconds;

// Monotonic counters for the timer.wheel.* metrics family and the
// engine bench. `cascades` counts entries re-filed between wheel
// levels; `compactions` counts heap rebuilds (each impl leaves the
// other's counter at zero).
struct TimerQueueStats {
  uint64_t armed = 0;
  uint64_t cancelled = 0;
  uint64_t fired = 0;
  uint64_t cascades = 0;
  uint64_t compactions = 0;
};

class TimerQueue {
 public:
  using TimerId = uint64_t;
  using Callback = std::function<void()>;
  // Dispatch hook: EventLoop routes each firing through its observer
  // instrumentation. The queue guarantees the Callback reference stays
  // valid for the duration of the call even if the callback cancels or
  // re-arms any timer (including itself).
  using FireFn = std::function<void(const char* tag, const Callback& cb)>;

  virtual ~TimerQueue() = default;

  [[nodiscard]] virtual const char* name() const noexcept = 0;
  // Ids are unique per queue and never reused.
  virtual TimerId arm(TimePoint deadline, Duration period, Callback cb,
                      const char* tag) = 0;
  // Returns false if `id` is unknown (already fired one-shot,
  // cancelled, or never armed).
  virtual bool cancel(TimerId id) = 0;
  // Fires everything due at `now`, oldest tick first.
  virtual void advance(TimePoint now, const FireFn& fire) = 0;
  // Milliseconds until the next timer could fire, capped at 100 (the
  // loop's idle tick, which keeps stop() latency bounded).
  [[nodiscard]] virtual int msUntilNext(TimePoint now) const = 0;
  // Armed timers that have neither fired (one-shots) nor been
  // cancelled.
  [[nodiscard]] virtual size_t activeCount() const noexcept = 0;
  // Internal entries, including any dead ones awaiting reclamation
  // (heap only; always == activeCount() for the wheel).
  [[nodiscard]] virtual size_t pendingEntries() const noexcept = 0;
  [[nodiscard]] virtual TimerQueueStats stats() const noexcept = 0;
};

// Hierarchical timing wheel. Deadlines are ms offsets from `epoch`
// (rounded UP, so a timer never fires before its deadline and at most
// ~1 ms after it — within the loop's scheduling slack either way).
// Level n covers deltas [256^n, 256^(n+1)) ms; level 3 tops out at
// 2^32 ms ≈ 49.7 days and longer deadlines are clamped to it.
class TimerWheel final : public TimerQueue {
 public:
  explicit TimerWheel(TimePoint epoch = Clock::now());
  ~TimerWheel() override;

  [[nodiscard]] const char* name() const noexcept override {
    return "wheel";
  }
  TimerId arm(TimePoint deadline, Duration period, Callback cb,
              const char* tag) override;
  bool cancel(TimerId id) override;
  void advance(TimePoint now, const FireFn& fire) override;
  [[nodiscard]] int msUntilNext(TimePoint now) const override;
  [[nodiscard]] size_t activeCount() const noexcept override {
    return byId_.size();
  }
  [[nodiscard]] size_t pendingEntries() const noexcept override {
    return byId_.size();
  }
  [[nodiscard]] TimerQueueStats stats() const noexcept override {
    return stats_;
  }

  // --- synthetic-time test hooks ---
  // Converts a TimePoint to a wheel tick (ceiling ms since epoch).
  [[nodiscard]] uint64_t toMs(TimePoint tp) const noexcept;
  [[nodiscard]] uint64_t floorMs(TimePoint tp) const noexcept;
  [[nodiscard]] uint64_t nowMs() const noexcept { return nowMs_; }
  // Arms at an absolute tick; the same path advance()-armed timers use.
  TimerId armAtMs(uint64_t expireMs, Duration period, Callback cb,
                  const char* tag);
  // Ticks the wheel forward to `targetMs` without a wall clock.
  void advanceToMs(uint64_t targetMs, const FireFn& fire);

 private:
  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 8;
  static constexpr int kSlots = 1 << kSlotBits;  // 256

  struct Entry {
    // hlist-style links: pprev points at whatever points at us (slot
    // head or predecessor's next), so unlink is O(1) with no per-entry
    // slot bookkeeping.
    Entry* next = nullptr;
    Entry** pprev = nullptr;
    uint64_t expireMs = 0;
    Duration period{0};  // zero ⇒ one-shot
    TimerId id = 0;
    Callback cb;
    const char* tag = "timer";
    uint8_t level = 0;
  };

  void link(int level, int slot, Entry* e) noexcept;
  void unlink(Entry* e) noexcept;
  // Files `e` into the level/slot its (expireMs - nowMs_) delta calls
  // for. Callers guarantee expireMs >= nowMs_; an entry due exactly
  // now lands in the level-0 slot the current tick is about to drain
  // (only cascade() produces that case — it runs before the drain).
  void schedule(Entry* e) noexcept;
  void cascade(int level);
  void tick(const FireFn& fire);

  TimePoint epoch_;
  uint64_t nowMs_ = 0;
  Entry* slots_[kLevels][kSlots] = {};
  size_t levelCount_[kLevels] = {};
  std::unordered_map<TimerId, std::unique_ptr<Entry>> byId_;
  TimerId nextId_ = 1;
  TimerQueueStats stats_;
};

// The original binary-heap timer queue (fallback). Cancellation is
// lazy: the alive-set entry goes immediately, the heap entry stays
// until it pops or a compaction sweeps it.
class TimerHeap final : public TimerQueue {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "heap";
  }
  TimerId arm(TimePoint deadline, Duration period, Callback cb,
              const char* tag) override;
  bool cancel(TimerId id) override;
  void advance(TimePoint now, const FireFn& fire) override;
  [[nodiscard]] int msUntilNext(TimePoint now) const override;
  [[nodiscard]] size_t activeCount() const noexcept override {
    return alive_.size();
  }
  [[nodiscard]] size_t pendingEntries() const noexcept override {
    return timers_.size();
  }
  [[nodiscard]] TimerQueueStats stats() const noexcept override {
    return stats_;
  }

 private:
  struct Timer {
    TimePoint deadline;
    Duration period{0};  // zero ⇒ one-shot
    TimerId id = 0;
    Callback cb;
    const char* tag = "timer";
  };
  struct TimerOrder {
    bool operator()(const Timer& a, const Timer& b) const {
      return a.deadline > b.deadline;  // min-heap
    }
  };

  void compact();

  std::priority_queue<Timer, std::vector<Timer>, TimerOrder> timers_;
  // Membership ⇒ alive. Erased on cancel and on one-shot fire, so the
  // set never outgrows the armed-timer count; stale heap entries are
  // skipped on pop and swept by compact() when they dominate.
  std::unordered_set<TimerId> alive_;
  TimerId nextId_ = 1;
  TimerQueueStats stats_;
};

// Honours the ZDR_NO_TIMER_WHEEL kill switch (io_stats.h): wheel by
// default, heap when disabled.
std::unique_ptr<TimerQueue> makeTimerQueue();

}  // namespace zdr
