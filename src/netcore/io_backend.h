// IoBackend: the pluggable readiness/completion core under EventLoop.
//
// EventLoop owns dispatch order, timers and cross-thread posts; the
// backend owns the kernel interface: fd interest registration, the
// blocking wait, and (optionally batched) completion I/O operations.
// Two implementations exist:
//  * EpollBackend    — level-triggered epoll, the default and the
//    fallback. Completion ops are emulated with readiness + one plain
//    syscall per op, so semantics match io_uring exactly at the cost
//    of the syscalls the ring would have batched.
//  * IoUringBackend  — io_uring completion backend: oneshot POLL_ADD
//    re-armed after every completion (exact level-triggered parity
//    with epoll), SQEs batched into one io_uring_enter per wakeup,
//    multishot accept where the kernel supports it, registered
//    buffer/fd support probed and reported but not yet exploited.
//
// Selection: ZDR_IO_BACKEND=epoll|io_uring|auto (see io_stats.h).
// epoll is the default; io_uring requests degrade to epoll with one
// stderr note when the kernel lacks the syscalls (ENOSYS, seccomp) —
// the same graceful-fallback idiom as ZDR_NO_BATCHED_UDP.
#pragma once

#include <cstdint>
#include <vector>

namespace zdr {

// Backend-neutral event mask bits. Numerically identical to both the
// EPOLL* and POLL* constants for these four events (the kernel keeps
// them equal by design; static_asserts in the backend .cpp files pin
// it), so masks pass through either backend unchanged.
inline constexpr uint32_t kEvRead = 0x001;   // EPOLLIN  / POLLIN
inline constexpr uint32_t kEvWrite = 0x004;  // EPOLLOUT / POLLOUT
inline constexpr uint32_t kEvError = 0x008;  // EPOLLERR / POLLERR
inline constexpr uint32_t kEvHup = 0x010;    // EPOLLHUP / POLLHUP

// One fd readiness report out of IoBackend::wait.
struct IoEvent {
  int fd = -1;
  uint32_t events = 0;
};

// Completion-I/O operation kinds (the batched-submit facade).
enum class IoOpKind : uint8_t {
  kRecv = 0,
  kSend = 1,
  kAccept = 2,  // result is the accepted fd; may complete repeatedly
                // (multishot) until cancelled
};

// One submitted operation. Buffers must stay valid until the
// completion for `token` is delivered (or the backend is destroyed).
struct IoOp {
  IoOpKind kind = IoOpKind::kRecv;
  int fd = -1;
  void* buf = nullptr;  // recv target / send source (unused for accept)
  uint32_t len = 0;
  uint64_t token = 0;  // caller-chosen; echoed in the completion
};

// One finished operation. result follows syscall conventions: bytes
// moved (recv/send), the accepted fd (accept), or -errno.
struct IoCompletion {
  uint64_t token = 0;
  int32_t result = 0;
  // Multishot ops set this while the kernel keeps them armed; the last
  // completion of a multishot (or any oneshot) clears it.
  bool more = false;
};

// Probed backend capabilities (io_uring only; epoll reports none).
// kRegisteredBuffers/kRegisteredFds are probed and surfaced for
// introspection but not yet exploited by any op path.
inline constexpr uint32_t kCapSqeBatching = 1u << 0;
inline constexpr uint32_t kCapMultishotAccept = 1u << 1;
inline constexpr uint32_t kCapRegisteredBuffers = 1u << 2;
inline constexpr uint32_t kCapRegisteredFds = 1u << 3;

// Monotonic counters for the engine bench and the loop.backend.*
// metrics family. All syscall counts are the backend's own: consumer
// read()/write() syscalls on the readiness path live in IoStats.
struct IoBackendStats {
  uint64_t waitSyscalls = 0;  // epoll_wait / io_uring_enter calls
  uint64_t opSyscalls = 0;    // syscalls spent emulating ops (epoll
                              // recv/send/accept; always 0 for uring)
  uint64_t sqesSubmitted = 0;  // uring only
  uint64_t cqesReaped = 0;     // uring only
  uint64_t pollRearms = 0;     // uring only: oneshot POLL_ADD re-arms
};

class IoBackend {
 public:
  virtual ~IoBackend() = default;

  [[nodiscard]] virtual const char* name() const noexcept = 0;
  [[nodiscard]] virtual uint32_t capabilities() const noexcept = 0;

  // --- fd readiness interest (level-triggered on both backends) ---
  virtual void addFd(int fd, uint32_t events) = 0;
  virtual void modifyFd(int fd, uint32_t events) = 0;
  virtual void removeFd(int fd) = 0;

  // --- batched completion ops ---
  // Ops are queued here and hit the kernel inside the next wait():
  // io_uring submits the whole batch with the same io_uring_enter that
  // waits; epoll performs one plain syscall per op when the fd turns
  // ready. An fd must not be used for ops and readiness interest at
  // the same time (the epoll emulation owns the fd's registration
  // while ops are pending).
  virtual void submitOp(const IoOp& op) = 0;
  // Cancels a pending (possibly multishot) op; its completion may
  // still arrive if it already fired. Safe on unknown tokens.
  virtual void cancelOp(uint64_t token) = 0;

  // Blocks up to timeoutMs (0 ⇒ just harvest) and appends readiness
  // events and op completions. Returns the number of entries appended.
  virtual int wait(int timeoutMs, std::vector<IoEvent>& events,
                   std::vector<IoCompletion>& completions) = 0;

  // Unblocks a concurrent wait() from another thread.
  virtual void wakeup() noexcept = 0;

  [[nodiscard]] virtual IoBackendStats stats() const noexcept = 0;
};

}  // namespace zdr
