#include "http/message.h"

#include <algorithm>
#include <cctype>

namespace zdr::http {

bool Headers::nameEquals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

void Headers::set(std::string_view name, std::string value) {
  for (auto& [n, v] : entries_) {
    if (nameEquals(n, name)) {
      v = std::move(value);
      return;
    }
  }
  entries_.emplace_back(std::string(name), std::move(value));
}

void Headers::remove(std::string_view name) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const auto& e) {
                                  return nameEquals(e.first, name);
                                }),
                 entries_.end());
}

std::optional<std::string_view> Headers::get(std::string_view name) const {
  for (const auto& [n, v] : entries_) {
    if (nameEquals(n, name)) {
      return std::string_view(v);
    }
  }
  return std::nullopt;
}

std::string_view defaultReason(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 301: return "Moved Permanently";
    case 302: return "Found";
    case 307: return "Temporary Redirect";
    case 379: return kPartialPostReason;
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 408: return "Request Timeout";
    case 500: return "Internal Server Error";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

}  // namespace zdr::http
