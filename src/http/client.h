// Asynchronous HTTP/1.1 client used as the end-user workload driver.
//
// Records exactly the failure classes the paper's evaluation counts
// (Fig 12): transport resets, timeouts, and HTTP error codes. Supports
// paced chunked uploads so POST requests can be made to straddle a
// server restart (the Partial Post Replay scenario).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "http/codec.h"
#include "netcore/connection.h"

namespace zdr::http {

class Client : public std::enable_shared_from_this<Client> {
 public:
  struct Result {
    bool ok = false;             // complete non-5xx response received
    bool timedOut = false;
    std::error_code transportError;
    Response response;           // valid when a response arrived
    double latencySec = 0;
  };
  using Callback = std::function<void(Result)>;

  static std::shared_ptr<Client> make(EventLoop& loop,
                                      const SocketAddr& server) {
    return std::shared_ptr<Client>(new Client(loop, server));
  }

  // One request; the connection is kept alive and reused.
  void request(Request req, Callback cb, Duration timeout = Duration{5000});

  // Chunked POST upload paced over time: `chunks` chunks of
  // `chunkBytes`, one every `interval`. The request straddles
  // chunks × interval of wall time.
  void pacedPost(const std::string& path, size_t chunks, size_t chunkBytes,
                 Duration interval, Callback cb,
                 Duration timeout = Duration{30000});

  void close();
  [[nodiscard]] bool busy() const noexcept { return busy_; }

 private:
  Client(EventLoop& loop, const SocketAddr& server)
      : loop_(loop), server_(server) {}

  void ensureConnected(std::function<void(std::error_code)> next);
  void beginRequest(Callback cb, Duration timeout);
  void finish(Result r);
  void sendNextChunk();

  EventLoop& loop_;
  SocketAddr server_;
  ConnectionPtr conn_;
  bool connecting_ = false;
  bool busy_ = false;
  bool closed_ = false;  // close() called: no new connections may form
  ResponseParser parser_;
  Callback cb_;
  EventLoop::TimerId timeoutTimer_ = 0;
  TimePoint requestStart_{};

  // paced-post state
  size_t chunksLeft_ = 0;
  size_t chunkBytes_ = 0;
  Duration chunkInterval_{0};
  EventLoop::TimerId chunkTimer_ = 0;
  // False while a request body is still being streamed. A response
  // that arrives before the body finishes (379 relays, early 5xx)
  // leaves the connection desynchronized — it must not be reused.
  bool bodyFullySent_ = true;

  // Keep-alive retry (RFC 7230 §6.3.1): a request written to a REUSED
  // connection that dies before any response bytes is retried once on
  // a fresh connection — the server may have closed the idle
  // connection concurrently (exactly what a draining proxy's
  // `Connection: close` migration produces).
  bool sentOnReusedConn_ = false;
  bool retriedOnce_ = false;
  bool retryable_ = false;  // simple request()s only, never paced posts
  Request retryRequest_;
  Duration retryTimeout_{0};

  void resendAfterStaleConn();
};

}  // namespace zdr::http
