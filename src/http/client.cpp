#include "http/client.h"

namespace zdr::http {

void Client::ensureConnected(std::function<void(std::error_code)> next) {
  if (conn_ && conn_->open()) {
    sentOnReusedConn_ = true;
    next({});
    return;
  }
  sentOnReusedConn_ = false;
  conn_ = nullptr;
  auto self = shared_from_this();
  Connector::connect(loop_, server_,
                     [self, next](TcpSocket sock, std::error_code ec) {
                       if (self->closed_) {
                         // close() raced this connect: a Connection made
                         // now would self-capture and outlive the loop.
                         return;
                       }
                       if (ec) {
                         next(ec);
                         return;
                       }
                       self->conn_ = Connection::make(self->loop_,
                                                      std::move(sock));
                       self->conn_->setDataCallback([self](Buffer& in) {
                         if (!self->busy_) {
                           in.clear();  // stray bytes between requests
                           return;
                         }
                         auto st = self->parser_.feed(in);
                         if (st == ParseStatus::kError) {
                           Result r;
                           r.transportError = std::make_error_code(
                               std::errc::protocol_error);
                           self->finish(r);
                           return;
                         }
                         if (self->parser_.messageComplete()) {
                           Result r;
                           r.response = self->parser_.message();
                           r.ok = r.response.status < 500;
                           self->finish(r);
                         }
                       });
                       self->conn_->setCloseCallback(
                           [self](std::error_code why) {
                             self->conn_ = nullptr;
                             if (!self->busy_) {
                               return;
                             }
                             // Stale keep-alive race: retry once on a
                             // fresh connection if nothing was received.
                             if (self->sentOnReusedConn_ &&
                                 self->retryable_ && !self->retriedOnce_ &&
                                 !self->parser_.headersComplete()) {
                               self->retriedOnce_ = true;
                               self->sentOnReusedConn_ = false;
                               self->parser_.reset();
                               self->resendAfterStaleConn();
                               return;
                             }
                             Result r;
                             r.transportError =
                                 why ? why
                                     : std::make_error_code(
                                           std::errc::connection_reset);
                             self->finish(r);
                           });
                       self->conn_->start();
                       next({});
                     });
}

void Client::beginRequest(Callback cb, Duration timeout) {
  busy_ = true;
  cb_ = std::move(cb);
  parser_.reset();
  requestStart_ = Clock::now();
  auto self = shared_from_this();
  timeoutTimer_ = loop_.runAfter(timeout, [self] {
    if (self->busy_) {
      Result r;
      r.timedOut = true;
      self->finish(r);
      if (self->conn_) {
        self->conn_->close({});
        self->conn_ = nullptr;
      }
    }
  });
}

void Client::finish(Result r) {
  if (!busy_) {
    return;
  }
  busy_ = false;
  loop_.cancelTimer(timeoutTimer_);
  loop_.cancelTimer(chunkTimer_);
  chunksLeft_ = 0;
  if (!bodyFullySent_ && conn_) {
    // Early final response to an unfinished upload: per HTTP/1.1
    // semantics the connection cannot carry another request.
    conn_->close({});
    conn_ = nullptr;
  }
  bodyFullySent_ = true;
  r.latencySec =
      std::chrono::duration<double>(Clock::now() - requestStart_).count();
  auto cb = std::move(cb_);
  cb_ = nullptr;
  if (cb) {
    cb(r);
  }
}

void Client::request(Request req, Callback cb, Duration timeout) {
  beginRequest(std::move(cb), timeout);
  if (!req.headers.has("Host")) {
    req.headers.set("Host", "testbed");
  }
  retryRequest_ = req;
  retryTimeout_ = timeout;
  retriedOnce_ = false;
  retryable_ = true;
  auto self = shared_from_this();
  ensureConnected([self, req = std::move(req)](std::error_code ec) mutable {
    if (ec) {
      Result r;
      r.transportError = ec;
      self->finish(r);
      return;
    }
    Buffer out;
    serialize(req, out);
    self->conn_->send(out.readable());
  });
}

void Client::resendAfterStaleConn() {
  auto self = shared_from_this();
  ensureConnected([self](std::error_code ec) {
    if (ec) {
      Result r;
      r.transportError = ec;
      self->finish(r);
      return;
    }
    Buffer out;
    serialize(self->retryRequest_, out);
    self->conn_->send(out.readable());
  });
}

void Client::pacedPost(const std::string& path, size_t chunks,
                       size_t chunkBytes, Duration interval, Callback cb,
                       Duration timeout) {
  beginRequest(std::move(cb), timeout);
  chunksLeft_ = chunks;
  chunkBytes_ = chunkBytes;
  chunkInterval_ = interval;
  bodyFullySent_ = false;
  retryable_ = false;  // a streamed body cannot be transparently replayed

  auto self = shared_from_this();
  ensureConnected([self, path](std::error_code ec) {
    if (ec) {
      Result r;
      r.transportError = ec;
      self->finish(r);
      return;
    }
    Request req;
    req.method = "POST";
    req.path = path;
    req.headers.set("Host", "testbed");
    req.headers.set("Transfer-Encoding", "chunked");
    Buffer out;
    serializeHead(req, out);
    self->conn_->send(out.readable());
    self->sendNextChunk();
  });
}

void Client::sendNextChunk() {
  if (!busy_ || !conn_ || !conn_->open()) {
    return;
  }
  Buffer out;
  if (chunksLeft_ == 0) {
    appendFinalChunk(out);
    conn_->send(out.readable());
    bodyFullySent_ = true;
    return;  // now await the response
  }
  --chunksLeft_;
  std::string payload(chunkBytes_, 'u');
  appendChunk(out, payload);
  conn_->send(out.readable());
  auto self = shared_from_this();
  chunkTimer_ = loop_.runAfter(chunkInterval_, [self] {
    self->sendNextChunk();
  });
}

void Client::close() {
  closed_ = true;
  if (conn_) {
    conn_->close({});
    conn_ = nullptr;
  }
}

}  // namespace zdr::http
