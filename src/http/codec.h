// Incremental HTTP/1.1 parser and serializer.
//
// The parser is a resumable state machine fed from a Buffer; it
// supports Content-Length and chunked transfer-encoding bodies. The
// chunked path deliberately exposes its mid-chunk position: a proxy
// implementing Partial Post Replay "must remember the exact state of
// forwarding the body … whether it is in the middle or at the
// beginning of a chunk in order to reconstitute the original chunk
// headers or recompute them from the current state" (§5.2).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "http/message.h"
#include "netcore/buffer.h"

namespace zdr::http {

enum class ParseStatus : uint8_t {
  kNeedMore,     // consumed what it could; feed more bytes
  kHeadersDone,  // headers parsed this call (body may still stream)
  kDone,         // message complete
  kError,
};

// Where a chunked-body parse currently sits; mirrored by the PPR proxy
// when it reconstitutes chunk framing for a replayed request.
struct ChunkState {
  bool chunked = false;
  bool atChunkBoundary = true;   // next bytes are a chunk-size header
  uint64_t chunkBytesLeft = 0;   // body bytes left in the current chunk
};

namespace detail {
enum class Phase : uint8_t {
  kStartLine,
  kHeaders,
  kBodyFixed,
  kBodyChunkSize,
  kBodyChunkData,
  kBodyChunkDataEnd,  // expect CRLF after chunk payload
  kBodyTrailer,
  kDone,
  kError,
};
}  // namespace detail

// Parses either requests or responses (template over message type).
template <typename Message>
class Parser {
 public:
  // Called with each body fragment as it is decoded (after de-chunking).
  using BodyCallback = std::function<void(std::string_view)>;

  // When set, body fragments are streamed to `cb` INSTEAD of being
  // accumulated into message().body.
  void setBodyCallback(BodyCallback cb) { bodyCb_ = std::move(cb); }

  // Consumes as much of `in` as possible. Returns kHeadersDone exactly
  // once per message (the call that finishes the header block), then
  // kNeedMore until kDone.
  ParseStatus feed(Buffer& in);

  [[nodiscard]] const Message& message() const noexcept { return msg_; }
  [[nodiscard]] Message& message() noexcept { return msg_; }
  [[nodiscard]] bool headersComplete() const noexcept {
    return headersDone_;
  }
  [[nodiscard]] bool messageComplete() const noexcept {
    return phase_ == detail::Phase::kDone;
  }
  [[nodiscard]] bool failed() const noexcept {
    return phase_ == detail::Phase::kError;
  }
  // Total decoded body bytes seen so far (streamed or accumulated).
  [[nodiscard]] uint64_t bodyBytesSeen() const noexcept { return bodySeen_; }
  [[nodiscard]] ChunkState chunkState() const noexcept;

  // Resets for the next message on a keep-alive connection.
  void reset();

 private:
  ParseStatus parseStartLine(std::string_view line);
  ParseStatus parseHeaderLine(std::string_view line);
  void onHeadersComplete();
  void deliverBody(std::string_view fragment);

  Message msg_;
  detail::Phase phase_ = detail::Phase::kStartLine;
  bool headersDone_ = false;
  bool headersDoneReported_ = false;
  bool chunked_ = false;
  bool hasLength_ = false;
  uint64_t bodyLeft_ = 0;   // fixed-length mode
  uint64_t chunkLeft_ = 0;  // chunked mode, current chunk
  uint64_t bodySeen_ = 0;
  BodyCallback bodyCb_;
};

using RequestParser = Parser<Request>;
using ResponseParser = Parser<Response>;

// ---- serialization ----

// Serializes start-line + headers (adds Content-Length from body size
// unless Transfer-Encoding/Content-Length already present) + body.
void serialize(const Request& req, Buffer& out);
void serialize(const Response& res, Buffer& out);

// Header-block-only variants for streamed bodies.
void serializeHead(const Request& req, Buffer& out);
void serializeHead(const Response& res, Buffer& out);

// Chunked transfer-encoding writers.
void appendChunk(Buffer& out, std::string_view data);
void appendFinalChunk(Buffer& out);

}  // namespace zdr::http
