// HTTP message model shared by clients, proxies and servers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace zdr::http {

// Status code 379 is the Partial Post Replay signal (§4.3). It was
// deliberately picked from the IANA-unreserved range, so peers gate on
// the status *message* too (§5.2): only "Partial POST Replay" enables
// the feature.
inline constexpr int kPartialPostStatus = 379;
inline constexpr std::string_view kPartialPostReason = "Partial POST Replay";

// Headers used by the PPR implementation to echo request context back
// to the downstream proxy so it can rebuild the original request.
inline constexpr std::string_view kEchoHeaderPrefix = "echo-";
inline constexpr std::string_view kPseudoEchoPrefix = "pseudo-echo-";

// Case-insensitive header collection preserving insertion order.
class Headers {
 public:
  void add(std::string name, std::string value) {
    entries_.emplace_back(std::move(name), std::move(value));
  }
  void set(std::string_view name, std::string value);
  void remove(std::string_view name);
  [[nodiscard]] std::optional<std::string_view> get(std::string_view name) const;
  [[nodiscard]] bool has(std::string_view name) const {
    return get(name).has_value();
  }
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& all()
      const noexcept {
    return entries_;
  }
  [[nodiscard]] size_t size() const noexcept { return entries_.size(); }
  void clear() noexcept { entries_.clear(); }

  static bool nameEquals(std::string_view a, std::string_view b) noexcept;

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

struct Request {
  std::string method = "GET";
  std::string path = "/";
  std::string version = "HTTP/1.1";
  Headers headers;
  std::string body;

  [[nodiscard]] bool isPost() const noexcept { return method == "POST"; }
};

struct Response {
  int status = 200;
  std::string reason = "OK";
  std::string version = "HTTP/1.1";
  Headers headers;
  std::string body;

  // True only for a genuine PPR response: code 379 AND the exact
  // status message — the double check added after the production
  // incident with a buggy upstream randomizing status codes (§5.2).
  [[nodiscard]] bool isPartialPostReplay() const noexcept {
    return status == kPartialPostStatus && reason == kPartialPostReason;
  }
};

[[nodiscard]] std::string_view defaultReason(int status) noexcept;

}  // namespace zdr::http
