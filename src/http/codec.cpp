#include "http/codec.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace zdr::http {

namespace {

// Finds a CRLF-terminated line at the front of `in`; returns the line
// without the terminator and consumes it, or nullopt if incomplete.
std::optional<std::string> takeLine(Buffer& in) {
  std::string_view v = in.view();
  size_t pos = v.find("\r\n");
  if (pos == std::string_view::npos) {
    return std::nullopt;
  }
  std::string line(v.substr(0, pos));
  in.consume(pos + 2);
  return line;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

template <typename Message>
ParseStatus Parser<Message>::parseStartLine(std::string_view line) {
  if constexpr (std::is_same_v<Message, Request>) {
    // METHOD SP path SP version
    size_t sp1 = line.find(' ');
    size_t sp2 = line.rfind(' ');
    if (sp1 == std::string_view::npos || sp2 == sp1) {
      phase_ = detail::Phase::kError;
      return ParseStatus::kError;
    }
    msg_.method = std::string(line.substr(0, sp1));
    msg_.path = std::string(trim(line.substr(sp1 + 1, sp2 - sp1 - 1)));
    msg_.version = std::string(line.substr(sp2 + 1));
  } else {
    // version SP status SP reason
    size_t sp1 = line.find(' ');
    if (sp1 == std::string_view::npos) {
      phase_ = detail::Phase::kError;
      return ParseStatus::kError;
    }
    msg_.version = std::string(line.substr(0, sp1));
    std::string_view rest = line.substr(sp1 + 1);
    size_t sp2 = rest.find(' ');
    std::string_view statusStr =
        sp2 == std::string_view::npos ? rest : rest.substr(0, sp2);
    int status = 0;
    auto [p, ec] = std::from_chars(statusStr.data(),
                                   statusStr.data() + statusStr.size(), status);
    if (ec != std::errc{} || status < 100 || status > 999) {
      phase_ = detail::Phase::kError;
      return ParseStatus::kError;
    }
    msg_.status = status;
    msg_.reason = sp2 == std::string_view::npos
                      ? std::string()
                      : std::string(rest.substr(sp2 + 1));
  }
  phase_ = detail::Phase::kHeaders;
  return ParseStatus::kNeedMore;
}

template <typename Message>
ParseStatus Parser<Message>::parseHeaderLine(std::string_view line) {
  size_t colon = line.find(':');
  if (colon == std::string_view::npos) {
    phase_ = detail::Phase::kError;
    return ParseStatus::kError;
  }
  msg_.headers.add(std::string(trim(line.substr(0, colon))),
                   std::string(trim(line.substr(colon + 1))));
  return ParseStatus::kNeedMore;
}

template <typename Message>
void Parser<Message>::onHeadersComplete() {
  headersDone_ = true;
  if (auto te = msg_.headers.get("Transfer-Encoding");
      te && te->find("chunked") != std::string_view::npos) {
    chunked_ = true;
    phase_ = detail::Phase::kBodyChunkSize;
    return;
  }
  if (auto cl = msg_.headers.get("Content-Length")) {
    uint64_t len = 0;
    std::from_chars(cl->data(), cl->data() + cl->size(), len);
    hasLength_ = true;
    bodyLeft_ = len;
    phase_ = len == 0 ? detail::Phase::kDone : detail::Phase::kBodyFixed;
    return;
  }
  // No body signalled. (Responses that end at connection close are not
  // used by this codebase — every peer sends explicit framing.)
  phase_ = detail::Phase::kDone;
}

template <typename Message>
void Parser<Message>::deliverBody(std::string_view fragment) {
  bodySeen_ += fragment.size();
  if (bodyCb_) {
    bodyCb_(fragment);
  } else {
    msg_.body.append(fragment);
  }
}

template <typename Message>
ParseStatus Parser<Message>::feed(Buffer& in) {
  bool headersJustDone = false;
  while (true) {
    switch (phase_) {
      case detail::Phase::kStartLine: {
        auto line = takeLine(in);
        if (!line) {
          return ParseStatus::kNeedMore;
        }
        if (line->empty()) {
          continue;  // tolerate leading blank lines (robustness)
        }
        if (parseStartLine(*line) == ParseStatus::kError) {
          return ParseStatus::kError;
        }
        break;
      }
      case detail::Phase::kHeaders: {
        auto line = takeLine(in);
        if (!line) {
          return ParseStatus::kNeedMore;
        }
        if (line->empty()) {
          onHeadersComplete();
          headersJustDone = true;
          break;
        }
        if (parseHeaderLine(*line) == ParseStatus::kError) {
          return ParseStatus::kError;
        }
        break;
      }
      case detail::Phase::kBodyFixed: {
        if (in.empty()) {
          return headersJustDone ? ParseStatus::kHeadersDone
                                 : ParseStatus::kNeedMore;
        }
        size_t take = static_cast<size_t>(
            std::min<uint64_t>(bodyLeft_, in.size()));
        deliverBody(in.view().substr(0, take));
        in.consume(take);
        bodyLeft_ -= take;
        if (bodyLeft_ == 0) {
          phase_ = detail::Phase::kDone;
        }
        break;
      }
      case detail::Phase::kBodyChunkSize: {
        auto line = takeLine(in);
        if (!line) {
          return headersJustDone ? ParseStatus::kHeadersDone
                                 : ParseStatus::kNeedMore;
        }
        // Chunk extensions (";…") are permitted and ignored.
        std::string_view sizeStr(*line);
        if (size_t semi = sizeStr.find(';'); semi != std::string_view::npos) {
          sizeStr = sizeStr.substr(0, semi);
        }
        sizeStr = trim(sizeStr);
        uint64_t sz = 0;
        auto [p, ec] = std::from_chars(sizeStr.data(),
                                       sizeStr.data() + sizeStr.size(), sz, 16);
        if (ec != std::errc{} || p != sizeStr.data() + sizeStr.size()) {
          phase_ = detail::Phase::kError;
          return ParseStatus::kError;
        }
        chunkLeft_ = sz;
        phase_ = sz == 0 ? detail::Phase::kBodyTrailer
                         : detail::Phase::kBodyChunkData;
        break;
      }
      case detail::Phase::kBodyChunkData: {
        if (in.empty()) {
          return headersJustDone ? ParseStatus::kHeadersDone
                                 : ParseStatus::kNeedMore;
        }
        size_t take = static_cast<size_t>(
            std::min<uint64_t>(chunkLeft_, in.size()));
        deliverBody(in.view().substr(0, take));
        in.consume(take);
        chunkLeft_ -= take;
        if (chunkLeft_ == 0) {
          phase_ = detail::Phase::kBodyChunkDataEnd;
        }
        break;
      }
      case detail::Phase::kBodyChunkDataEnd: {
        if (in.size() < 2) {
          return ParseStatus::kNeedMore;
        }
        if (in.view().substr(0, 2) != "\r\n") {
          phase_ = detail::Phase::kError;
          return ParseStatus::kError;
        }
        in.consume(2);
        phase_ = detail::Phase::kBodyChunkSize;
        break;
      }
      case detail::Phase::kBodyTrailer: {
        auto line = takeLine(in);
        if (!line) {
          return ParseStatus::kNeedMore;
        }
        if (line->empty()) {
          phase_ = detail::Phase::kDone;
          break;
        }
        // Trailer headers are parsed into the normal header set.
        if (parseHeaderLine(*line) == ParseStatus::kError) {
          return ParseStatus::kError;
        }
        break;
      }
      case detail::Phase::kDone:
        return ParseStatus::kDone;
      case detail::Phase::kError:
        return ParseStatus::kError;
    }
    if (phase_ == detail::Phase::kDone) {
      return ParseStatus::kDone;
    }
    if (headersJustDone && in.empty()) {
      return ParseStatus::kHeadersDone;
    }
  }
}

template <typename Message>
ChunkState Parser<Message>::chunkState() const noexcept {
  ChunkState cs;
  cs.chunked = chunked_;
  cs.atChunkBoundary = phase_ == detail::Phase::kBodyChunkSize ||
                       phase_ == detail::Phase::kBodyChunkDataEnd ||
                       phase_ == detail::Phase::kDone ||
                       phase_ == detail::Phase::kBodyTrailer;
  cs.chunkBytesLeft = chunkLeft_;
  return cs;
}

template <typename Message>
void Parser<Message>::reset() {
  msg_ = Message{};
  phase_ = detail::Phase::kStartLine;
  headersDone_ = false;
  headersDoneReported_ = false;
  chunked_ = false;
  hasLength_ = false;
  bodyLeft_ = 0;
  chunkLeft_ = 0;
  bodySeen_ = 0;
}

template class Parser<Request>;
template class Parser<Response>;

// ------------------------------------------------------------ serializers

namespace {

bool hasExplicitFraming(const Headers& h) {
  return h.has("Content-Length") || h.has("Transfer-Encoding");
}

void writeHeaders(const Headers& h, Buffer& out) {
  for (const auto& [name, value] : h.all()) {
    out.append(name);
    out.append(": ");
    out.append(value);
    out.append("\r\n");
  }
  out.append("\r\n");
}

}  // namespace

void serializeHead(const Request& req, Buffer& out) {
  out.append(req.method);
  out.append(" ");
  out.append(req.path);
  out.append(" ");
  out.append(req.version);
  out.append("\r\n");
  writeHeaders(req.headers, out);
}

void serializeHead(const Response& res, Buffer& out) {
  out.append(res.version);
  out.append(" ");
  out.append(std::to_string(res.status));
  out.append(" ");
  out.append(res.reason.empty() ? std::string(defaultReason(res.status))
                                : res.reason);
  out.append("\r\n");
  writeHeaders(res.headers, out);
}

void serialize(const Request& req, Buffer& out) {
  Request copy = req;
  if (!hasExplicitFraming(copy.headers) && !copy.body.empty()) {
    copy.headers.set("Content-Length", std::to_string(copy.body.size()));
  } else if (!hasExplicitFraming(copy.headers) && copy.isPost()) {
    copy.headers.set("Content-Length", "0");
  }
  serializeHead(copy, out);
  if (auto te = copy.headers.get("Transfer-Encoding");
      te && te->find("chunked") != std::string_view::npos) {
    if (!copy.body.empty()) {
      appendChunk(out, copy.body);
    }
    appendFinalChunk(out);
  } else {
    out.append(copy.body);
  }
}

void serialize(const Response& res, Buffer& out) {
  Response copy = res;
  if (!hasExplicitFraming(copy.headers)) {
    copy.headers.set("Content-Length", std::to_string(copy.body.size()));
  }
  serializeHead(copy, out);
  if (auto te = copy.headers.get("Transfer-Encoding");
      te && te->find("chunked") != std::string_view::npos) {
    if (!copy.body.empty()) {
      appendChunk(out, copy.body);
    }
    appendFinalChunk(out);
  } else {
    out.append(copy.body);
  }
}

void appendChunk(Buffer& out, std::string_view data) {
  if (data.empty()) {
    return;  // a zero-length chunk would terminate the body
  }
  char size[32];
  int n = std::snprintf(size, sizeof(size), "%zx\r\n", data.size());
  out.append(std::string_view(size, static_cast<size_t>(n)));
  out.append(data);
  out.append("\r\n");
}

void appendFinalChunk(Buffer& out) { out.append("0\r\n\r\n"); }

}  // namespace zdr::http
