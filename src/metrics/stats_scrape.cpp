#include "metrics/stats_scrape.h"

#include "metrics/json_lite.h"

namespace zdr::stats {

namespace {

void readNumberMap(const jsonlite::Value& obj,
                   std::map<std::string, double>& out) {
  for (const auto& [name, v] : obj.fields) {
    if (v->type == jsonlite::Value::Type::kNumber) {
      out[name] = v->number;
    }
  }
}

HdrQuantiles readHdr(const jsonlite::Value& obj) {
  HdrQuantiles q;
  auto get = [&](const char* key) {
    return obj.has(key) &&
                   obj.at(key).type == jsonlite::Value::Type::kNumber
               ? obj.at(key).number
               : 0.0;
  };
  q.count = get("count");
  q.mean = get("mean");
  q.p50 = get("p50");
  q.p90 = get("p90");
  q.p99 = get("p99");
  q.p999 = get("p999");
  q.max = get("max");
  return q;
}

}  // namespace

double StatsSnapshot::counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0.0 : it->second;
}

double StatsSnapshot::histValue(const std::string& key) const {
  auto it = hist.find(key);
  return it == hist.end() ? 0.0 : it->second;
}

double StatsSnapshot::sumCountersBySuffix(const std::string& suffix) const {
  double sum = 0;
  for (const auto& [name, v] : counters) {
    if (name.size() >= suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      sum += v;
    }
  }
  return sum;
}

double StatsSnapshot::sumCountersByPrefix(const std::string& prefix) const {
  double sum = 0;
  // counters_ is an ordered map: walk the contiguous prefix range.
  for (auto it = counters.lower_bound(prefix);
       it != counters.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    sum += it->second;
  }
  return sum;
}

StatsSnapshot parseStatsSnapshot(const std::string& body) {
  jsonlite::Value doc = jsonlite::Parser::parse(body);
  if (doc.type != jsonlite::Value::Type::kObject) {
    throw std::runtime_error("stats scrape: top level is not an object");
  }
  StatsSnapshot snap;
  snap.raw = body;
  if (doc.has("instance")) {
    snap.instance = doc.at("instance").str;
  }
  if (doc.has("t_ns")) {
    snap.tNs = doc.at("t_ns").number;
  }
  if (doc.has("counters")) {
    readNumberMap(doc.at("counters"), snap.counters);
  }
  if (doc.has("gauges")) {
    readNumberMap(doc.at("gauges"), snap.gauges);
  }
  if (doc.has("peaks")) {
    readNumberMap(doc.at("peaks"), snap.peaks);
  }
  if (doc.has("hist")) {
    readNumberMap(doc.at("hist"), snap.hist);
  }
  if (doc.has("hdr")) {
    for (const auto& [name, v] : doc.at("hdr").fields) {
      snap.hdr[name] = readHdr(*v);
    }
  }
  if (doc.has("hdr_merged")) {
    for (const auto& [name, v] : doc.at("hdr_merged").fields) {
      snap.hdrMerged[name] = readHdr(*v);
    }
  }
  return snap;
}

}  // namespace zdr::stats
