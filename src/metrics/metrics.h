// Lightweight metrics: counters, gauges, histograms, time series.
//
// The paper's evaluation (§6) is driven by exactly this kind of
// instrumentation: per-instance counters (HTTP status codes sent, TCP
// RSTs, MQTT connects/ACKs), gauges (CPU, RPS), and timelines
// normalized to the value right before a restart. Every experiment
// binary reads its series out of a MetricsRegistry snapshot.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "metrics/flight_recorder.h"
#include "metrics/hdr_histogram.h"
#include "metrics/timeline.h"
#include "metrics/trace.h"

namespace zdr {

namespace detail {
// std::atomic<double> has no fetch_add until C++20 libstdc++ grows
// one for FP types; this CAS loop is the single shared fallback so
// every accumulating-double instrument spins in exactly one place.
inline double atomicAddDouble(std::atomic<double>& target,
                              double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
  }
  return cur + v;
}
}  // namespace detail

// Monotonic event counter; thread-safe.
class Counter {
 public:
  void add(uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-write-wins instantaneous value; thread-safe.
class Gauge {
 public:
  void set(double v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(double v) noexcept { detail::atomicAddDouble(value_, v); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0};
};

// High-watermark gauge: update() keeps the largest value seen since
// the last reset. Used for peak in-flight per shard — a snapshot of an
// instantaneous gauge misses the burst that mattered.
class MaxGauge {
 public:
  void update(double v) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

// Recorded-sample histogram with quantile queries. Samples are kept
// exactly (experiments record at most a few million points).
class Histogram {
 public:
  void record(double v) {
    std::lock_guard<std::mutex> lock(mutex_);
    samples_.push_back(v);
    sorted_ = false;
  }

  [[nodiscard]] size_t count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return samples_.size();
  }

  [[nodiscard]] double mean() const {
    std::lock_guard<std::mutex> lock(mutex_);
    if (samples_.empty()) {
      return 0;
    }
    double sum = 0;
    for (double v : samples_) {
      sum += v;
    }
    return sum / static_cast<double>(samples_.size());
  }

  // q in [0,1]; e.g. 0.5, 0.99, 0.999.
  [[nodiscard]] double quantile(double q) const {
    std::lock_guard<std::mutex> lock(mutex_);
    if (samples_.empty()) {
      return 0;
    }
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    double pos = q * static_cast<double>(samples_.size() - 1);
    auto lo = static_cast<size_t>(pos);
    size_t hi = std::min(lo + 1, samples_.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return samples_[lo] * (1 - frac) + samples_[hi] * frac;
  }

  [[nodiscard]] double min() const { return quantile(0.0); }
  [[nodiscard]] double max() const { return quantile(1.0); }

  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    samples_.clear();
    sorted_ = false;
  }

 private:
  mutable std::mutex mutex_;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

// Timestamped series of (t, value) points; thread-safe appends.
class TimeSeries {
 public:
  struct Point {
    double tSeconds;  // relative to an experiment-defined origin
    double value;
  };

  void record(double tSeconds, double value) {
    std::lock_guard<std::mutex> lock(mutex_);
    points_.push_back({tSeconds, value});
  }

  [[nodiscard]] std::vector<Point> points() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return points_;
  }

  // Mean value over points with t in [t0, t1).
  [[nodiscard]] double meanOver(double t0, double t1) const {
    std::lock_guard<std::mutex> lock(mutex_);
    double sum = 0;
    size_t n = 0;
    for (const auto& p : points_) {
      if (p.tSeconds >= t0 && p.tSeconds < t1) {
        sum += p.value;
        ++n;
      }
    }
    return n > 0 ? sum / static_cast<double>(n) : 0.0;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    points_.clear();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<Point> points_;
};

// Named metric registry; instruments are created on first use and live
// for the registry's lifetime (stable pointers).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = counters_[name];
    if (!slot) {
      slot = std::make_unique<Counter>();
    }
    return *slot;
  }
  Gauge& gauge(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = gauges_[name];
    if (!slot) {
      slot = std::make_unique<Gauge>();
    }
    return *slot;
  }
  Histogram& histogram(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = histograms_[name];
    if (!slot) {
      slot = std::make_unique<Histogram>();
    }
    return *slot;
  }
  TimeSeries& series(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = series_[name];
    if (!slot) {
      slot = std::make_unique<TimeSeries>();
    }
    return *slot;
  }
  MaxGauge& maxGauge(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = maxGauges_[name];
    if (!slot) {
      slot = std::make_unique<MaxGauge>();
    }
    return *slot;
  }
  // Hot-path log-linear histogram (per-worker handles are resolved
  // once at init, like HotCounters).
  HdrHistogram& hdr(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = hdrs_[name];
    if (!slot) {
      slot = std::make_unique<HdrHistogram>();
    }
    return *slot;
  }
  // Per-worker span ring. The capacity applies on first creation only
  // (instruments are create-on-first-use with stable addresses).
  trace::SpanSink& spanSink(const std::string& name,
                            size_t capacity = 8192) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = spanSinks_[name];
    if (!slot) {
      slot = std::make_unique<trace::SpanSink>(capacity);
    }
    return *slot;
  }
  // Per-worker flight-recorder event ring (sibling of spanSink; same
  // first-creation capacity rule).
  fr::EventRing& eventRing(const std::string& name,
                           size_t capacity = 4096) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = eventRings_[name];
    if (!slot) {
      slot = std::make_unique<fr::EventRing>(capacity);
    }
    return *slot;
  }
  // One release timeline per registry (i.e. per testbed/fleet).
  PhaseTimeline& timeline() noexcept { return timeline_; }
  [[nodiscard]] const PhaseTimeline& timeline() const noexcept {
    return timeline_;
  }

  // Point-in-time copy of every scalar-valued instrument. Histograms
  // (both kinds) contribute count/mean/p50/p99/p999 entries, series
  // contribute count/last — nothing the registry holds is silently
  // omitted anymore.
  [[nodiscard]] std::map<std::string, double> snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::string, double> out;
    for (const auto& [name, c] : counters_) {
      out["counter." + name] = static_cast<double>(c->value());
    }
    for (const auto& [name, g] : gauges_) {
      out["gauge." + name] = g->value();
    }
    for (const auto& [name, g] : maxGauges_) {
      out["peak." + name] = g->value();
    }
    for (const auto& [name, h] : histograms_) {
      out["hist." + name + ".count"] = static_cast<double>(h->count());
      out["hist." + name + ".mean"] = h->mean();
      out["hist." + name + ".p50"] = h->quantile(0.5);
      out["hist." + name + ".p99"] = h->quantile(0.99);
      out["hist." + name + ".p999"] = h->quantile(0.999);
    }
    for (const auto& [name, h] : hdrs_) {
      out["hdr." + name + ".count"] = static_cast<double>(h->count());
      out["hdr." + name + ".mean"] = h->mean();
      out["hdr." + name + ".p50"] = h->quantile(0.5);
      out["hdr." + name + ".p99"] = h->quantile(0.99);
      out["hdr." + name + ".p999"] = h->quantile(0.999);
    }
    for (const auto& [name, s] : series_) {
      auto pts = s->points();
      out["series." + name + ".count"] = static_cast<double>(pts.size());
      out["series." + name + ".last"] =
          pts.empty() ? 0.0 : pts.back().value;
    }
    return out;
  }

  [[nodiscard]] std::vector<std::string> counterNames() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(counters_.size());
    for (const auto& [name, c] : counters_) {
      names.push_back(name);
    }
    return names;
  }
  [[nodiscard]] std::vector<std::string> hdrNames() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(hdrs_.size());
    for (const auto& [name, h] : hdrs_) {
      names.push_back(name);
    }
    return names;
  }
  [[nodiscard]] std::vector<std::string> spanSinkNames() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(spanSinks_.size());
    for (const auto& [name, s] : spanSinks_) {
      names.push_back(name);
    }
    return names;
  }
  [[nodiscard]] std::vector<std::string> eventRingNames() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(eventRings_.size());
    for (const auto& [name, r] : eventRings_) {
      names.push_back(name);
    }
    return names;
  }
  // Non-destructive drain of every event ring, mirroring collectSpans.
  [[nodiscard]] std::vector<fr::Event> collectEvents() const {
    std::vector<const fr::EventRing*> rings;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      rings.reserve(eventRings_.size());
      for (const auto& [name, r] : eventRings_) {
        rings.push_back(r.get());
      }
    }
    std::vector<fr::Event> out;
    for (const auto* r : rings) {
      r->snapshot(out);
    }
    return out;
  }
  // Drains (non-destructively) every sink into one vector — the
  // "registry drains the sinks on snapshot" half of the tracing
  // contract. Tests and the stats renderer both go through this.
  [[nodiscard]] std::vector<trace::Span> collectSpans() const {
    std::vector<const trace::SpanSink*> sinks;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      sinks.reserve(spanSinks_.size());
      for (const auto& [name, s] : spanSinks_) {
        sinks.push_back(s.get());
      }
    }
    std::vector<trace::Span> out;
    for (const auto* s : sinks) {
      s->snapshot(out);
    }
    return out;
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<MaxGauge>> maxGauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<HdrHistogram>> hdrs_;
  std::map<std::string, std::unique_ptr<TimeSeries>> series_;
  std::map<std::string, std::unique_ptr<trace::SpanSink>> spanSinks_;
  std::map<std::string, std::unique_ptr<fr::EventRing>> eventRings_;
  PhaseTimeline timeline_;
};

// CPU-time probes used by the §6.3 overhead experiments.
double threadCpuSeconds();   // CLOCK_THREAD_CPUTIME_ID
double processCpuSeconds();  // CLOCK_PROCESS_CPUTIME_ID

// Burns roughly `units` abstract work units of CPU (calibrated to be
// small); models TLS-handshake/state-rebuild cost (§2.5).
void burnCpu(uint64_t units);

// Wall-clock stopwatch for experiment timelines.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  void restart() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace zdr
