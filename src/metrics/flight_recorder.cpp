#include "metrics/flight_recorder.h"

namespace zdr::fr {

namespace {

std::atomic<bool> g_recorderEnabled{true};

size_t roundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

}  // namespace

void setRecorderEnabled(bool on) {
  g_recorderEnabled.store(on, std::memory_order_relaxed);
}

bool recorderEnabled() {
  return g_recorderEnabled.load(std::memory_order_relaxed);
}

const char* eventKindName(EventKind k) {
  switch (k) {
    case EventKind::kLoopIteration:
      return "loop.iteration";
    case EventKind::kLoopStall:
      return "loop.stall";
    case EventKind::kTimerFire:
      return "loop.timer_fire";
    case EventKind::kAccept:
      return "accept";
    case EventKind::kDrainEdge:
      return "drain.edge";
    case EventKind::kTakeoverEdge:
      return "takeover.edge";
    case EventKind::kFaultInjected:
      return "fault.injected";
    case EventKind::kDisruption:
      return "disruption";
  }
  return "unknown";
}

const char* disruptionCauseName(DisruptionCause c) {
  switch (c) {
    case DisruptionCause::kNone:
      return "unattributed";
    case DisruptionCause::kResetOnRestart:
      return "reset_on_restart";
    case DisruptionCause::kTrunkAbort:
      return "trunk_abort";
    case DisruptionCause::kDrainDeadline:
      return "drain_deadline";
    case DisruptionCause::kShed:
      return "shed";
    case DisruptionCause::kBreaker:
      return "breaker";
    case DisruptionCause::kTimeout:
      return "timeout";
    case DisruptionCause::kFaultInjected:
      return "fault_injected";
  }
  return "unattributed";
}

const char* releasePhaseName(ReleasePhase p) {
  switch (p) {
    case ReleasePhase::kSteady:
      return "steady";
    case ReleasePhase::kDrain:
      return "drain";
    case ReleasePhase::kHardDrain:
      return "hard_drain";
    case ReleasePhase::kShutdown:
      return "shutdown";
  }
  return "steady";
}

EventRing::EventRing(size_t capacity)
    : capacity_(roundUpPow2(capacity == 0 ? 1 : capacity)),
      mask_(capacity_ - 1),
      slots_(std::make_unique<Slot[]>(capacity_)) {}

void EventRing::record(const Event& e) noexcept {
  const uint64_t idx = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[idx & mask_];
  // Odd sequence: in-progress. Readers that see it skip the slot.
  slot.seq.store(idx * 2 + 1, std::memory_order_release);
  slot.tNs.store(e.tNs, std::memory_order_relaxed);
  slot.kindInstance.store(
      (static_cast<uint64_t>(e.kind) << 32) | e.instance,
      std::memory_order_relaxed);
  slot.durNs.store(e.durNs, std::memory_order_relaxed);
  slot.traceId.store(e.traceId, std::memory_order_relaxed);
  slot.detail.store(e.detail, std::memory_order_relaxed);
  // Even sequence stamped with the claim index: published. A reader
  // re-checks this after copying to detect overwrite races.
  slot.seq.store(idx * 2 + 2, std::memory_order_release);
}

size_t EventRing::snapshot(std::vector<Event>& out) const {
  const uint64_t end = next_.load(std::memory_order_acquire);
  const uint64_t begin = end > capacity_ ? end - capacity_ : 0;
  size_t appended = 0;
  for (uint64_t idx = begin; idx < end; ++idx) {
    const Slot& slot = slots_[idx & mask_];
    if (slot.seq.load(std::memory_order_acquire) != idx * 2 + 2) {
      continue;  // mid-write or already overwritten
    }
    Event e;
    e.tNs = slot.tNs.load(std::memory_order_relaxed);
    const uint64_t ki = slot.kindInstance.load(std::memory_order_relaxed);
    e.kind = static_cast<uint32_t>(ki >> 32);
    e.instance = static_cast<uint32_t>(ki & 0xffffffffu);
    e.durNs = slot.durNs.load(std::memory_order_relaxed);
    e.traceId = slot.traceId.load(std::memory_order_relaxed);
    e.detail = slot.detail.load(std::memory_order_relaxed);
    // The field loads above must not sink past the re-check: a plain
    // acquire load orders later reads, not earlier ones.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != idx * 2 + 2) {
      continue;  // overwritten while copying
    }
    out.push_back(e);
    ++appended;
  }
  return appended;
}

}  // namespace zdr::fr
