#include <ctime>

#include "metrics/metrics.h"

namespace zdr {

namespace {
double clockSeconds(clockid_t id) {
  timespec ts{};
  if (clock_gettime(id, &ts) != 0) {
    return 0.0;
  }
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}
}  // namespace

double threadCpuSeconds() { return clockSeconds(CLOCK_THREAD_CPUTIME_ID); }
double processCpuSeconds() { return clockSeconds(CLOCK_PROCESS_CPUTIME_ID); }

void burnCpu(uint64_t units) {
  // ~1µs of work per unit on a modern core; volatile defeats the
  // optimizer without touching memory.
  volatile uint64_t acc = 0;
  for (uint64_t u = 0; u < units; ++u) {
    for (int i = 0; i < 400; ++i) {
      acc += static_cast<uint64_t>(i) * 2654435761u;
    }
  }
}

}  // namespace zdr
