// Fixed-bucket log-linear histogram for hot-path latency recording.
//
// The exact-sample Histogram in metrics.h locks a mutex, pushes every
// sample into a vector, and sorts on quantile queries — fine for
// experiment binaries that record a few million points once, hopeless
// on the per-request path of a multi-worker proxy. HdrHistogram trades
// exactness for a record() that is one relaxed fetch_add into a
// fixed-size atomic bucket array:
//
//  * values are quantized to integer "ticks" of 1/1000 of the caller's
//    unit (recording microseconds gives nanosecond-granularity ticks);
//  * ticks below kSubBuckets map linearly, one bucket each;
//  * above that, each power-of-two range is split into kSubBuckets/2
//    linear sub-buckets — relative quantile error is bounded by
//    2/kSubBuckets (~3% at 64 sub-buckets);
//  * buckets are relaxed atomics, so per-worker instances merge into a
//    fleet-wide view without stopping the workers (mergeFrom).
//
// Header-only; no dependencies beyond <atomic>.
#pragma once

#include <atomic>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace zdr {

class HdrHistogram {
 public:
  static constexpr int kSubBucketBits = 6;
  static constexpr uint64_t kSubBuckets = 1ull << kSubBucketBits;  // 64
  // Linear region + (64 - kSubBucketBits) half-ranges above it.
  static constexpr size_t kSlots =
      kSubBuckets + (64 - kSubBucketBits) * (kSubBuckets / 2);
  // Ticks per caller unit (sub-unit resolution for small values).
  static constexpr double kTicksPerUnit = 1000.0;

  HdrHistogram() = default;
  HdrHistogram(const HdrHistogram&) = delete;
  HdrHistogram& operator=(const HdrHistogram&) = delete;

  void record(double value) noexcept {
    if (!(value >= 0)) {  // negatives and NaN clamp to 0
      value = 0;
    }
    double scaled = value * kTicksPerUnit;
    // Saturate far below 2^64 so slotFor never overflows.
    uint64_t ticks = scaled >= 9e18 ? static_cast<uint64_t>(9e18)
                                    : static_cast<uint64_t>(scaled);
    buckets_[slotFor(ticks)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sumTicks_.fetch_add(ticks, std::memory_order_relaxed);
    updateMax(maxTicks_, ticks);
    updateMin(minTicks_, ticks);
  }

  [[nodiscard]] uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] double mean() const noexcept {
    uint64_t n = count();
    if (n == 0) {
      return 0;
    }
    return static_cast<double>(sumTicks_.load(std::memory_order_relaxed)) /
           (kTicksPerUnit * static_cast<double>(n));
  }

  [[nodiscard]] double min() const noexcept {
    uint64_t v = minTicks_.load(std::memory_order_relaxed);
    return v == UINT64_MAX ? 0 : static_cast<double>(v) / kTicksPerUnit;
  }
  [[nodiscard]] double max() const noexcept {
    return static_cast<double>(maxTicks_.load(std::memory_order_relaxed)) /
           kTicksPerUnit;
  }

  // q in [0,1]. Walks the cumulative bucket counts and returns the
  // target bucket's midpoint, clamped to the observed min/max.
  [[nodiscard]] double quantile(double q) const noexcept {
    uint64_t total = 0;
    uint64_t counts[kSlots];
    for (size_t i = 0; i < kSlots; ++i) {
      counts[i] = buckets_[i].load(std::memory_order_relaxed);
      total += counts[i];
    }
    if (total == 0) {
      return 0;
    }
    if (q < 0) {
      q = 0;
    }
    if (q > 1) {
      q = 1;
    }
    auto target = static_cast<uint64_t>(std::ceil(
        q * static_cast<double>(total)));
    if (target == 0) {
      target = 1;
    }
    uint64_t cum = 0;
    size_t slot = kSlots - 1;
    for (size_t i = 0; i < kSlots; ++i) {
      cum += counts[i];
      if (cum >= target) {
        slot = i;
        break;
      }
    }
    double v = slotMidpoint(slot) / kTicksPerUnit;
    double lo = min();
    double hi = max();
    if (v < lo) {
      v = lo;
    }
    if (v > hi && hi > 0) {
      v = hi;
    }
    return v;
  }

  // Adds another histogram's buckets into this one. Safe while the
  // source is still being recorded into (per-worker → merged view).
  void mergeFrom(const HdrHistogram& other) noexcept {
    for (size_t i = 0; i < kSlots; ++i) {
      uint64_t v = other.buckets_[i].load(std::memory_order_relaxed);
      if (v != 0) {
        buckets_[i].fetch_add(v, std::memory_order_relaxed);
      }
    }
    count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    sumTicks_.fetch_add(other.sumTicks_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    updateMax(maxTicks_, other.maxTicks_.load(std::memory_order_relaxed));
    updateMin(minTicks_, other.minTicks_.load(std::memory_order_relaxed));
  }

  void reset() noexcept {
    for (size_t i = 0; i < kSlots; ++i) {
      buckets_[i].store(0, std::memory_order_relaxed);
    }
    count_.store(0, std::memory_order_relaxed);
    sumTicks_.store(0, std::memory_order_relaxed);
    maxTicks_.store(0, std::memory_order_relaxed);
    minTicks_.store(UINT64_MAX, std::memory_order_relaxed);
  }

  static size_t slotFor(uint64_t ticks) noexcept {
    if (ticks < kSubBuckets) {
      return static_cast<size_t>(ticks);
    }
    // bit_width >= kSubBucketBits + 1 here, so shift >= 1 and the top
    // kSubBucketBits bits land in [kSubBuckets/2, kSubBuckets).
    int shift = std::bit_width(ticks) - kSubBucketBits;
    uint64_t top = ticks >> shift;
    return static_cast<size_t>(
        kSubBuckets + static_cast<uint64_t>(shift - 1) * (kSubBuckets / 2) +
        (top - kSubBuckets / 2));
  }

  // Inverse of slotFor: midpoint tick value of a slot's range.
  static double slotMidpoint(size_t slot) noexcept {
    if (slot < kSubBuckets) {
      return static_cast<double>(slot);
    }
    size_t rel = slot - kSubBuckets;
    int shift = static_cast<int>(rel / (kSubBuckets / 2)) + 1;
    uint64_t top = kSubBuckets / 2 + rel % (kSubBuckets / 2);
    double low = std::ldexp(static_cast<double>(top), shift);
    double width = std::ldexp(1.0, shift);
    return low + width / 2;
  }

 private:
  static void updateMax(std::atomic<uint64_t>& m, uint64_t v) noexcept {
    uint64_t cur = m.load(std::memory_order_relaxed);
    while (v > cur &&
           !m.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void updateMin(std::atomic<uint64_t>& m, uint64_t v) noexcept {
    uint64_t cur = m.load(std::memory_order_relaxed);
    while (v < cur &&
           !m.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<uint64_t> buckets_[kSlots]{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sumTicks_{0};
  std::atomic<uint64_t> maxTicks_{0};
  std::atomic<uint64_t> minTicks_{UINT64_MAX};
};

}  // namespace zdr
