#include "metrics/trace.h"

#include <charconv>
#include <chrono>
#include <mutex>

namespace zdr::trace {

namespace {

std::atomic<uint64_t> g_nextId{1};
std::atomic<bool> g_enabled{true};

// Instance interning: a mutex-guarded append-only table. Interning
// happens at instance construction (cold); lookups by id happen at
// snapshot (also cold). The record path only carries the integer.
std::mutex g_internMutex;
std::vector<std::string>& internTable() {
  static std::vector<std::string> table;
  return table;
}

std::chrono::steady_clock::time_point processEpoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

// Touch the epoch at static-init time so nowNs() is monotone from the
// earliest possible moment.
[[maybe_unused]] const auto g_epochInit = processEpoch();

}  // namespace

uint64_t newId() { return g_nextId.fetch_add(1, std::memory_order_relaxed); }

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - processEpoch())
          .count());
}

void setTracingEnabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool tracingEnabled() { return g_enabled.load(std::memory_order_relaxed); }

uint32_t internInstance(const std::string& name) {
  std::lock_guard<std::mutex> lock(g_internMutex);
  auto& table = internTable();
  for (size_t i = 0; i < table.size(); ++i) {
    if (table[i] == name) {
      return static_cast<uint32_t>(i + 1);
    }
  }
  table.push_back(name);
  return static_cast<uint32_t>(table.size());
}

std::string instanceName(uint32_t id) {
  std::lock_guard<std::mutex> lock(g_internMutex);
  auto& table = internTable();
  if (id == 0 || id > table.size()) {
    return "unknown";
  }
  return table[id - 1];
}

const char* spanKindName(SpanKind k) {
  switch (k) {
    case SpanKind::kEdgeRequest:
      return "edge.request";
    case SpanKind::kEdgeLocal:
      return "edge.local";
    case SpanKind::kEdgeUpstream:
      return "edge.upstream";
    case SpanKind::kEdgeTrunkWait:
      return "edge.trunk_wait";
    case SpanKind::kEdgeRedispatch:
      return "edge.redispatch";
    case SpanKind::kEdgeDcrResume:
      return "edge.dcr_resume";
    case SpanKind::kOriginRequest:
      return "origin.request";
    case SpanKind::kOriginAppConnect:
      return "origin.app_connect";
    case SpanKind::kOriginAppAttempt:
      return "origin.app_attempt";
    case SpanKind::kOriginPprReplay:
      return "origin.ppr_replay";
    case SpanKind::kOriginDcrReconnect:
      return "origin.dcr_reconnect";
    case SpanKind::kAppHandle:
      return "app.handle";
    case SpanKind::kAppDrainBounce:
      return "app.drain_bounce";
  }
  return "unknown";
}

std::string formatTraceHeader(uint64_t traceId, uint64_t spanId) {
  char buf[40];
  char* p = buf;
  auto hex = [&p](uint64_t v) {
    char tmp[16];
    int n = 0;
    do {
      tmp[n++] = "0123456789abcdef"[v & 0xF];
      v >>= 4;
    } while (v != 0);
    while (n > 0) {
      *p++ = tmp[--n];
    }
  };
  hex(traceId);
  *p++ = '-';
  hex(spanId);
  return {buf, static_cast<size_t>(p - buf)};
}

bool parseTraceHeader(std::string_view value, uint64_t& traceId,
                      uint64_t& spanId) {
  size_t dash = value.find('-');
  if (dash == std::string_view::npos || dash == 0 ||
      dash + 1 >= value.size()) {
    return false;
  }
  auto parseHex = [](std::string_view s, uint64_t& out) {
    auto [ptr, ec] =
        std::from_chars(s.data(), s.data() + s.size(), out, 16);
    return ec == std::errc{} && ptr == s.data() + s.size();
  };
  uint64_t t = 0;
  uint64_t sp = 0;
  if (!parseHex(value.substr(0, dash), t) ||
      !parseHex(value.substr(dash + 1), sp) || t == 0) {
    return false;
  }
  traceId = t;
  spanId = sp;
  return true;
}

// ----------------------------------------------------------- SpanSink

namespace {
size_t roundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}
}  // namespace

SpanSink::SpanSink(size_t capacity)
    : capacity_(roundUpPow2(capacity < 2 ? 2 : capacity)),
      mask_(capacity_ - 1),
      slots_(std::make_unique<Slot[]>(capacity_)) {}

void SpanSink::record(const Span& s) noexcept {
  const uint64_t idx = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[idx & mask_];
  // Mark in-progress for this generation. Release so a reader that
  // observes the published seq also observes the field stores.
  slot.seq.store(idx * 2 + 1, std::memory_order_release);
  slot.traceId.store(s.traceId, std::memory_order_relaxed);
  slot.spanId.store(s.spanId, std::memory_order_relaxed);
  slot.parentId.store(s.parentId, std::memory_order_relaxed);
  slot.kindInstance.store(
      (static_cast<uint64_t>(s.kind) << 32) | s.instance,
      std::memory_order_relaxed);
  slot.startNs.store(s.startNs, std::memory_order_relaxed);
  slot.endNs.store(s.endNs, std::memory_order_relaxed);
  slot.detail.store(s.detail, std::memory_order_relaxed);
  slot.seq.store(idx * 2 + 2, std::memory_order_release);
}

size_t SpanSink::snapshot(std::vector<Span>& out) const {
  const uint64_t end = next_.load(std::memory_order_acquire);
  const uint64_t begin = end > capacity_ ? end - capacity_ : 0;
  size_t appended = 0;
  for (uint64_t idx = begin; idx < end; ++idx) {
    const Slot& slot = slots_[idx & mask_];
    const uint64_t expect = idx * 2 + 2;
    if (slot.seq.load(std::memory_order_acquire) != expect) {
      continue;  // mid-write or already overwritten by a newer span
    }
    Span s;
    s.traceId = slot.traceId.load(std::memory_order_relaxed);
    s.spanId = slot.spanId.load(std::memory_order_relaxed);
    s.parentId = slot.parentId.load(std::memory_order_relaxed);
    uint64_t ki = slot.kindInstance.load(std::memory_order_relaxed);
    s.kind = static_cast<uint32_t>(ki >> 32);
    s.instance = static_cast<uint32_t>(ki & 0xFFFFFFFFu);
    s.startNs = slot.startNs.load(std::memory_order_relaxed);
    s.endNs = slot.endNs.load(std::memory_order_relaxed);
    s.detail = slot.detail.load(std::memory_order_relaxed);
    // Re-check: if a writer claimed this slot while we copied, the
    // copy may mix generations — discard it. The fence keeps the
    // relaxed field loads above from sinking past the re-check (an
    // acquire load only orders the reads that follow it).
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != expect) {
      continue;
    }
    out.push_back(s);
    ++appended;
  }
  return appended;
}

}  // namespace zdr::trace
