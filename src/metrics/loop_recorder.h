// LoopRecorder: the metrics-side implementation of netcore's
// LoopObserver for one worker loop.
//
// EventLoop times its own poller and every callback dispatch but knows
// nothing about metrics; this adapter turns those timings into
//  * hdr histograms  — <worker>.loop.iter_us / .loop.poll_us /
//    .loop.dispatch_us (merged across workers by the /__stats
//    ".w<i>." stripping, like request_us);
//  * per-tag cumulative callback time — <worker>.loop.tag_us.<tag>
//    counters, the "who is eating this core" breakdown;
//  * flight-recorder events — kLoopStall whenever one dispatch blows
//    the stall budget (blaming the callback's tag), kLoopIteration /
//    kTimerFire for notably slow iterations and timer fires;
//  * engine counters — <worker>.loop.backend.* (which IoBackend runs
//    this loop and its syscall/SQE economics) and
//    <worker>.timer.wheel.* (timer-queue churn), published as deltas
//    from the per-iteration EngineSample.
//
// All callbacks run on the owning loop's thread, so the tag caches are
// plain maps; the ring write is the only cross-thread-visible effect.
#pragma once

#include <string>
#include <unordered_map>

#include "metrics/metrics.h"
#include "netcore/event_loop.h"

namespace zdr::fr {

class LoopRecorder final : public LoopObserver {
 public:
  // Ring slots are a fixed budget, so only notable timings become
  // discrete events; every timing lands in the histograms.
  static constexpr uint64_t kIterationEventFloorNs = 1'000'000;  // 1 ms
  static constexpr uint64_t kTimerEventFloorNs = 1'000'000;      // 1 ms

  // Resolves every handle up front (same idiom as Proxy::initCommon):
  // the per-dispatch path never takes the registry lock.
  LoopRecorder(MetricsRegistry& reg, const std::string& workerName,
               size_t ringCapacity = 4096);

  void onIteration(uint64_t pollNs, uint64_t workNs) noexcept override;
  void onDispatch(DispatchKind kind, const char* tag,
                  uint64_t durNs) noexcept override;
  void onStall(DispatchKind kind, const char* tag,
               uint64_t durNs) noexcept override;
  void onEngineSample(const EngineSample& sample) noexcept override;

  [[nodiscard]] EventRing* ring() noexcept { return ring_; }
  [[nodiscard]] uint32_t instance() const noexcept { return instance_; }

 private:
  uint32_t tagId(const char* tag);
  Counter& tagCounter(const char* tag);

  MetricsRegistry& reg_;
  std::string prefix_;  // "<worker>."
  EventRing* ring_;
  uint32_t instance_;
  HdrHistogram* iterUs_;
  HdrHistogram* pollUs_;
  HdrHistogram* dispatchUs_;
  Counter* stalls_;
  // Engine families. Backend/timer stats arrive as monotonic totals in
  // every EngineSample; the last_* copies turn them into counter
  // deltas (loop-thread-only state, like the tag caches).
  Gauge* backendIoUring_;
  Counter* backendWaitSyscalls_;
  Counter* backendOpSyscalls_;
  Counter* backendSqes_;
  Counter* backendCqes_;
  Counter* backendPollRearms_;
  Counter* wheelArmed_;
  Counter* wheelCancelled_;
  Counter* wheelFired_;
  Counter* wheelCascades_;
  Counter* wheelCompactions_;
  IoBackendStats lastIo_;
  TimerQueueStats lastTimers_;
  // Loop-thread-only caches; tags are string literals, keyed by
  // address (two spellings of the same text just intern twice).
  std::unordered_map<const char*, uint32_t> tagIds_;
  std::unordered_map<const char*, Counter*> tagUs_;
};

}  // namespace zdr::fr
