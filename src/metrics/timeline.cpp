#include "metrics/timeline.h"

#include <cstdio>
#include <map>
#include <sstream>
#include <utility>

#include "metrics/json_lite.h"
#include "metrics/trace.h"

namespace zdr {

void PhaseTimeline::record(const std::string& instance,
                           const std::string& phase, Mark mark,
                           const std::string& detail) {
  Event ev;
  ev.instance = instance;
  ev.phase = phase;
  ev.mark = mark;
  ev.tNs = trace::nowNs();
  ev.detail = detail;
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(ev));
}

void PhaseTimeline::point(const std::string& instance,
                          const std::string& phase,
                          const std::string& detail) {
  record(instance, phase, Mark::kPoint, detail);
}

void PhaseTimeline::begin(const std::string& instance,
                          const std::string& phase,
                          const std::string& detail) {
  record(instance, phase, Mark::kBegin, detail);
}

void PhaseTimeline::end(const std::string& instance,
                        const std::string& phase,
                        const std::string& detail) {
  record(instance, phase, Mark::kEnd, detail);
}

std::vector<PhaseTimeline::Event> PhaseTimeline::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::vector<PhaseTimeline::Window> PhaseTimeline::windows() const {
  std::vector<Window> out;
  // Open begin per (instance, phase) → index into `out`.
  std::map<std::pair<std::string, std::string>, size_t> open;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& ev : events_) {
    if (ev.mark == Mark::kPoint) {
      continue;
    }
    auto key = std::make_pair(ev.instance, ev.phase);
    if (ev.mark == Mark::kBegin) {
      Window w;
      w.instance = ev.instance;
      w.phase = ev.phase;
      w.beginNs = ev.tNs;
      open[key] = out.size();
      out.push_back(std::move(w));
    } else {
      auto it = open.find(key);
      if (it != open.end()) {
        out[it->second].endNs = ev.tNs;
        open.erase(it);
      }
    }
  }
  return out;
}

bool PhaseTimeline::hasEvent(const std::string& instance,
                             const std::string& phase) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& ev : events_) {
    if (ev.instance == instance && ev.phase == phase) {
      return true;
    }
  }
  return false;
}

const char* PhaseTimeline::markName(Mark m) {
  switch (m) {
    case Mark::kPoint:
      return "point";
    case Mark::kBegin:
      return "begin";
    case Mark::kEnd:
      return "end";
  }
  return "unknown";
}

namespace {
// Shared escape policy — the local copy this file carried had already
// diverged from the /__stats renderer's once; one definition now.
void appendJsonString(std::ostream& os, const std::string& s) {
  jsonlite::writeString(os, s);
}
}  // namespace

std::string PhaseTimeline::toJson() const {
  auto evs = events();
  auto wins = windows();
  std::ostringstream os;
  os << "{\n  \"events\": [\n";
  for (size_t i = 0; i < evs.size(); ++i) {
    const Event& e = evs[i];
    os << "    {\"instance\": ";
    appendJsonString(os, e.instance);
    os << ", \"phase\": ";
    appendJsonString(os, e.phase);
    os << ", \"mark\": \"" << markName(e.mark) << "\", \"t_ns\": " << e.tNs
       << ", \"detail\": ";
    appendJsonString(os, e.detail);
    os << "}" << (i + 1 < evs.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"windows\": [\n";
  for (size_t i = 0; i < wins.size(); ++i) {
    const Window& w = wins[i];
    os << "    {\"instance\": ";
    appendJsonString(os, w.instance);
    os << ", \"phase\": ";
    appendJsonString(os, w.phase);
    os << ", \"begin_ns\": " << w.beginNs << ", \"end_ns\": ";
    if (w.endNs == UINT64_MAX) {
      os << "null";
    } else {
      os << w.endNs;
    }
    os << "}" << (i + 1 < wins.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

void PhaseTimeline::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

}  // namespace zdr
