// Minimal JSON reader + writer helpers shared by the introspection
// plane: the /__stats and timeline renderers write through
// writeString/writeNumber, and the release controller's scrape client
// and the test suites read the documents back through Parser.
//
// The reader is a recursive-descent parser for the subset those
// renderers emit (objects, arrays, strings, numbers, booleans, null);
// not a general-purpose or validating parser. Promoted from the test
// tree once production code (the release controller) needed to parse
// scrapes too; everything includes it as "metrics/json_lite.h".
#pragma once

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace zdr::jsonlite {

// ------------------------------------------------------------- writing
//
// The one escape/format policy for every JSON document this codebase
// emits (stats scrape, timeline, release report). Keeping it here kills
// the per-renderer copies that had already drifted into duplication.

inline void writeString(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

inline void writeNumber(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  // Integers (the common case: counters, ids, timestamps) print
  // exactly; everything else gets enough digits to round-trip.
  if (v == std::floor(v) && std::fabs(v) < 9e15) {
    os << static_cast<long long>(v);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  os << buf;
}

// ------------------------------------------------------------- reading

class Value;
using ValuePtr = std::shared_ptr<Value>;

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<ValuePtr> items;
  std::map<std::string, ValuePtr> fields;

  [[nodiscard]] bool has(const std::string& key) const {
    return fields.count(key) != 0;
  }
  [[nodiscard]] const Value& at(const std::string& key) const {
    auto it = fields.find(key);
    if (it == fields.end()) {
      throw std::runtime_error("json: missing key " + key);
    }
    return *it->second;
  }
  [[nodiscard]] const Value& at(size_t i) const { return *items.at(i); }
  [[nodiscard]] size_t size() const {
    return type == Type::kArray ? items.size() : fields.size();
  }
  [[nodiscard]] uint64_t asU64() const {
    return static_cast<uint64_t>(number);
  }
};

class Parser {
 public:
  static Value parse(const std::string& text) {
    Parser p(text);
    Value v = p.parseValue();
    p.skipWs();
    if (p.pos_ != text.size()) {
      throw std::runtime_error("json: trailing garbage");
    }
    return v;
  }

 private:
  explicit Parser(const std::string& text) : text_(text) {}

  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      throw std::runtime_error("json: unexpected end");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("json: expected '") + c +
                               "' at " + std::to_string(pos_));
    }
    ++pos_;
  }

  bool consume(const char* lit) {
    size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Value parseValue() {
    skipWs();
    char c = peek();
    Value v;
    switch (c) {
      case '{':
        return parseObject();
      case '[':
        return parseArray();
      case '"':
        v.type = Value::Type::kString;
        v.str = parseString();
        return v;
      case 't':
        if (!consume("true")) {
          throw std::runtime_error("json: bad literal");
        }
        v.type = Value::Type::kBool;
        v.boolean = true;
        return v;
      case 'f':
        if (!consume("false")) {
          throw std::runtime_error("json: bad literal");
        }
        v.type = Value::Type::kBool;
        return v;
      case 'n':
        if (!consume("null")) {
          throw std::runtime_error("json: bad literal");
        }
        return v;
      default:
        return parseNumber();
    }
  }

  Value parseNumber() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      throw std::runtime_error("json: bad number at " + std::to_string(pos_));
    }
    Value v;
    v.type = Value::Type::kNumber;
    v.number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                           nullptr);
    return v;
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      char c = peek();
      ++pos_;
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      char esc = peek();
      ++pos_;
      switch (esc) {
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'u': {
          // The renderers only emit \u00XX control escapes.
          if (pos_ + 4 > text_.size()) {
            throw std::runtime_error("json: bad \\u escape");
          }
          unsigned code = static_cast<unsigned>(
              std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16));
          pos_ += 4;
          out.push_back(static_cast<char>(code & 0xff));
          break;
        }
        default:
          out.push_back(esc);  // \" \\ \/ …
      }
    }
  }

  Value parseObject() {
    expect('{');
    Value v;
    v.type = Value::Type::kObject;
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skipWs();
      std::string key = parseString();
      skipWs();
      expect(':');
      v.fields[key] = std::make_shared<Value>(parseValue());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parseArray() {
    expect('[');
    Value v;
    v.type = Value::Type::kArray;
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(std::make_shared<Value>(parseValue()));
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace zdr::jsonlite

namespace zdr {
// Historical name from the header's tests/ era; the test suites still
// read documents as zdr::testjson::Parser.
namespace testjson = jsonlite;
}  // namespace zdr
