// Typed view over one /__stats scrape document.
//
// The release controller (and anything else that must reason about a
// proxy's health *from the outside*) consumes scrapes, not the
// in-process MetricsRegistry — production release tooling only ever
// sees the serving fleet through its introspection endpoints. This
// parser turns the renderStatsJson document back into flat lookups:
// counters, gauges, peaks, exact-histogram quantiles, and hdr quantile
// blocks (per worker and `.w<i>.`-merged).
//
// Spans and the timeline are deliberately not materialized here; a
// health decision needs rates and quantiles, not span trees. Callers
// that want those keep the raw body (`raw`) and parse on demand.
#pragma once

#include <map>
#include <string>

namespace zdr::stats {

struct HdrQuantiles {
  double count = 0;
  double mean = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
  double p999 = 0;
  double max = 0;
};

struct StatsSnapshot {
  std::string instance;
  double tNs = 0;

  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, double> peaks;
  // Exact-histogram scalars keep snapshot()'s flattened keys:
  // "load.latency_ms.count" / ".mean" / ".p50" / ".p99" / ".p999".
  std::map<std::string, double> hist;
  std::map<std::string, HdrQuantiles> hdr;
  std::map<std::string, HdrQuantiles> hdrMerged;

  std::string raw;  // the full scrape body, for archiving/deep dives

  // Missing names read as 0 — a counter nobody bumped yet is exactly a
  // zero counter, and the SLO math wants that equivalence.
  [[nodiscard]] double counter(const std::string& name) const;
  [[nodiscard]] double histValue(const std::string& key) const;
  // Sum of every counter whose name ends with `suffix` (e.g.
  // ".err_http" across all load-generator prefixes).
  [[nodiscard]] double sumCountersBySuffix(const std::string& suffix) const;
  // Sum of every counter whose name starts with `prefix`.
  [[nodiscard]] double sumCountersByPrefix(const std::string& prefix) const;
};

// Throws std::runtime_error on malformed input (the scrape client
// turns that into a failed-scrape verdict rather than crashing).
[[nodiscard]] StatsSnapshot parseStatsSnapshot(const std::string& body);

}  // namespace zdr::stats
