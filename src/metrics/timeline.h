// Release timeline recorder: the §6 "normalize to the restart
// instant" methodology as a reusable subsystem.
//
// Every ZDR phase transition — takeover armed, handoff, ring adoption,
// drain start/early-exit/deadline, breaker trips, shed windows, app
// drains — is recorded as a structured, timestamped event keyed by
// instance and phase. Events share the trace clock (trace::nowNs), so
// chaos tests and experiments can ask "did this replayed request's
// span overlap a drain window?" directly, and export the whole thing
// as JSON next to the /__stats snapshot.
//
// Recording is cold-path (a handful of events per release), so a
// mutex-guarded vector is the right tool; no lock-free heroics here.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace zdr {

class PhaseTimeline {
 public:
  enum class Mark : uint8_t { kPoint, kBegin, kEnd };

  struct Event {
    std::string instance;
    std::string phase;
    Mark mark = Mark::kPoint;
    uint64_t tNs = 0;  // trace::nowNs clock
    std::string detail;
  };

  // A [begin, end) interval for one (instance, phase). An unclosed
  // begin yields endNs == UINT64_MAX (still in that phase).
  struct Window {
    std::string instance;
    std::string phase;
    uint64_t beginNs = 0;
    uint64_t endNs = UINT64_MAX;
  };

  void point(const std::string& instance, const std::string& phase,
             const std::string& detail = {});
  void begin(const std::string& instance, const std::string& phase,
             const std::string& detail = {});
  void end(const std::string& instance, const std::string& phase,
           const std::string& detail = {});

  [[nodiscard]] std::vector<Event> events() const;
  // Pairs begin/end events per (instance, phase) in order.
  [[nodiscard]] std::vector<Window> windows() const;
  // First event matching (instance, phase, mark), or nullopt-like
  // zero-time event. Convenience for tests.
  [[nodiscard]] bool hasEvent(const std::string& instance,
                              const std::string& phase) const;

  [[nodiscard]] std::string toJson() const;

  void clear();

  static const char* markName(Mark m);

 private:
  void record(const std::string& instance, const std::string& phase,
              Mark mark, const std::string& detail);

  mutable std::mutex mutex_;
  std::vector<Event> events_;
};

}  // namespace zdr
