#include "metrics/stats_json.h"

#include "metrics/json_lite.h"

#include <cctype>
#include <cmath>
#include <map>
#include <sstream>
#include <vector>

namespace zdr::stats {

namespace {

// One escape/format policy for every emitted document — shared with
// the timeline and release-report writers via json_lite.h.
void jsonString(std::ostream& os, const std::string& s) {
  jsonlite::writeString(os, s);
}

void jsonNumber(std::ostream& os, double v) { jsonlite::writeNumber(os, v); }

void renderHdr(std::ostream& os, const HdrHistogram& h) {
  os << "{\"count\": " << h.count() << ", \"mean\": ";
  jsonNumber(os, h.mean());
  os << ", \"p50\": ";
  jsonNumber(os, h.quantile(0.5));
  os << ", \"p90\": ";
  jsonNumber(os, h.quantile(0.9));
  os << ", \"p99\": ";
  jsonNumber(os, h.quantile(0.99));
  os << ", \"p999\": ";
  jsonNumber(os, h.quantile(0.999));
  os << ", \"max\": ";
  jsonNumber(os, h.max());
  os << "}";
}

// "edge0.w3.request_us" → "edge0.request_us"; no ".w<digits>."
// segment ⇒ unchanged. This is the merge key for the fleet-wide view.
std::string stripWorkerSegment(const std::string& name) {
  size_t pos = 0;
  while ((pos = name.find(".w", pos)) != std::string::npos) {
    size_t digits = pos + 2;
    while (digits < name.size() &&
           std::isdigit(static_cast<unsigned char>(name[digits])) != 0) {
      ++digits;
    }
    if (digits > pos + 2 && digits < name.size() && name[digits] == '.') {
      return name.substr(0, pos) + name.substr(digits);
    }
    if (digits > pos + 2 && digits == name.size()) {
      return name.substr(0, pos);
    }
    pos += 2;
  }
  return name;
}

void renderSpan(std::ostream& os, const trace::Span& s) {
  os << "{\"trace_id\": " << s.traceId << ", \"span_id\": " << s.spanId
     << ", \"parent_id\": " << s.parentId << ", \"kind\": ";
  jsonString(os,
             trace::spanKindName(static_cast<trace::SpanKind>(s.kind)));
  os << ", \"instance\": ";
  jsonString(os, trace::instanceName(s.instance));
  os << ", \"start_ns\": " << s.startNs << ", \"end_ns\": " << s.endNs
     << ", \"detail\": " << s.detail << "}";
}

}  // namespace

std::string renderStatsJson(MetricsRegistry& reg, const StatsOptions& opts) {
  std::ostringstream os;
  os << "{\n  \"instance\": ";
  jsonString(os, opts.instance);
  os << ",\n  \"t_ns\": " << trace::nowNs() << ",\n";

  // Scalar snapshot, split by the instrument-kind prefix snapshot()
  // assigns ("counter." / "gauge." / "peak." / "hist." / "hdr." /
  // "series.").
  auto snap = reg.snapshot();
  auto renderPrefix = [&](const char* key, const std::string& prefix) {
    os << "  \"" << key << "\": {";
    bool first = true;
    for (const auto& [name, value] : snap) {
      if (name.rfind(prefix, 0) != 0) {
        continue;
      }
      if (!first) {
        os << ", ";
      }
      first = false;
      jsonString(os, name.substr(prefix.size()));
      os << ": ";
      jsonNumber(os, value);
    }
    os << "}";
  };
  renderPrefix("counters", "counter.");
  os << ",\n";
  renderPrefix("gauges", "gauge.");
  os << ",\n";
  renderPrefix("peaks", "peak.");
  os << ",\n";
  renderPrefix("hist", "hist.");
  os << ",\n";

  // Hdr histograms: full quantile objects per worker, plus a merged
  // view keyed by the name with its ".w<i>." segment removed.
  auto hdrNames = reg.hdrNames();
  os << "  \"hdr\": {";
  for (size_t i = 0; i < hdrNames.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << "\n    ";
    jsonString(os, hdrNames[i]);
    os << ": ";
    renderHdr(os, reg.hdr(hdrNames[i]));
  }
  os << "\n  },\n  \"hdr_merged\": {";
  {
    std::map<std::string, std::vector<std::string>> groups;
    for (const auto& name : hdrNames) {
      groups[stripWorkerSegment(name)].push_back(name);
    }
    bool first = true;
    for (const auto& [merged, members] : groups) {
      if (!first) {
        os << ", ";
      }
      first = false;
      os << "\n    ";
      jsonString(os, merged);
      os << ": ";
      HdrHistogram combined;
      for (const auto& m : members) {
        combined.mergeFrom(reg.hdr(m));
      }
      renderHdr(os, combined);
    }
  }
  os << "\n  },\n";

  // Spans: per-sink ring contents (most recent maxSpansPerSink).
  auto sinkNames = reg.spanSinkNames();
  os << "  \"spans\": {";
  for (size_t i = 0; i < sinkNames.size(); ++i) {
    trace::SpanSink& sink = reg.spanSink(sinkNames[i]);
    std::vector<trace::Span> spans;
    sink.snapshot(spans);
    size_t firstIdx = spans.size() > opts.maxSpansPerSink
                          ? spans.size() - opts.maxSpansPerSink
                          : 0;
    if (i > 0) {
      os << ", ";
    }
    os << "\n    ";
    jsonString(os, sinkNames[i]);
    os << ": {\"recorded\": " << sink.recorded()
       << ", \"dropped\": " << sink.dropped() << ", \"spans\": [";
    for (size_t j = firstIdx; j < spans.size(); ++j) {
      if (j > firstIdx) {
        os << ", ";
      }
      os << "\n      ";
      renderSpan(os, spans[j]);
    }
    os << "]}";
  }
  os << "\n  },\n";

  // Release timeline (already a JSON document of its own).
  os << "  \"timeline\": " << reg.timeline().toJson();
  os << "}\n";
  return os.str();
}

}  // namespace zdr::stats
