#include "metrics/trace_export.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "metrics/json_lite.h"

namespace zdr::fr {

namespace {

void jsonString(std::ostream& os, const std::string& s) {
  jsonlite::writeString(os, s);
}

void renderSpan(std::ostream& os, const trace::Span& s) {
  os << "{\"trace_id\": " << s.traceId << ", \"span_id\": " << s.spanId
     << ", \"parent_id\": " << s.parentId << ", \"kind\": ";
  jsonString(os, trace::spanKindName(static_cast<trace::SpanKind>(s.kind)));
  os << ", \"instance\": ";
  jsonString(os, trace::instanceName(s.instance));
  os << ", \"start_ns\": " << s.startNs << ", \"end_ns\": " << s.endNs
     << ", \"detail\": " << s.detail << "}";
}

void renderEvent(std::ostream& os, const Event& e) {
  auto kind = static_cast<EventKind>(e.kind);
  os << "{\"t_ns\": " << e.tNs << ", \"kind\": ";
  jsonString(os, eventKindName(kind));
  os << ", \"instance\": ";
  jsonString(os, trace::instanceName(e.instance));
  os << ", \"dur_ns\": " << e.durNs << ", \"trace_id\": " << e.traceId
     << ", \"detail\": " << e.detail;
  // Decode the detail word for the kinds that pack structure into it,
  // so offline consumers never need the packing rules.
  if (kind == EventKind::kDisruption) {
    os << ", \"cause\": ";
    jsonString(os, disruptionCauseName(causeOf(e.detail)));
    os << ", \"phase\": ";
    jsonString(os, releasePhaseName(phaseOf(e.detail)));
  } else if (kind == EventKind::kLoopStall || kind == EventKind::kTimerFire ||
             kind == EventKind::kFaultInjected ||
             kind == EventKind::kAccept) {
    os << ", \"tag\": ";
    jsonString(os,
               trace::instanceName(static_cast<uint32_t>(e.detail)));
  }
  os << "}";
}

// Most-recent-`cap` window over a snapshot vector.
size_t firstIndexFor(size_t size, size_t cap) {
  return size > cap ? size - cap : 0;
}

}  // namespace

std::string renderTraceCapture(MetricsRegistry& reg,
                               const TraceCaptureOptions& opts) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"zdr.trace_capture.v1\",\n  \"instance\": ";
  jsonString(os, opts.instance);
  os << ",\n  \"t_ns\": " << trace::nowNs() << ",\n";

  auto sinkNames = reg.spanSinkNames();
  os << "  \"spans\": {";
  for (size_t i = 0; i < sinkNames.size(); ++i) {
    trace::SpanSink& sink = reg.spanSink(sinkNames[i]);
    std::vector<trace::Span> spans;
    sink.snapshot(spans);
    size_t firstIdx = firstIndexFor(spans.size(), opts.maxSpansPerSink);
    if (i > 0) {
      os << ", ";
    }
    os << "\n    ";
    jsonString(os, sinkNames[i]);
    os << ": {\"recorded\": " << sink.recorded()
       << ", \"dropped\": " << sink.dropped() << ", \"spans\": [";
    for (size_t j = firstIdx; j < spans.size(); ++j) {
      if (j > firstIdx) {
        os << ", ";
      }
      os << "\n      ";
      renderSpan(os, spans[j]);
    }
    os << "]}";
  }
  os << "\n  },\n";

  auto ringNames = reg.eventRingNames();
  os << "  \"events\": {";
  for (size_t i = 0; i < ringNames.size(); ++i) {
    EventRing& ring = reg.eventRing(ringNames[i]);
    std::vector<Event> events;
    ring.snapshot(events);
    size_t firstIdx = firstIndexFor(events.size(), opts.maxEventsPerRing);
    if (i > 0) {
      os << ", ";
    }
    os << "\n    ";
    jsonString(os, ringNames[i]);
    os << ": {\"recorded\": " << ring.recorded()
       << ", \"dropped\": " << ring.dropped() << ", \"events\": [";
    for (size_t j = firstIdx; j < events.size(); ++j) {
      if (j > firstIdx) {
        os << ", ";
      }
      os << "\n      ";
      renderEvent(os, events[j]);
    }
    os << "]}";
  }
  os << "\n  },\n";

  os << "  \"timeline\": " << reg.timeline().toJson();
  os << "}\n";
  return os.str();
}

namespace {

// Chrome trace-event timestamps are µs doubles; spans/events carry ns.
double toUs(uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

void chromeEvent(std::ostream& os, bool& first, const std::string& body) {
  if (!first) {
    os << ",";
  }
  first = false;
  os << "\n    " << body;
}

}  // namespace

std::string renderChromeTrace(MetricsRegistry& reg,
                              const TraceCaptureOptions& opts) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;

  // One Perfetto track ("thread") per recorded instance, keyed by its
  // interned id; pid 1 groups the whole capture as one process.
  auto track = [&](uint32_t instance) {
    std::ostringstream b;
    b << "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, \"tid\": "
      << instance << ", \"args\": {\"name\": ";
    jsonString(b, trace::instanceName(instance));
    b << "}}";
    return b.str();
  };
  std::vector<uint32_t> namedTracks;
  auto ensureTrack = [&](uint32_t instance) {
    if (std::find(namedTracks.begin(), namedTracks.end(), instance) ==
        namedTracks.end()) {
      namedTracks.push_back(instance);
      chromeEvent(os, first, track(instance));
    }
  };

  // Spans → "X" complete events. Perfetto nests overlapping complete
  // events on one track by time containment, so a request span and the
  // upstream spans it covers render as a flame.
  auto spans = reg.collectSpans();
  std::sort(spans.begin(), spans.end(),
            [](const trace::Span& a, const trace::Span& b) {
              return a.startNs < b.startNs;
            });
  size_t firstSpan = firstIndexFor(spans.size(), opts.maxSpansPerSink);
  for (size_t i = firstSpan; i < spans.size(); ++i) {
    const auto& s = spans[i];
    ensureTrack(s.instance);
    std::ostringstream b;
    b << "{\"ph\": \"X\", \"name\": ";
    jsonString(b, trace::spanKindName(static_cast<trace::SpanKind>(s.kind)));
    b << ", \"cat\": \"span\", \"pid\": 1, \"tid\": " << s.instance
      << ", \"ts\": " << toUs(s.startNs) << ", \"dur\": "
      << toUs(s.endNs > s.startNs ? s.endNs - s.startNs : 0)
      << ", \"args\": {\"trace_id\": " << s.traceId
      << ", \"span_id\": " << s.spanId << ", \"detail\": " << s.detail
      << "}}";
    chromeEvent(os, first, b.str());
  }

  // Flight-recorder events: stalls and slow iterations keep their
  // duration ("X"), everything else is an instant ("i").
  auto events = reg.collectEvents();
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.tNs < b.tNs; });
  size_t firstEvent = firstIndexFor(events.size(), opts.maxEventsPerRing);
  for (size_t i = firstEvent; i < events.size(); ++i) {
    const auto& e = events[i];
    auto kind = static_cast<EventKind>(e.kind);
    ensureTrack(e.instance);
    std::ostringstream b;
    std::string name = eventKindName(kind);
    if (kind == EventKind::kLoopStall || kind == EventKind::kTimerFire ||
        kind == EventKind::kFaultInjected || kind == EventKind::kAccept) {
      name += ":";
      name += trace::instanceName(static_cast<uint32_t>(e.detail));
    } else if (kind == EventKind::kDisruption) {
      name += ":";
      name += disruptionCauseName(causeOf(e.detail));
    }
    if (e.durNs > 0) {
      b << "{\"ph\": \"X\", \"name\": ";
      jsonString(b, name);
      b << ", \"cat\": \"recorder\", \"pid\": 1, \"tid\": " << e.instance
        << ", \"ts\": " << toUs(e.tNs >= e.durNs ? e.tNs - e.durNs : 0)
        << ", \"dur\": " << toUs(e.durNs);
    } else {
      b << "{\"ph\": \"i\", \"s\": \"t\", \"name\": ";
      jsonString(b, name);
      b << ", \"cat\": \"recorder\", \"pid\": 1, \"tid\": " << e.instance
        << ", \"ts\": " << toUs(e.tNs);
    }
    b << ", \"args\": {\"trace_id\": " << e.traceId
      << ", \"detail\": " << e.detail;
    if (kind == EventKind::kDisruption) {
      b << ", \"phase\": ";
      jsonString(b, releasePhaseName(phaseOf(e.detail)));
    }
    b << "}}";
    chromeEvent(os, first, b.str());
  }

  // Release-timeline phases: async begin/end pairs on a per-instance
  // scope (id keeps concurrent windows of one phase apart), points as
  // global instants.
  uint64_t asyncId = 1;
  for (const auto& w : reg.timeline().windows()) {
    std::string scope = w.instance + "/" + w.phase;
    uint64_t endNs = w.endNs == UINT64_MAX ? trace::nowNs() : w.endNs;
    for (const char* ph : {"b", "e"}) {
      std::ostringstream b;
      b << "{\"ph\": \"" << ph << "\", \"cat\": \"release\", \"id\": "
        << asyncId << ", \"name\": ";
      jsonString(b, scope);
      b << ", \"pid\": 1, \"tid\": 0, \"ts\": "
        << toUs(ph[0] == 'b' ? w.beginNs : endNs) << "}";
      chromeEvent(os, first, b.str());
    }
    ++asyncId;
  }
  for (const auto& ev : reg.timeline().events()) {
    if (ev.mark != PhaseTimeline::Mark::kPoint) {
      continue;
    }
    std::ostringstream b;
    b << "{\"ph\": \"i\", \"s\": \"g\", \"cat\": \"release\", \"name\": ";
    jsonString(b, ev.instance + "/" + ev.phase);
    b << ", \"pid\": 1, \"tid\": 0, \"ts\": " << toUs(ev.tNs)
      << ", \"args\": {\"detail\": ";
    jsonString(b, ev.detail);
    b << "}}";
    chromeEvent(os, first, b.str());
  }

  os << "\n  ]}\n";
  return os.str();
}

}  // namespace zdr::fr
