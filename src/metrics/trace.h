// Hop-level request tracing primitives.
//
// The paper's evaluation can say *that* a release was invisible; it
// cannot say *where* a surviving request spent its time. This module
// adds the missing attribution: a TraceContext minted at the edge and
// propagated on every hop (x-zdr-trace header on trunk/app requests, a
// payload field on DCR control frames), with each tier recording
// completed hop spans into a per-worker, fixed-size, lock-free
// SpanSink that the registry drains on snapshot.
//
// Design constraints, in order:
//  * the record path sits on the multi-worker hot path — no locks, no
//    allocation, a handful of relaxed atomic stores;
//  * snapshots may run concurrently with recording (the /__stats
//    endpoint scrapes a live proxy) — every slot field is an atomic
//    and publication is guarded by a per-slot sequence counter, so a
//    torn read is detected and skipped, never handed out;
//  * span/trace ids must round-trip through JSON doubles exactly, so
//    ids are minted from a process-wide counter (uint53-safe), not
//    random 64-bit values.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace zdr::trace {

// ---------------------------------------------------------------- ids

// Process-wide monotonically increasing id (never 0). Shared by trace
// and span ids: uniqueness matters, structure does not.
uint64_t newId();

// Nanoseconds since a process-wide steady epoch. Shared with the
// release timeline (timeline.h) so span intervals and ZDR phase
// windows are directly comparable.
uint64_t nowNs();

// Global tracing gate (like setVectoredIoEnabled): span recording and
// header propagation are skipped entirely when off. Instruments
// (counters/histograms) are unaffected.
void setTracingEnabled(bool on);
bool tracingEnabled();

// Interned instance names: spans carry a small integer instead of a
// string so the record path never allocates. The table is process-wide
// and append-only (ids stay valid for the process lifetime).
uint32_t internInstance(const std::string& name);
std::string instanceName(uint32_t id);

// --------------------------------------------------------- span model

enum class SpanKind : uint8_t {
  kEdgeRequest = 1,     // edge: full user request, accept→response
  kEdgeLocal = 2,       // edge: request served locally (health/stats/cache)
  kEdgeUpstream = 3,    // edge: dispatch→upstream response on a trunk
  kEdgeTrunkWait = 4,   // edge: waiting for a still-connecting trunk
  kEdgeRedispatch = 5,  // edge: budget-gated re-dispatch after trunk abort
  kEdgeDcrResume = 6,   // edge: re_connect sent → connect_ack/refuse
  kOriginRequest = 7,   // origin: trunk stream open→response sent
  kOriginAppConnect = 8,   // origin: app connection acquire (pool or dial)
  kOriginAppAttempt = 9,   // origin: one request attempt against one app
  kOriginPprReplay = 10,   // origin: 379 received → replay decision
  kOriginDcrReconnect = 11,  // origin: resume CONNECT → broker verdict
  kAppHandle = 12,      // app server: request parsed → response written
  kAppDrainBounce = 13,  // app server: 379 handed back during drain
};

const char* spanKindName(SpanKind k);

// One completed hop. All-scalar on purpose: the SpanSink stores each
// field in an atomic slot so concurrent scrape never races recording.
struct Span {
  uint64_t traceId = 0;
  uint64_t spanId = 0;
  uint64_t parentId = 0;  // 0 ⇒ root
  uint32_t kind = 0;      // SpanKind
  uint32_t instance = 0;  // internInstance id
  uint64_t startNs = 0;
  uint64_t endNs = 0;
  uint64_t detail = 0;  // kind-specific (HTTP status, attempt #, …)
};

// Propagation context carried per in-flight request.
struct TraceContext {
  uint64_t traceId = 0;
  uint64_t spanId = 0;    // the current hop's span
  uint64_t parentId = 0;  // the upstream hop's span
  [[nodiscard]] bool valid() const noexcept { return traceId != 0; }
};

// x-zdr-trace wire format: "<traceId hex>-<spanId hex>".
std::string formatTraceHeader(uint64_t traceId, uint64_t spanId);
bool parseTraceHeader(std::string_view value, uint64_t& traceId,
                      uint64_t& spanId);

inline constexpr std::string_view kTraceHeaderName = "x-zdr-trace";

// ----------------------------------------------------------- SpanSink

// Fixed-size multi-producer ring of completed spans. record() is
// lock-free: claim a slot with one fetch_add, mark it in-progress
// (odd sequence), store the fields, publish (even sequence). When the
// ring wraps, the oldest spans are overwritten and counted as dropped.
// snapshot() is non-destructive and skips slots that are mid-write or
// were overwritten during the scan.
class SpanSink {
 public:
  // Capacity is rounded up to a power of two; default fits a burst of
  // ~8k spans per worker between scrapes.
  explicit SpanSink(size_t capacity = 8192);
  SpanSink(const SpanSink&) = delete;
  SpanSink& operator=(const SpanSink&) = delete;

  void record(const Span& s) noexcept;

  // Appends every currently published span, oldest first. Returns the
  // number appended.
  size_t snapshot(std::vector<Span>& out) const;

  [[nodiscard]] uint64_t recorded() const noexcept {
    return next_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t dropped() const noexcept {
    uint64_t n = recorded();
    return n > capacity_ ? n - capacity_ : 0;
  }
  [[nodiscard]] size_t capacity() const noexcept { return capacity_; }

 private:
  struct Slot {
    // seq: 0 = empty, 2*idx+1 = writing, 2*idx+2 = published-for-idx.
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> traceId{0};
    std::atomic<uint64_t> spanId{0};
    std::atomic<uint64_t> parentId{0};
    std::atomic<uint64_t> kindInstance{0};  // kind << 32 | instance
    std::atomic<uint64_t> startNs{0};
    std::atomic<uint64_t> endNs{0};
    std::atomic<uint64_t> detail{0};
  };

  size_t capacity_;
  size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_{0};
};

}  // namespace zdr::trace
