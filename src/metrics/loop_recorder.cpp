#include "metrics/loop_recorder.h"

namespace zdr::fr {

LoopRecorder::LoopRecorder(MetricsRegistry& reg,
                           const std::string& workerName,
                           size_t ringCapacity)
    : reg_(reg),
      prefix_(workerName + "."),
      ring_(&reg.eventRing(workerName, ringCapacity)),
      instance_(trace::internInstance(workerName)),
      iterUs_(&reg.hdr(prefix_ + "loop.iter_us")),
      pollUs_(&reg.hdr(prefix_ + "loop.poll_us")),
      dispatchUs_(&reg.hdr(prefix_ + "loop.dispatch_us")),
      stalls_(&reg.counter(prefix_ + "loop.stalls")),
      backendIoUring_(&reg.gauge(prefix_ + "loop.backend.io_uring")),
      backendWaitSyscalls_(
          &reg.counter(prefix_ + "loop.backend.wait_syscalls")),
      backendOpSyscalls_(&reg.counter(prefix_ + "loop.backend.op_syscalls")),
      backendSqes_(&reg.counter(prefix_ + "loop.backend.sqes")),
      backendCqes_(&reg.counter(prefix_ + "loop.backend.cqes")),
      backendPollRearms_(&reg.counter(prefix_ + "loop.backend.poll_rearms")),
      wheelArmed_(&reg.counter(prefix_ + "timer.wheel.armed")),
      wheelCancelled_(&reg.counter(prefix_ + "timer.wheel.cancelled")),
      wheelFired_(&reg.counter(prefix_ + "timer.wheel.fired")),
      wheelCascades_(&reg.counter(prefix_ + "timer.wheel.cascades")),
      wheelCompactions_(&reg.counter(prefix_ + "timer.wheel.compactions")) {}

void LoopRecorder::onEngineSample(const EngineSample& sample) noexcept {
  backendIoUring_->set(sample.backend[0] == 'i' ? 1.0 : 0.0);
  backendWaitSyscalls_->add(sample.io.waitSyscalls - lastIo_.waitSyscalls);
  backendOpSyscalls_->add(sample.io.opSyscalls - lastIo_.opSyscalls);
  backendSqes_->add(sample.io.sqesSubmitted - lastIo_.sqesSubmitted);
  backendCqes_->add(sample.io.cqesReaped - lastIo_.cqesReaped);
  backendPollRearms_->add(sample.io.pollRearms - lastIo_.pollRearms);
  lastIo_ = sample.io;
  wheelArmed_->add(sample.timers.armed - lastTimers_.armed);
  wheelCancelled_->add(sample.timers.cancelled - lastTimers_.cancelled);
  wheelFired_->add(sample.timers.fired - lastTimers_.fired);
  wheelCascades_->add(sample.timers.cascades - lastTimers_.cascades);
  wheelCompactions_->add(sample.timers.compactions -
                         lastTimers_.compactions);
  lastTimers_ = sample.timers;
}

void LoopRecorder::onIteration(uint64_t pollNs, uint64_t workNs) noexcept {
  iterUs_->record(static_cast<double>(pollNs + workNs) / 1000.0);
  pollUs_->record(static_cast<double>(pollNs) / 1000.0);
  if (workNs >= kIterationEventFloorNs) {
    recordEvent(ring_, EventKind::kLoopIteration, instance_, workNs, 0,
                pollNs);
  }
}

void LoopRecorder::onDispatch(DispatchKind kind, const char* tag,
                              uint64_t durNs) noexcept {
  dispatchUs_->record(static_cast<double>(durNs) / 1000.0);
  tagCounter(tag).add(durNs / 1000);  // cumulative µs behind this tag
  if (kind == DispatchKind::kTimer && durNs >= kTimerEventFloorNs) {
    recordEvent(ring_, EventKind::kTimerFire, instance_, durNs, 0,
                tagId(tag));
  }
}

void LoopRecorder::onStall(DispatchKind kind, const char* tag,
                           uint64_t durNs) noexcept {
  (void)kind;
  stalls_->add();
  recordEvent(ring_, EventKind::kLoopStall, instance_, durNs, 0,
              tagId(tag));
}

uint32_t LoopRecorder::tagId(const char* tag) {
  auto it = tagIds_.find(tag);
  if (it != tagIds_.end()) {
    return it->second;
  }
  uint32_t id = trace::internInstance(tag);
  tagIds_.emplace(tag, id);
  return id;
}

Counter& LoopRecorder::tagCounter(const char* tag) {
  auto it = tagUs_.find(tag);
  if (it != tagUs_.end()) {
    return *it->second;
  }
  Counter* c = &reg_.counter(prefix_ + "loop.tag_us." + tag);
  tagUs_.emplace(tag, c);
  return *c;
}

}  // namespace zdr::fr
