// JSON renderer for the live /__stats introspection endpoint.
//
// One function turns a MetricsRegistry into the documented schema
// (DESIGN.md §9): counters, gauges, peak gauges, exact + hdr histogram
// quantiles (per worker and merged across the ".w<i>." name segment),
// recent spans per sink, and the release timeline. The renderer only
// reads atomics and takes the registry map lock briefly for name
// enumeration — safe to call on a live, loaded proxy.
#pragma once

#include <cstddef>
#include <string>

#include "metrics/metrics.h"

namespace zdr::stats {

struct StatsOptions {
  // Instance answering the scrape (informational).
  std::string instance;
  // Cap on spans emitted per sink (most recent kept). SIZE_MAX ⇒ all
  // (the ?spans=all query).
  size_t maxSpansPerSink = 256;
};

[[nodiscard]] std::string renderStatsJson(MetricsRegistry& reg,
                                          const StatsOptions& opts);

}  // namespace zdr::stats
