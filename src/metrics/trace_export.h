// Flight-recorder export: the /__trace endpoint's capture document and
// its Chrome/Perfetto trace-event conversion.
//
// Two renderers over one MetricsRegistry:
//  * renderTraceCapture — the "zdr.trace_capture.v1" JSON document:
//    every span sink and event ring (recorded/dropped accounting plus
//    the most recent entries) and the release timeline, all on the
//    shared trace::nowNs clock. This is what /__trace serves, what the
//    restart path archives, and what scripts/export_trace.py and
//    scripts/attribute_disruptions.py consume offline.
//  * renderChromeTrace — the same data directly in Chrome trace-event
//    JSON (the {"traceEvents": [...]} form): spans become "X" complete
//    events on one track per worker, flight-recorder events become
//    instants (stalls keep their duration), timeline windows become
//    async begin/end pairs. Loads in Perfetto / chrome://tracing as-is.
//
// Both only read atomics and take the registry map lock briefly for
// name enumeration — safe against a live, loaded proxy, same contract
// as renderStatsJson.
#pragma once

#include <cstddef>
#include <string>

#include "metrics/metrics.h"

namespace zdr::fr {

struct TraceCaptureOptions {
  // Instance answering the capture (informational).
  std::string instance;
  // Caps on entries emitted per sink/ring — most recent kept, exact
  // recorded/dropped counters always included. SIZE_MAX ⇒ all (the
  // ?events=all query). The defaults bound the /__trace response size
  // on a long-running proxy.
  size_t maxSpansPerSink = 2048;
  size_t maxEventsPerRing = 2048;
};

[[nodiscard]] std::string renderTraceCapture(MetricsRegistry& reg,
                                             const TraceCaptureOptions& opts);

[[nodiscard]] std::string renderChromeTrace(MetricsRegistry& reg,
                                            const TraceCaptureOptions& opts);

}  // namespace zdr::fr
