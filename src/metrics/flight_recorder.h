// Always-on flight recorder: per-worker event rings + taxonomies.
//
// The span rings (trace.h) answer "where did a surviving request spend
// its time"; they cannot answer "why was THIS request disrupted" or
// "what was the worker's event loop doing at that instant". This module
// adds the missing layer: a fixed-budget binary ring per worker that
// continuously captures a small event taxonomy — loop iterations and
// stalls, timer fires, accept/drain/takeover edges, fault injections,
// and client-visible disruptions with an explicit cause — using the
// exact same seqlock/slot-claim idiom as SpanSink, so snapshots never
// stop writers and the record path never locks or allocates.
//
// The disruption taxonomy mirrors the paper's evaluation axes
// (Figs. 2/10): every client-visible error, reset or shed is
// attributed to one cause and stamped with the proxy's release phase
// at the moment it happened, so a post-hoc capture can be joined with
// the release timeline for per-phase × per-cause counts
// (scripts/attribute_disruptions.py).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "metrics/trace.h"

namespace zdr::fr {

// --------------------------------------------------------- taxonomies

enum class EventKind : uint8_t {
  kLoopIteration = 1,  // one loop iteration whose dispatch work was slow
  kLoopStall = 2,      // one callback dispatch exceeded the stall budget
  kTimerFire = 3,      // a timer callback ran (slow fires only, see
                       // LoopRecorder::kTimerEventFloorNs)
  kAccept = 4,         // a listener accepted a connection
  kDrainEdge = 5,      // drain state machine edge (enter/hard/deadline…)
  kTakeoverEdge = 6,   // socket-takeover edge (arm/send/adopt/fail)
  kFaultInjected = 7,  // the fault layer injected a fault
  kDisruption = 8,     // client-visible error/reset/shed, with a cause
};
const char* eventKindName(EventKind k);

// Why a client-visible disruption happened. Matches the paper's
// disruption axes; `kNone` is never recorded — a decoded event with
// cause 0 is "unattributed" and the attribution checker fails on it.
enum class DisruptionCause : uint8_t {
  kNone = 0,
  kResetOnRestart = 1,  // conn reset because the instance is going away
  kTrunkAbort = 2,      // upstream trunk/stream died under the request
  kDrainDeadline = 3,   // drain deadline forced the close
  kShed = 4,            // admission control shed (fast 503)
  kBreaker = 5,         // breaker/budget left no backend to serve it
  kTimeout = 6,         // request deadline expired
  kFaultInjected = 7,   // a scripted fault on the serving path
};
const char* disruptionCauseName(DisruptionCause c);

// The recording proxy's own release phase when the event fired. The
// exporter overlays the fleet timeline for the global picture; this is
// the local, always-consistent view (derived from the proxy's
// draining/hard-draining/terminated state, no clock joins needed).
enum class ReleasePhase : uint8_t {
  kSteady = 0,
  kDrain = 1,      // soft drain (zdr_drain window)
  kHardDrain = 2,  // hard drain (DCR solicitation window)
  kShutdown = 3,   // terminating / restart in progress
};
const char* releasePhaseName(ReleasePhase p);

// kDisruption events pack (cause, phase) into `detail`.
constexpr uint64_t packCausePhase(DisruptionCause c, ReleasePhase p) {
  return (static_cast<uint64_t>(c) << 8) | static_cast<uint64_t>(p);
}
constexpr DisruptionCause causeOf(uint64_t detail) {
  return static_cast<DisruptionCause>((detail >> 8) & 0xff);
}
constexpr ReleasePhase phaseOf(uint64_t detail) {
  return static_cast<ReleasePhase>(detail & 0xff);
}

// Global recorder gate (sibling of trace::setTracingEnabled): event
// recording and loop self-profiling are skipped entirely when off.
// Defaults to ON — this is a flight recorder, not a debug mode.
void setRecorderEnabled(bool on);
bool recorderEnabled();

// --------------------------------------------------------- event model

// One recorded event. All-scalar for the same reason Span is: each
// field lives in an atomic ring slot. Strings (callback tags, edge
// names, fault kinds) travel as trace::internInstance ids in `detail`.
struct Event {
  uint64_t tNs = 0;       // trace::nowNs clock (shared with spans/timeline)
  uint32_t kind = 0;      // EventKind
  uint32_t instance = 0;  // internInstance id of the recording worker
  uint64_t durNs = 0;     // stall/iteration/timer duration; 0 otherwise
  uint64_t traceId = 0;   // disruptions: affected trace (0 ⇒ none known)
  uint64_t detail = 0;    // kind-specific (cause/phase pack, tag id, …)
};

// Fixed-size multi-producer ring of events; byte-for-byte the SpanSink
// discipline: claim a slot with one fetch_add, mark it in-progress
// (odd sequence), store the fields, publish (even sequence). Snapshot
// skips slots that are mid-write or were overwritten during the scan.
class EventRing {
 public:
  explicit EventRing(size_t capacity = 4096);
  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  void record(const Event& e) noexcept;

  // Appends every currently published event, oldest first. Returns the
  // number appended.
  size_t snapshot(std::vector<Event>& out) const;

  [[nodiscard]] uint64_t recorded() const noexcept {
    return next_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t dropped() const noexcept {
    uint64_t n = recorded();
    return n > capacity_ ? n - capacity_ : 0;
  }
  [[nodiscard]] size_t capacity() const noexcept { return capacity_; }

 private:
  struct Slot {
    // seq: 0 = empty, 2*idx+1 = writing, 2*idx+2 = published-for-idx.
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> tNs{0};
    std::atomic<uint64_t> kindInstance{0};  // kind << 32 | instance
    std::atomic<uint64_t> durNs{0};
    std::atomic<uint64_t> traceId{0};
    std::atomic<uint64_t> detail{0};
  };

  size_t capacity_;
  size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_{0};
};

// Hot-path helper mirroring recordSpan: a no-op when the ring handle
// is unresolved or the recorder gate is off.
inline void recordEvent(EventRing* ring, EventKind kind, uint32_t instance,
                        uint64_t durNs, uint64_t traceId,
                        uint64_t detail) noexcept {
  if (ring == nullptr || !recorderEnabled()) {
    return;
  }
  Event e;
  e.tNs = trace::nowNs();
  e.kind = static_cast<uint32_t>(kind);
  e.instance = instance;
  e.durNs = durNs;
  e.traceId = traceId;
  e.detail = detail;
  ring->record(e);
}

}  // namespace zdr::fr
