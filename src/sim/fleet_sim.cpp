#include "sim/fleet_sim.h"

#include <algorithm>
#include <cmath>
#include <random>

namespace zdr::sim {

std::vector<CapacitySample> simulateRollingCapacity(
    const CapacitySimParams& p) {
  // Batch schedule: batch k drains over [start, start+drain); for
  // HardRestart the hosts then boot for bootSeconds; batches are
  // separated by interBatchGapSeconds.
  struct Batch {
    double start;
    size_t hosts;
  };
  std::vector<Batch> batches;
  size_t batchSize = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(p.batchFraction *
                                       static_cast<double>(p.hosts))));
  double t = 0;
  for (size_t done = 0; done < p.hosts; done += batchSize) {
    size_t n = std::min(batchSize, p.hosts - done);
    batches.push_back({t, n});
    double batchDuration =
        p.drainSeconds + (p.zdr ? 0.0 : p.bootSeconds);
    t += batchDuration + p.interBatchGapSeconds;
  }
  double totalTime = t + 30;

  std::vector<CapacitySample> samples;
  for (double now = 0; now <= totalTime; now += p.sampleIntervalSeconds) {
    double drainingHosts = 0;
    double spikingHosts = 0;
    double darkHosts = 0;
    for (const auto& b : batches) {
      double sinceStart = now - b.start;
      if (sinceStart < 0) {
        continue;
      }
      if (sinceStart < p.drainSeconds) {
        drainingHosts += static_cast<double>(b.hosts);
        if (p.zdr && sinceStart < p.takeoverSpikeSeconds) {
          spikingHosts += static_cast<double>(b.hosts);
        }
      } else if (!p.zdr && sinceStart < p.drainSeconds + p.bootSeconds) {
        darkHosts += static_cast<double>(b.hosts);
      }
    }
    double hosts = static_cast<double>(p.hosts);
    CapacitySample s;
    s.tSeconds = now;
    if (p.zdr) {
      // Every host keeps accepting connections (the updated instance
      // answers health checks throughout).
      s.servingFraction = 1.0;
      double penalty = drainingHosts * p.takeoverCpuPenalty +
                       spikingHosts * p.takeoverSpikePenalty;
      s.idleCpuFraction = 1.0 - penalty / hosts;
    } else {
      // A draining HardRestart host fails health checks: it serves no
      // new work, and its CPU is effectively withdrawn from the pool.
      double offline = drainingHosts + darkHosts;
      s.servingFraction = (hosts - offline) / hosts;
      s.idleCpuFraction = (hosts - offline) / hosts;
    }
    samples.push_back(s);
  }
  return samples;
}

CompletionResult simulateGlobalRelease(const CompletionSimParams& p) {
  std::mt19937_64 rng(p.seed);
  std::uniform_real_distribution<double> jitter(0.0, p.batchJitterSeconds);

  CompletionResult result;
  for (size_t c = 0; c < p.clusters; ++c) {
    size_t batchSize = std::max<size_t>(
        1, static_cast<size_t>(
               std::ceil(p.batchFraction *
                         static_cast<double>(p.hostsPerCluster))));
    size_t batches =
        (p.hostsPerCluster + batchSize - 1) / batchSize;
    double total = 0;
    for (size_t b = 0; b < batches; ++b) {
      total += p.drainSeconds + p.bootSeconds + jitter(rng);
      if (b + 1 < batches) {
        total += p.interBatchGapSeconds;
      }
    }
    result.perClusterMinutes.push_back(total / 60.0);
  }
  std::sort(result.perClusterMinutes.begin(), result.perClusterMinutes.end());
  auto q = [&](double f) {
    double pos = f * static_cast<double>(result.perClusterMinutes.size() - 1);
    auto lo = static_cast<size_t>(pos);
    size_t hi = std::min(lo + 1, result.perClusterMinutes.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return result.perClusterMinutes[lo] * (1 - frac) +
           result.perClusterMinutes[hi] * frac;
  };
  result.medianMinutes = q(0.5);
  result.p25Minutes = q(0.25);
  result.p75Minutes = q(0.75);
  return result;
}

std::array<double, 24> simulateRestartHourPdf(SchedulePolicy policy,
                                              size_t releases,
                                              uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::array<double, 24> counts{};

  for (size_t i = 0; i < releases; ++i) {
    double hour = 0;
    switch (policy) {
      case SchedulePolicy::kPeakHours: {
        // Operators push when they are at their desks and can react
        // fast (§6.2.2): mass between 12:00 and 17:00.
        std::normal_distribution<double> dist(14.5, 1.3);
        hour = dist(rng);
        while (hour < 10.0 || hour > 19.0) {
          hour = dist(rng);
        }
        break;
      }
      case SchedulePolicy::kContinuous: {
        // ~100 releases/week: always something restarting, with only a
        // mild working-hours bump.
        std::uniform_real_distribution<double> base(0.0, 24.0);
        std::bernoulli_distribution bump(0.25);
        hour = base(rng);
        if (bump(rng)) {
          std::normal_distribution<double> work(14.0, 3.0);
          hour = work(rng);
          while (hour < 0 || hour >= 24) {
            hour = base(rng);
          }
        }
        break;
      }
      case SchedulePolicy::kOffPeak: {
        std::normal_distribution<double> dist(3.0, 1.5);  // dead of night
        hour = dist(rng);
        while (hour < 0) {
          hour += 24;
        }
        while (hour >= 24) {
          hour -= 24;
        }
        break;
      }
    }
    counts[static_cast<size_t>(hour) % 24] += 1.0;
  }
  double total = 0;
  for (double c : counts) {
    total += c;
  }
  if (total > 0) {
    for (double& c : counts) {
      c /= total;
    }
  }
  return counts;
}

double reconnectCpuFraction(const ReconnectCpuParams& p) {
  double restartedProxies =
      p.proxyFractionRestarted * static_cast<double>(p.proxies);
  double reconnects = restartedProxies * p.connectionsPerProxy;
  double cpuSecondsNeeded = reconnects * p.handshakeCpuSeconds;
  double cpuSecondsAvailable =
      p.appTierCpuCapacity * p.reconnectWindowSeconds;
  return cpuSecondsNeeded / cpuSecondsAvailable;
}

FaultSweepResult simulateReleaseUnderFaults(const FaultModelParams& p) {
  std::mt19937_64 rng(p.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  FaultSweepResult r;
  double unitsTouched = 0;
  double unitsDisrupted = 0;

  for (size_t host = 0; host < p.hosts; ++host) {
    ++r.hostsRestarted;
    unitsTouched += p.tunnelsPerHost + p.postsInFlightPerHost;

    // Phase 1: Socket Takeover handoff. An aborted handoff degrades to
    // a hard restart — every connection the host carried is reset.
    if (p.takeoverAbortProb > 0 && unit(rng) < p.takeoverAbortProb) {
      ++r.takeoverAborts;
      r.tunnelsDropped += static_cast<uint64_t>(p.tunnelsPerHost);
      r.postsFailed += static_cast<uint64_t>(p.postsInFlightPerHost);
      unitsDisrupted += p.tunnelsPerHost + p.postsInFlightPerHost;
      continue;
    }

    // Phase 2: DCR. The solicitation is re-sent until one transmission
    // survives or retries run out; only total loss drops the tunnels.
    if (p.solicitationLossProb > 0) {
      bool delivered = false;
      for (int attempt = 0; attempt <= p.solicitationRetries; ++attempt) {
        if (unit(rng) >= p.solicitationLossProb) {
          delivered = true;
          break;
        }
        if (attempt < p.solicitationRetries) {
          ++r.solicitationRetriesUsed;
        }
      }
      if (!delivered) {
        r.tunnelsDropped += static_cast<uint64_t>(p.tunnelsPerHost);
        unitsDisrupted += p.tunnelsPerHost;
      }
    }

    // Phase 3: PPR. Each in-flight POST replays independently.
    if (p.pprReplayFailProb > 0) {
      uint64_t posts = static_cast<uint64_t>(p.postsInFlightPerHost);
      for (uint64_t i = 0; i < posts; ++i) {
        if (unit(rng) < p.pprReplayFailProb) {
          ++r.postsFailed;
          unitsDisrupted += 1;
        }
      }
    }
  }

  r.disruptionFraction =
      unitsTouched > 0 ? unitsDisrupted / unitsTouched : 0.0;
  return r;
}

StagedRolloutResult simulateStagedRollout(const StagedRolloutParams& p) {
  std::mt19937_64 rng(p.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  StagedRolloutResult r;
  r.stages = p.tiers * p.pops;
  double tSeconds = 0;

  // One scrape verdict: 0 = ok, 1 = soft, 2 = hard. Mirrors
  // SloLevel{kOk,kSoft,kHard} without dragging the release library in.
  auto drawVerdict = [&](bool regressing) -> int {
    ++r.scrapes;
    if (regressing) {
      double u = unit(rng);
      if (u < p.regressHardProb) {
        return 2;
      }
      if (u < p.regressHardProb + p.regressSoftProb) {
        return 1;
      }
      return 0;
    }
    return unit(rng) < p.transientSoftProb ? 1 : 0;
  };

  const auto scrapesPerBatch = static_cast<size_t>(std::max(
      1.0, p.batchSeconds / std::max(p.scrapeIntervalSeconds, 1e-9)));

  bool stopRollout = false;
  size_t stageIdx = 0;
  // Rollout order matches the controller: whole edge tier across every
  // PoP, then the origin tier. Tiers after a rollback still iterate so
  // their stages are counted as skipped, like the controller's report.
  for (size_t tier = 0; tier < p.tiers; ++tier) {
    for (size_t pop = 0; pop < p.pops; ++pop, ++stageIdx) {
      if (stopRollout) {
        ++r.stagesSkipped;
        continue;
      }
      const bool regressing = stageIdx >= p.regressingStage;
      size_t hostsLeft = p.hostsPerTierPerPop;
      const auto batchHosts = static_cast<size_t>(std::max(
          1.0, std::ceil(static_cast<double>(p.hostsPerTierPerPop) *
                         p.batchFraction)));
      size_t released = 0;
      int consecutiveSoft = 0;
      int consecutiveHard = 0;
      int consecutiveOk = 0;
      bool rolledBack = false;

      // A breach only means anything once the suspect binary serves.
      auto observe = [&](bool stageLive) -> int {
        tSeconds += p.scrapeIntervalSeconds;
        int v = drawVerdict(regressing && stageLive);
        if (v == 0) {
          ++consecutiveOk;
          consecutiveSoft = 0;
          consecutiveHard = 0;
        } else {
          consecutiveOk = 0;
          ++consecutiveSoft;  // hard counts toward soft, as live
          consecutiveHard = v == 2 ? consecutiveHard + 1 : 0;
        }
        return v;
      };
      auto rollback = [&] {
        // Re-restarting the released hosts takes one more batch round.
        tSeconds += p.batchSeconds;
        r.hostsRolledBack += released;
        ++r.stagesRolledBack;
        rolledBack = true;
        stopRollout = true;
      };
      // True ⇒ recovered within grace; false ⇒ escalate to rollback.
      auto pauseAndWait = [&] {
        ++r.pauses;
        consecutiveOk = 0;
        for (int g = 0; g < p.pauseGraceScrapes; ++g) {
          observe(true);
          if (consecutiveHard >= p.confirmScrapes) {
            return false;
          }
          if (consecutiveOk >= p.confirmScrapes) {
            return true;
          }
        }
        return false;
      };

      while (hostsLeft > 0 && !rolledBack) {
        size_t batch = std::min(batchHosts, hostsLeft);
        for (size_t s = 0; s < scrapesPerBatch; ++s) {
          observe(released > 0);
        }
        hostsLeft -= batch;
        released += batch;
        r.hostsReleased += batch;
        if (consecutiveHard >= p.confirmScrapes) {
          rollback();
        } else if (consecutiveSoft >= p.confirmScrapes && !pauseAndWait()) {
          rollback();
        }
      }
      if (rolledBack) {
        continue;
      }

      int okStreak = 0;
      while (okStreak < p.stageSoakScrapes && !rolledBack) {
        int v = observe(true);
        if (consecutiveHard >= p.confirmScrapes) {
          rollback();
        } else if (consecutiveSoft >= p.confirmScrapes) {
          if (pauseAndWait()) {
            okStreak = 0;
          } else {
            rollback();
          }
        } else {
          okStreak = v == 0 ? okStreak + 1 : 0;
        }
      }
      if (!rolledBack) {
        ++r.stagesCompleted;
      }
    }
  }

  r.totalHours = tSeconds / 3600.0;
  r.completed = r.stagesCompleted == r.stages;
  return r;
}

double tailLatencyInflation(double offeredLoad, double capacityFraction) {
  // Single-queue approximation: p99 sojourn time scales with
  // 1/(1-utilization). utilization = offeredLoad / capacityFraction.
  double baselineUtil = offeredLoad;
  double util = offeredLoad / std::max(capacityFraction, 1e-9);
  if (util >= 1.0) {
    return 1e9;  // saturated: unbounded queueing
  }
  return (1.0 - baselineUtil) / (1.0 - util);
}

}  // namespace zdr::sim
