// Fleet-scale release simulator.
//
// The testbed reproduces the paper's *mechanisms* with real sockets;
// the figures that depend on fleet scale and multi-hour wall clocks
// (capacity timelines, global completion times, restart-hour PDFs,
// reconnect CPU) are reproduced here with a virtual clock. Each model
// is parameterized by the production numbers the paper states: 20-min
// proxy drains, 10–15 s app drains, 5/15/20% batches, 10s of
// DataCenters and 100s of Edge PoPs.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace zdr::sim {

// ---------------------------------------------------------------- Fig 3a/8b

struct CapacitySimParams {
  size_t hosts = 100;
  double batchFraction = 0.2;      // paper: 15/20% (Fig 3a), 5/20% (Fig 8b)
  double drainSeconds = 1200;      // 20-minute proxy drain
  double bootSeconds = 30;         // new binary boot (HardRestart only)
  double interBatchGapSeconds = 120;
  bool zdr = false;

  // ZDR overheads (§6.3/Fig 17): while two instances overlap, the host
  // loses a small CPU fraction, with a larger spike early in the drain.
  double takeoverCpuPenalty = 0.01;
  double takeoverSpikeSeconds = 65;
  double takeoverSpikePenalty = 0.05;

  double sampleIntervalSeconds = 10;
};

struct CapacitySample {
  double tSeconds;
  // Fraction of hosts accepting new connections (the Fig 3a capacity).
  double servingFraction;
  // Cluster idle-CPU normalized to pre-release baseline (Fig 8b).
  double idleCpuFraction;
};

std::vector<CapacitySample> simulateRollingCapacity(
    const CapacitySimParams& params);

// ------------------------------------------------------------------ Fig 16

struct CompletionSimParams {
  size_t clusters = 20;
  size_t hostsPerCluster = 100;
  double batchFraction = 0.2;
  double drainSeconds = 1200;
  double bootSeconds = 30;
  double interBatchGapSeconds = 60;
  // Per-batch operational jitter (validation, canary checks).
  double batchJitterSeconds = 60;
  uint64_t seed = 42;
};

struct CompletionResult {
  std::vector<double> perClusterMinutes;  // sorted
  double medianMinutes = 0;
  double p25Minutes = 0;
  double p75Minutes = 0;
};

// Clusters release in parallel (the paper's global roll-out): the
// completion time is the slowest cluster.
CompletionResult simulateGlobalRelease(const CompletionSimParams& params);

// ------------------------------------------------------------------ Fig 15

enum class SchedulePolicy : uint8_t {
  // ZDR lets operators release during peak/work hours when they are
  // hands-on (§6.2.2): releases cluster in the 12:00–17:00 window.
  kPeakHours,
  // The app tier releases continuously, ~100×/week: near-flat PDF.
  kContinuous,
  // The pre-ZDR conservative policy: off-peak (night) releases only.
  kOffPeak,
};

// 24-bucket PDF (sums to 1) of restart counts by local hour.
std::array<double, 24> simulateRestartHourPdf(SchedulePolicy policy,
                                              size_t releases,
                                              uint64_t seed = 42);

// ------------------------------------------------------------------ Fig 3b

struct ReconnectCpuParams {
  // Fraction of Origin Proxygen instances restarted at once.
  double proxyFractionRestarted = 0.1;
  // Connections per proxy instance that must re-handshake.
  double connectionsPerProxy = 100000;
  size_t proxies = 100;
  // CPU seconds to rebuild one connection's state (TCP+TLS full
  // handshake with asymmetric crypto, session-resumption miss, §2.5).
  double handshakeCpuSeconds = 0.0048;
  // Window over which reconnects arrive.
  double reconnectWindowSeconds = 30;
  // Aggregate app-tier CPU capacity in CPU-seconds/second.
  double appTierCpuCapacity = 800;
};

// Returns the fraction of app-tier CPU consumed by state rebuild
// during the reconnect window. Paper: 10% of Origin restarting ⇒ ~20%.
double reconnectCpuFraction(const ReconnectCpuParams& params);

// ------------------------------------------------- release-under-faults

// Analytic companion to the chaos test suite: how often do the §4
// mechanisms themselves fail when the control channels are lossy, and
// what end-user disruption does that translate to across a rolling
// release? Mirrors the fault kinds the netcore FaultRegistry injects
// (aborted takeover handoffs, lost reconnect_solicitations, failed
// 379 replays) so sim sweeps and chaos tests share one vocabulary.
struct FaultModelParams {
  size_t hosts = 100;
  // Tunnels and in-flight POSTs per restarting host.
  double tunnelsPerHost = 1000;
  double postsInFlightPerHost = 50;

  // Per-handoff probability that the SCM_RIGHTS exchange aborts
  // (sendmsg reset mid-inventory). An aborted handoff falls back to a
  // HardRestart of that host: every tunnel and POST on it disrupts.
  double takeoverAbortProb = 0;
  // Per-trunk probability one reconnect_solicitation transmission is
  // lost; the Origin re-sends up to solicitationRetries times.
  double solicitationLossProb = 0;
  int solicitationRetries = 3;
  // Per-POST probability the 379 replay itself fails (truncated body
  // digest mismatch); the request surfaces a 500.
  double pprReplayFailProb = 0;

  uint64_t seed = 42;
};

struct FaultSweepResult {
  uint64_t hostsRestarted = 0;
  uint64_t takeoverAborts = 0;
  uint64_t solicitationRetriesUsed = 0;
  uint64_t tunnelsDropped = 0;
  uint64_t postsFailed = 0;
  // Disrupted units / total units touched by the release.
  double disruptionFraction = 0;
};

FaultSweepResult simulateReleaseUnderFaults(const FaultModelParams& params);

// ------------------------------------------------- staged-rollout control

// Analytic companion to release::ReleaseController: the same staged
// state machine (stage per tier×PoP, batches, confirm-debounced
// soft-pause / hard-rollback, soak) driven by a virtual clock and a
// probabilistic SLO signal instead of live scrapes. Used to sweep
// controller knobs (confirm windows, scrape cadence, batch sizes) at
// fleet scale — hundreds of PoPs, multi-hour rollouts — where the
// socket testbed cannot go. Vocabulary deliberately matches the
// controller so sweeps and E2E runs read the same way.
struct StagedRolloutParams {
  size_t pops = 10;
  size_t tiers = 2;  // edge tier rolls before origin tier
  size_t hostsPerTierPerPop = 20;
  double batchFraction = 0.5;
  double scrapeIntervalSeconds = 30;
  double batchSeconds = 120;  // restart + drain for one batch
  int confirmScrapes = 2;
  int stageSoakScrapes = 3;
  int pauseGraceScrapes = 20;

  // Per-scrape probability of a transient soft breach while healthy
  // (metric noise the debounce must absorb).
  double transientSoftProb = 0;
  // First stage (0-based, rollout order) at which the binary truly
  // regresses; SIZE_MAX ⇒ clean binary. While a regressing stage has
  // released hosts, each scrape breaches with these probabilities.
  size_t regressingStage = SIZE_MAX;
  double regressSoftProb = 0.9;
  double regressHardProb = 0.5;

  uint64_t seed = 42;
};

struct StagedRolloutResult {
  size_t stages = 0;
  size_t stagesCompleted = 0;
  size_t stagesRolledBack = 0;
  size_t stagesSkipped = 0;
  size_t hostsReleased = 0;
  size_t hostsRolledBack = 0;
  uint64_t scrapes = 0;
  size_t pauses = 0;
  double totalHours = 0;
  bool completed = false;  // whole rollout finished without rollback
};

StagedRolloutResult simulateStagedRollout(const StagedRolloutParams& params);

// ------------------------------------------------- latency-vs-capacity

// M/M/c-style tail latency inflation when capacity drops (the §2.5
// observation that a 10% capacity loss visibly inflates tails).
// Returns relative p99 latency vs. the full-capacity baseline.
double tailLatencyInflation(double offeredLoad, double capacityFraction);

}  // namespace zdr::sim
