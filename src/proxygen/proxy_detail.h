// Private per-connection state of Proxy. Included only by proxy_*.cpp.
#pragma once

#include "netcore/fault_injection.h"
#include "proxygen/proxy.h"

namespace zdr::proxygen {

// One event-loop shard. Shard 0 is the primary loop; shards 1..N-1
// each own a worker EventLoopThread. Everything in here is confined
// to the shard's loop thread — touched only from callbacks running on
// that loop, or from the primary thread via WorkerPool::runOn (which
// serializes on the worker). Shard addresses are stable for the
// Proxy's lifetime (held by unique_ptr).
struct Proxy::Shard {
  size_t idx = 0;
  EventLoop* loop = nullptr;

  // Edge state.
  std::set<std::shared_ptr<UserHttpConn>> userConns;
  std::vector<std::unique_ptr<TrunkLink>> trunkLinks;
  size_t trunkRoundRobin = 0;

  // Origin state.
  std::set<std::shared_ptr<TrunkServerConn>> trunkServerSessions;
  std::unique_ptr<UpstreamPool> appPool;
  size_t appRoundRobin = 0;
  // Accepted trunk-port connections whose first bytes have not yet
  // told us whether they are an h2 trunk or a ZDRTUN pass-through
  // tunnel. The set holds the only strong reference while sniffing.
  std::set<ConnectionPtr> sniffingTrunkConns;
  std::set<std::shared_ptr<DirectTunnel>> directTunnels;

  // Retry budget, windowed (see Config::retryBudgetRatio).
  uint64_t windowRequests = 0;
  uint64_t windowRetries = 0;
  TimePoint retryWindowStart{};

  // Admission control (edge): requests currently past the shed gate.
  size_t inFlightRequests = 0;
  bool acceptsPaused = false;

  // Observability handles, resolved once at init (registry lookups are
  // off the data path). Null without a registry.
  trace::SpanSink* spans = nullptr;      // "<name>.w<idx>" span ring
  // Flight-recorder event ring (same "<name>.w<idx>" key as spans):
  // accept/drain/takeover edges, loop stalls, disruption attribution.
  fr::EventRing* events = nullptr;
  // This proxy's loop observer for the shard (owned by
  // loopRecorders_). Shard 0's loop is shared with the takeover peer
  // during a ZDR overlap, so terminate() only uninstalls when the
  // installed observer is still ours.
  fr::LoopRecorder* recorder = nullptr;
  HdrHistogram* requestUs = nullptr;     // "<name>.w<idx>.request_us"
  MaxGauge* inflightPeak = nullptr;      // "<name>.w<idx>.inflight_peak"
  // Userspace payload copies per request at this hop (see
  // UserHttpConn::copyBytes) — "<name>.w<idx>.copy_bytes_per_req".
  HdrHistogram* copyBytesPerReq = nullptr;
};

// Edge: one user-facing HTTP connection (keep-alive, one request at a
// time — HTTP/1.1 without pipelining, as browsers behave).
struct Proxy::UserHttpConn
    : std::enable_shared_from_this<Proxy::UserHttpConn> {
  Shard* shard = nullptr;
  ConnectionPtr conn;
  http::RequestParser parser;
  std::string bodyPending;  // decoded fragments awaiting forwarding

  // Active request state.
  bool requestActive = false;
  bool headersHandled = false;
  bool servedLocally = false;
  TrunkLink* link = nullptr;
  uint32_t streamId = 0;
  bool upstreamEnded = false;   // we sent END_STREAM upstream
  bool responseStarted = false;
  http::Response upstreamResponse;
  // Relay streaming mode: the response head went out as soon as the
  // trunk HEADERS arrived (Content-Length >= relayThresholdBytes) and
  // body DATA frames stream straight to the user connection — the
  // payload is never re-buffered in upstreamResponse.body.
  bool relayActive = false;
  // Userspace payload bytes this request copied through edge buffers:
  // re-buffered response bytes + serialized output for the buffered
  // path, head + one pass per DATA frame for the relay path. Recorded
  // into the shard's copy_bytes_per_req histogram at finish.
  uint64_t copyBytes = 0;
  std::string cacheKey;  // non-empty ⇒ response is cacheable
  EventLoop::TimerId timeoutTimer = 0;
  // Dispatch retries spent waiting for a still-connecting trunk (a
  // takeover hands the new instance live user connections before its
  // freshly dialed trunks finish their handshakes).
  int trunkWaitRetries = 0;
  // This request holds a slot in the shard's in-flight count
  // (admission control); released exactly once at finish/close.
  bool countedInFlight = false;
  // Disruption attribution fired for this request. A failed request
  // can cross several error sites (terminate's forced reset re-enters
  // the connection's close callback synchronously); the first cause
  // wins and the rest stay silent.
  bool disruptionNoted = false;

  // Hop tracing: the root span for this request plus child-span
  // bookkeeping. The trace id is adopted from the client's
  // x-zdr-trace header when present, else minted here (the edge is
  // the trace root).
  trace::TraceContext trace{};
  uint64_t reqStartNs = 0;
  uint64_t dispatchStartNs = 0;    // first upstream dispatch
  uint64_t upstreamSpanId = 0;     // kEdgeUpstream span (spans retries)
  uint64_t trunkWaitStartNs = 0;   // waiting for a connecting trunk
  int lastStatus = 0;

  void resetRequestState() {
    requestActive = false;
    headersHandled = false;
    servedLocally = false;
    link = nullptr;
    streamId = 0;
    upstreamEnded = false;
    responseStarted = false;
    upstreamResponse = http::Response{};
    relayActive = false;
    copyBytes = 0;
    cacheKey.clear();
    bodyPending.clear();
    trunkWaitRetries = 0;
    disruptionNoted = false;
    trace = trace::TraceContext{};
    reqStartNs = 0;
    dispatchStartNs = 0;
    upstreamSpanId = 0;
    trunkWaitStartNs = 0;
    lastStatus = 0;
  }
};

// Edge: one user MQTT connection relayed through a trunk stream.
struct Proxy::MqttTunnel : std::enable_shared_from_this<Proxy::MqttTunnel> {
  ConnectionPtr userConn;
  std::string userId;
  TrunkLink* link = nullptr;
  uint32_t streamId = 0;
  bool tunnelUp = false;
  Buffer pendingToOrigin;  // user bytes buffered until the tunnel opens

  // Pass-through mode (Config::mqttPassThrough): the tunnel rides a
  // dedicated TCP connection to the origin's trunk port instead of an
  // h2 stream; user↔direct relaying uses the splice fast path.
  // originName records which origin serves it so a solicitation from
  // that origin's trunk link can find the tunnels to move.
  ConnectionPtr directConn;
  std::string originName;

  // Disruption attribution fired for this tunnel (first cause wins;
  // terminate's forced close and the drop path both pass through here).
  bool disruptionNoted = false;

  // DCR resume in progress (§4.2).
  bool resuming = false;
  TrunkLink* resumeLink = nullptr;
  uint32_t resumeStreamId = 0;
  ConnectionPtr resumeDirectConn;  // pass-through resume leg
  Buffer resumeVerdictBuf;         // buffers the ZDRTUN verdict line

  // DCR resume span: the trace id comes from the solicitation frame
  // (the draining origin's drain trace) so the resume hop joins it.
  uint64_t resumeTraceId = 0;
  uint64_t resumeParentId = 0;
  uint64_t resumeSpanId = 0;
  uint64_t resumeStartNs = 0;
};

// Edge: one long-lived trunk session to an Origin proxy.
struct Proxy::TrunkLink {
  Shard* shard = nullptr;
  BackendRef origin;
  size_t idx = 0;
  h2::SessionPtr session;
  bool connecting = false;
  bool up = false;
  bool peerDraining = false;  // origin sent GOAWAY
  // Pending edgeEnsureTrunk retry; the proxy can be torn down (ZDR
  // restart) while the 200 ms backoff is in flight on a worker loop
  // that outlives it, so terminate() must be able to cancel it.
  EventLoop::TimerId reconnectTimer = 0;
  std::map<uint32_t, std::weak_ptr<UserHttpConn>> httpStreams;
  std::map<uint32_t, std::weak_ptr<MqttTunnel>> mqttStreams;
};

// Origin: one accepted trunk session from an Edge.
struct Proxy::TrunkServerConn
    : std::enable_shared_from_this<Proxy::TrunkServerConn> {
  Shard* shard = nullptr;
  h2::SessionPtr session;
  std::map<uint32_t, std::shared_ptr<OriginRequest>> requests;
  std::map<uint32_t, std::shared_ptr<BrokerTunnel>> brokerTunnels;
};

// Origin: one HTTP request being proxied to the App. Server tier.
struct Proxy::OriginRequest
    : std::enable_shared_from_this<Proxy::OriginRequest> {
  Shard* shard = nullptr;
  std::weak_ptr<TrunkServerConn> tc;
  uint32_t streamId = 0;
  http::Request head;       // method/path/headers; body streams
  bool isPost = false;
  bool clientDone = false;  // END_STREAM received from the edge

  ConnectionPtr appConn;
  std::string appName;
  http::ResponseParser resParser;
  bool connected = false;
  Buffer pendingBody;       // client body not yet written upstream
  uint64_t bodyForwarded = 0;

  // Partial Post Replay state (§4.3).
  int attempts = 0;
  std::set<std::string> excluded;  // app servers that already failed us
  bool finished = false;
  EventLoop::TimerId timer = 0;

  // Hop tracing: trace adopted from the trunk stream's x-zdr-trace
  // header; spanId is the origin-request span, attemptSpanId the
  // current kOriginAppAttempt child (re-minted per PPR attempt, same
  // trace id throughout).
  trace::TraceContext trace{};
  uint64_t reqStartNs = 0;
  uint64_t attemptSpanId = 0;
  uint64_t attemptStartNs = 0;

  // Bounded tail of body bytes already written to the current app
  // server. A 379 echoes what the server *received*; bytes still in
  // flight between our send() and its read() are recovered from this
  // tail. Bounded so the proxy never buffers whole POSTs (the §4.3
  // argument against option iii).
  std::string sentTail;
  void retainSent(std::string_view data) {
    sentTail.append(data);
    if (sentTail.size() > kSentTailLimit) {
      sentTail.erase(0, sentTail.size() - kSentTailLimit);
    }
  }
  static constexpr size_t kSentTailLimit = 256 * 1024;
};

// Origin: one MQTT tunnel stream relayed to a broker.
struct Proxy::BrokerTunnel
    : std::enable_shared_from_this<Proxy::BrokerTunnel> {
  std::weak_ptr<TrunkServerConn> tc;
  uint32_t streamId = 0;
  std::string userId;
  ConnectionPtr brokerConn;
  bool up = false;       // piping both ways
  bool resume = false;   // DCR re-attach; must CONNACK before piping
  Buffer pendingToBroker;
  Buffer resumeParseBuf;
  bool closed = false;

  // DCR reconnect span (resume tunnels only); trace id arrives on the
  // resume stream's x-zdr-trace header.
  trace::TraceContext trace{};
  uint64_t resumeStartNs = 0;
};

// Origin: one pass-through MQTT tunnel accepted on the trunk port
// (ZDRTUN preface) and relayed to a broker. Both legs live on the
// accepting shard's loop so Connection::startRelayTo can pair them.
struct Proxy::DirectTunnel
    : std::enable_shared_from_this<Proxy::DirectTunnel> {
  Shard* shard = nullptr;
  ConnectionPtr tunnelConn;  // edge-facing leg
  ConnectionPtr brokerConn;
  std::string userId;
  bool resume = false;
  bool up = false;       // relaying both ways
  bool closed = false;
  Buffer resumeParseBuf;  // buffers the broker CONNACK on resume
};

// Pass-through tunnel preface, sent by the edge as the first bytes on
// a fresh trunk-port connection:
//   "ZDRTUN <userId> <0|1>\n"      (1 ⇒ DCR resume)
// The origin answers a resume — after privately completing the broker
// re-attach handshake — with one verdict line ("ZDRTUN OK\n" or
// "ZDRTUN GONE\n"); non-resume tunnels get no reply, the broker's own
// CONNACK flows back through the relay. h2 trunk clients never emit
// these bytes first (frame headers differ), so the sniff is
// unambiguous.
inline constexpr std::string_view kTunnelPreface = "ZDRTUN ";
inline constexpr std::string_view kTunnelOk = "ZDRTUN OK\n";
inline constexpr std::string_view kTunnelGone = "ZDRTUN GONE\n";

// Pseudo-header names used on trunk streams.
inline constexpr std::string_view kHdrMethod = ":method";
inline constexpr std::string_view kHdrPath = ":path";
inline constexpr std::string_view kHdrStatus = ":status";
inline constexpr std::string_view kHdrTunnel = "x-zdr-tunnel";
inline constexpr std::string_view kHdrUserId = "x-zdr-user-id";
inline constexpr std::string_view kHdrResume = "x-zdr-resume";
inline constexpr std::string_view kHdrTrace = trace::kTraceHeaderName;

// Records one hop span into a shard's ring. No-op when tracing is off,
// the sink is missing, or the trace never got minted.
inline void recordSpan(trace::SpanSink* sink, uint64_t traceId,
                       uint64_t spanId, uint64_t parentId,
                       trace::SpanKind kind, uint32_t instance,
                       uint64_t startNs, uint64_t endNs,
                       uint64_t detail = 0) noexcept {
  if (sink == nullptr || traceId == 0 || !trace::tracingEnabled()) {
    return;
  }
  trace::Span s;
  s.traceId = traceId;
  s.spanId = spanId;
  s.parentId = parentId;
  s.kind = static_cast<uint32_t>(kind);
  s.instance = instance;
  s.startNs = startNs;
  s.endNs = endNs;
  s.detail = detail;
  sink->record(s);
}

}  // namespace zdr::proxygen
