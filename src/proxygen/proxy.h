// Proxygen-model L7 load balancer.
//
// One class serves both deployment roles (§2.1):
//  * Edge  — terminates user TCP/UDP connections on VIPs, serves
//            cacheable content locally (Direct-Server-Return model),
//            forwards requests and MQTT tunnels to Origin over
//            long-lived h2 trunks, and runs the Edge half of
//            Downstream Connection Reuse;
//  * Origin — accepts trunks from Edges, load-balances HTTP requests
//            over the App. Server tier (with Partial Post Replay),
//            relays MQTT tunnels to brokers chosen by consistent
//            hashing on user-id, and runs the Origin half of DCR.
//
// Both roles restart via Socket Takeover (§4.1): the old instance
// hands every listening socket fd to the freshly spun instance over a
// UNIX socket (SCM_RIGHTS), then drains.
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "h2/session.h"
#include "http/codec.h"
#include "l4lb/consistent_hash.h"
#include "l4lb/health.h"
#include "metrics/loop_recorder.h"
#include "metrics/metrics.h"
#include "mqtt/codec.h"
#include "netcore/connection.h"
#include "netcore/listener_group.h"
#include "proxygen/edge_cache.h"
#include "proxygen/upstream_pool.h"
#include "quicish/server.h"
#include "takeover/takeover.h"

namespace zdr::proxygen {

struct BackendRef {
  std::string name;
  SocketAddr addr;
};

class Proxy {
 public:
  enum class Role : uint8_t { kEdge, kOrigin };

  struct Config {
    std::string name = "proxy";
    Role role = Role::kEdge;
    uint32_t instanceId = 0;

    // Edge VIPs (port 0 ⇒ kernel-assigned, resolved after start).
    SocketAddr httpVip{};
    SocketAddr mqttVip{};
    SocketAddr quicVip{};
    bool enableHttpVip = true;
    bool enableMqttVip = false;
    bool enableQuicVip = false;

    // Origin trunk listener address.
    SocketAddr trunkAddr{};

    // Edge: upstream Origin proxies. Origin: App. Servers + brokers.
    std::vector<BackendRef> origins;
    std::vector<BackendRef> appServers;
    std::vector<BackendRef> brokers;

    Duration drainPeriod = Duration{2000};
    Duration requestTimeout = Duration{5000};
    std::string takeoverPath;  // UNIX path for the takeover server

    bool pprEnabled = true;
    int pprMaxRetries = 10;
    bool dcrEnabled = true;
    // §4.2 hardening: reconnect_solicitation rides a lossy network, so
    // a draining Origin re-sends it a few times during the drain
    // window (the Edge resume path is idempotent — duplicates are
    // cheap, a lost solicitation costs every tunnel on the trunk).
    int dcrSolicitRetries = 3;
    bool udpUserSpaceRouting = true;
    size_t udpWorkers = 4;
    // TCP worker counts: each worker is an event-loop thread owning
    // one SO_REUSEPORT listener per VIP and every connection it
    // accepts (§4.1's socket ring). 1 ⇒ the single-threaded behaviour
    // every pre-existing test assumes. Edge role uses httpWorkers,
    // origin role uses trunkWorkers.
    size_t httpWorkers = 1;
    size_t trunkWorkers = 1;
    bool edgeCacheEnabled = true;
    // Probing of App. Servers (origin role).
    l4lb::HealthChecker::Options appServerHealth{};

    // --- failure containment / overload protection ---
    // Per-backend circuit breaker knobs forwarded to every shard's
    // UpstreamPool (origin role).
    UpstreamPool::Options upstreamPool{};
    // Per-shard retry budget (Envoy-style): within each rolling
    // window, retries are allowed while
    //   retries < max(retryBudgetMinPerWindow,
    //                 retryBudgetRatio × requests-in-window).
    // Gates PPR replays, app connect-failure failovers and edge
    // re-dispatches so injected faults can't amplify into retry
    // storms. The floor keeps low-traffic shards (single-request
    // tests) retrying; the window resets so a burst can't starve
    // retries forever.
    double retryBudgetRatio = 0.2;
    uint64_t retryBudgetMinPerWindow = 32;
    Duration retryBudgetWindow = Duration{1000};
    // Admission control (edge role): cap on concurrently active user
    // requests per shard — excess requests are fast-failed with
    // 503 + Retry-After instead of queueing into timeout. 0 disables.
    size_t shedMaxInFlightPerShard = 4096;
    // Accept watermarks: the shard's ring listeners pause above high,
    // resume below low (0 ⇒ derived: high = 3/4, low = 1/2 of the
    // shed cap).
    size_t shedPauseHighWatermark = 0;
    size_t shedResumeLowWatermark = 0;
    // Drain-deadline watchdog: hard bound on the drain phase
    // (0 ⇒ drainPeriod). Stragglers past the deadline are force-closed
    // and reported via <name>.drain_forced_closes. A ZDR drain whose
    // work finishes early (no conns, trunks or tunnels left)
    // terminates without waiting out the period when drainEarlyExit
    // is set; hard drains always serve the full window (the instance
    // is still taking traffic while L4 shifts it away).
    Duration drainDeadline = Duration{0};
    bool drainEarlyExit = true;
    Duration drainWatchInterval = Duration{20};
    // Per-worker span ring capacity (hop tracing). Tests that assert
    // on complete span sets raise this so a long load phase cannot
    // wrap the ring.
    size_t spanSinkCapacity = 8192;
    // --- flight recorder (always-on observability) ---
    // Per-worker event-ring capacity: loop stalls, release edges and
    // disruption-attribution events (fixed memory budget; the ring
    // wraps, /__trace reports exact drop accounting).
    size_t eventRingCapacity = 4096;
    // Installs a LoopRecorder on every shard loop: per-iteration
    // poll/work histograms, per-callback-tag cumulative time, and
    // kLoopStall events blaming the offending tag whenever one
    // dispatch exceeds loopStallThreshold. Off ⇒ the loops take zero
    // extra clock reads (the bench's recorder-off cell).
    bool loopProfiling = true;
    Duration loopStallThreshold = Duration{25};

    // --- reduced-copy relay fast path ---
    // Upstream responses whose body is at least this large stream
    // straight from trunk DATA frames to the user connection (where
    // big segments become MSG_ZEROCOPY-eligible) instead of being
    // re-buffered whole and serialized again. 0 disables streaming.
    size_t relayThresholdBytes = 64 * 1024;
    // MQTT tunnels ride dedicated pass-through TCP connections between
    // Edge and Origin (a "ZDRTUN" preface on the trunk port) instead
    // of h2 trunk streams, so both hops can relay with splice(2).
    // DCR resume works identically: the draining origin's
    // reconnect_solicitation still arrives over the h2 trunk, and the
    // edge re-attaches tunnels via a fresh pass-through connection to
    // a healthy peer (make-before-break).
    bool mqttPassThrough = false;
  };

  // Fresh start: binds all configured VIPs.
  Proxy(EventLoop& loop, Config config, MetricsRegistry* metrics);
  // Socket Takeover start: adopts the old instance's sockets.
  Proxy(EventLoop& loop, Config config, MetricsRegistry* metrics,
        takeover::TakeoverClient::Result handoff);
  ~Proxy();
  Proxy(const Proxy&) = delete;
  Proxy& operator=(const Proxy&) = delete;

  // --- addresses (resolved after construction) ---
  [[nodiscard]] SocketAddr httpVip() const;
  [[nodiscard]] SocketAddr mqttVip() const;
  [[nodiscard]] SocketAddr quicVip() const;
  [[nodiscard]] SocketAddr trunkAddr() const;

  // --- release workflow ---
  // Arms the takeover server so an updated instance can take over.
  void armTakeoverServer();
  // HardRestart-style drain: fail health checks, stop nothing else.
  void startHardDrain();
  // ZDR drain: called automatically once the takeover peer ACKs.
  void enterDrain();
  // End of drain period: reset whatever is still alive.
  void terminate();

  [[nodiscard]] bool draining() const noexcept {
    return draining_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool terminated() const noexcept {
    return terminated_.load(std::memory_order_acquire);
  }
  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] const std::string& name() const noexcept {
    return config_.name;
  }

  // --- introspection for tests/experiments ---
  // Connection/session counts are kept in atomics (sharded state lives
  // on worker threads) so these are callable from any thread.
  [[nodiscard]] size_t userConnCount() const noexcept {
    return userConnCount_.load(std::memory_order_acquire);
  }
  [[nodiscard]] size_t mqttTunnelCount() const noexcept {
    return mqttTunnels_.size();
  }
  // Origin role: live pass-through MQTT tunnels (ZDRTUN preface).
  [[nodiscard]] size_t directTunnelCount() const noexcept {
    return directTunnelCount_.load(std::memory_order_acquire);
  }
  [[nodiscard]] size_t trunkSessionCount() const noexcept {
    return trunkSessionCount_.load(std::memory_order_acquire);
  }
  [[nodiscard]] quicish::Server* quicServer() noexcept {
    return quicServer_.get();
  }
  [[nodiscard]] l4lb::HealthChecker* appServerHealth() noexcept {
    return appHealth_.get();
  }
  // Shard 0's pool (the only shard when trunkWorkers == 1).
  [[nodiscard]] UpstreamPool* upstreamPool() noexcept;
  // Number of event-loop shards serving this role (>= 1; shard 0 is
  // the primary loop).
  [[nodiscard]] size_t shardCount() const noexcept;

 private:
  // ---------- shared ----------
  struct UserHttpConn;     // edge: one user-facing HTTP connection
  struct MqttTunnel;       // edge: one user MQTT connection + its stream
  struct TrunkLink;        // edge: one trunk session to an origin
  struct TrunkServerConn;  // origin: one accepted trunk session
  struct OriginRequest;    // origin: one HTTP request being proxied
  struct BrokerTunnel;     // origin: one MQTT tunnel to a broker
  struct DirectTunnel;     // origin: one pass-through tunnel to a broker
  // One event-loop shard: a worker loop plus every piece of per-
  // connection state confined to it (defined in proxy_detail.h).
  struct Shard;

  void initCommon();
  void startFresh();
  void startFromHandoff(takeover::TakeoverClient::Result handoff);
  void bump(const std::string& counter, uint64_t n = 1);
  static void bumpHot(Counter* c, uint64_t n = 1) {
    if (c != nullptr) {
      c->add(n);
    }
  }
  // Release-timeline events (no-ops without a registry).
  void tlPoint(const std::string& phase, const std::string& detail = {});
  void tlBegin(const std::string& phase, const std::string& detail = {});
  void tlEnd(const std::string& phase, const std::string& detail = {});
  // Release phase this instance is currently in, for disruption
  // attribution; derived from the drain/terminate flags, callable from
  // any thread.
  [[nodiscard]] fr::ReleasePhase currentReleasePhase() const noexcept;
  // Attributes one client-visible disruption: bumps the exact
  // "<name>.disruption.<cause>" counter and records a kDisruption
  // event carrying the request's trace id plus (cause, phase) packed
  // into the detail word. `sh` may be null (primary-loop state such as
  // MQTT tunnels) — the event then lands in shard 0's ring.
  void noteDisruption(Shard* sh, fr::DisruptionCause cause,
                      uint64_t traceId = 0);
  // Once-per-request attribution for user HTTP requests: the first
  // error site to fire wins. (A terminate-forced reset synchronously
  // re-enters the connection's close callback — without the guard the
  // same failed request would attribute twice.)
  void edgeNoteDisruption(const std::shared_ptr<UserHttpConn>& uc,
                          fr::DisruptionCause cause);
  // Retry budget (see Config): called on the shard's own thread.
  void noteShardRequest(Shard& sh);
  [[nodiscard]] bool trySpendRetryToken(Shard& sh);
  // Admission control: true ⇒ the request was shed (503 already sent).
  bool edgeMaybeShed(const std::shared_ptr<UserHttpConn>& uc);
  void edgeNoteRequestDone(Shard& sh);
  // Budget-gated re-dispatch of an idempotent request whose trunk
  // stream aborted; true ⇒ the request was re-sent on another trunk.
  bool edgeTryRedispatch(const std::shared_ptr<UserHttpConn>& uc);
  // Drain watchdog body (primary loop).
  void drainWatchTick();
  takeover::Inventory buildInventory(std::vector<int>& fds);
  // Runs fn(shard) on every shard's own loop thread, synchronously,
  // in shard order. Primary-thread only.
  void forEachShard(const std::function<void(Shard&)>& fn);
  [[nodiscard]] size_t tcpWorkerCount() const noexcept {
    size_t n = config_.role == Role::kEdge ? config_.httpWorkers
                                           : config_.trunkWorkers;
    return n == 0 ? 1 : n;
  }

  // ---------- edge ----------
  void edgeOnHttpAccept(Shard& sh, TcpSocket sock);
  void edgeOnHttpRequestHeaders(const std::shared_ptr<UserHttpConn>& uc);
  // Forwards the parsed request over a trunk; retried briefly while
  // trunks are still connecting (instance bring-up after a takeover).
  void edgeDispatchUpstream(const std::shared_ptr<UserHttpConn>& uc);
  void edgeOnHttpBody(const std::shared_ptr<UserHttpConn>& uc,
                      std::string_view fragment, bool last);
  void edgeServeLocal(const std::shared_ptr<UserHttpConn>& uc,
                      const http::Response& res);
  // Writes the buffered upstream response to the user and recycles or
  // (when draining) retires the connection.
  void edgeDeliverUpstreamResponse(const std::shared_ptr<UserHttpConn>& uc);
  void edgeFinishUserRequest(const std::shared_ptr<UserHttpConn>& uc);
  void edgeFailUserRequest(const std::shared_ptr<UserHttpConn>& uc,
                           int status, const std::string& why);
  TrunkLink* edgePickTrunk(Shard& sh);
  void edgeEnsureTrunk(Shard& sh, size_t idx);
  void edgeOnTrunkControl(TrunkLink* link, const h2::Frame& frame);
  void edgeOnTrunkClosed(TrunkLink* link);
  void edgeOnMqttAccept(TcpSocket sock);
  void edgeOpenMqttTunnel(const std::shared_ptr<MqttTunnel>& tun,
                          bool resume);
  // Pass-through variant: dials a dedicated TCP connection to an
  // origin's trunk port, sends the ZDRTUN preface, and relays
  // user↔origin with the splice fast path. For resume, solTraceId/
  // solSpanId carry the solicitation trace (as in edgeResumeMqttTunnels)
  // and origin names the healthy peer to re-attach through.
  void edgeOpenDirectTunnel(const std::shared_ptr<MqttTunnel>& tun,
                            bool resume, const BackendRef& origin,
                            uint64_t solTraceId = 0, uint64_t solSpanId = 0);
  // solTraceId/solSpanId: trace carried by the reconnect_solicitation
  // frame (0 ⇒ none; a fresh trace is minted per tunnel).
  void edgeResumeMqttTunnels(TrunkLink* fromLink, uint64_t solTraceId = 0,
                             uint64_t solSpanId = 0);
  void edgeDropMqttTunnel(const std::shared_ptr<MqttTunnel>& tun,
                          std::error_code why);

  // ---------- origin ----------
  void originOnTrunkAccept(Shard& sh, TcpSocket sock);
  void originOnStreamHeaders(const std::shared_ptr<TrunkServerConn>& tc,
                             uint32_t streamId, const h2::HeaderList& headers,
                             bool endStream);
  void originOnStreamData(const std::shared_ptr<TrunkServerConn>& tc,
                          uint32_t streamId, std::string_view data,
                          bool endStream);
  void originStartAppRequest(const std::shared_ptr<OriginRequest>& req);
  void originConnectApp(const std::shared_ptr<OriginRequest>& req,
                        const std::string& excludeName);
  void originOnAppResponse(const std::shared_ptr<OriginRequest>& req);
  void originReplayPartialPost(const std::shared_ptr<OriginRequest>& req,
                               const http::Response& res379);
  void originFinishRequest(const std::shared_ptr<OriginRequest>& req,
                           const http::Response& res);
  // Fails the request back to the edge with `status` and attributes
  // the disruption: `cause` names the mechanism that gave up, but an
  // injected fault on the app leg trumps it (the chaos E2E demands
  // sabotage is blamed on the fault, not on the symptom).
  void originFailRequest(const std::shared_ptr<OriginRequest>& req,
                         int status, const std::string& why,
                         fr::DisruptionCause cause);
  void originOpenBrokerTunnel(const std::shared_ptr<TrunkServerConn>& tc,
                              uint32_t streamId, const std::string& userId,
                              bool resume, uint64_t traceId = 0,
                              uint64_t parentSpanId = 0);
  // Builds the h2 trunk session over an accepted connection whose
  // preface sniff came back "not a ZDRTUN tunnel".
  void originStartTrunkSession(Shard& sh, const ConnectionPtr& conn);
  // ZDRTUN pass-through: dials the user's broker and relays
  // tunnel↔broker with the splice fast path. For resume, synthesizes
  // the re-attach CONNECT, consumes the CONNACK, and answers the edge
  // with a one-line verdict before any broker byte flows.
  void originOpenDirectTunnel(Shard& sh, const ConnectionPtr& conn,
                              const std::string& userId, bool resume);
  void originCloseDirectTunnel(const std::shared_ptr<DirectTunnel>& dt);
  const BackendRef* originPickAppServer(Shard& sh,
                                        const std::string& excludeName);
  const BackendRef* originBrokerFor(const std::string& userId);

  EventLoop& loop_;
  Config config_;
  MetricsRegistry* metrics_;

  // Counters bumped on every request ride pre-resolved pointers: the
  // registry's map lookup (string hash + lock) is off the hot path.
  // Counter addresses are stable for the registry's lifetime.
  struct HotCounters {
    Counter* requests = nullptr;          // "<name>.requests"
    Counter* responsesRelayed = nullptr;  // edge "<name>.responses_relayed"
    Counter* responsesSent = nullptr;     // origin "<name>.responses_sent"
    Counter* httpConnAccepted = nullptr;  // edge "<name>.http_conn_accepted"
    Counter* trunkAccepted = nullptr;     // origin "<name>.trunk_accepted"
    Counter* cacheHit = nullptr;          // "edge.cache_hit"
    Counter* cacheMiss = nullptr;         // "edge.cache_miss"
  };
  HotCounters hot_;

  // Loop self-profiling observers, one per shard loop. Declared before
  // workers_ so they are destroyed after the worker loops have joined;
  // terminate() uninstalls them from the primary loop (which outlives
  // this proxy) before they die.
  std::vector<std::unique_ptr<fr::LoopRecorder>> loopRecorders_;
  // Worker threads + per-worker state. Declared before the listener
  // groups (which hold Acceptors living on worker loops) so listeners
  // are destroyed first; terminate() clears each shard's connection
  // state on its own thread before ~WorkerPool joins the loops.
  std::unique_ptr<WorkerPool> workers_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Listeners (either freshly bound or adopted via takeover).
  // http/trunk are SO_REUSEPORT rings spread over the workers; mqtt
  // stays on the primary loop (tunnels are pinned to shard 0).
  std::unique_ptr<ListenerGroup> httpListeners_;
  std::vector<std::unique_ptr<Acceptor>> mqttAcceptors_;
  std::unique_ptr<ListenerGroup> trunkListeners_;
  std::unique_ptr<quicish::Server> quicServer_;

  std::unique_ptr<takeover::TakeoverServer> takeoverServer_;

  // Edge state that stays on the primary loop (MQTT tunnels only ever
  // ride shard-0 trunk links).
  std::set<std::shared_ptr<MqttTunnel>> mqttTunnels_;
  EdgeCache edgeCache_;

  // Origin state shared across shards (HealthChecker/EdgeCache are
  // internally locked; brokerHash_ is immutable after construction).
  std::unique_ptr<l4lb::HealthChecker> appHealth_;
  std::unique_ptr<l4lb::ConsistentHash> brokerHash_;

  std::atomic<size_t> userConnCount_{0};
  std::atomic<size_t> trunkSessionCount_{0};
  std::atomic<size_t> directTunnelCount_{0};

  std::atomic<bool> draining_{false};
  std::atomic<bool> hardDraining_{false};
  std::atomic<bool> terminated_{false};
  EventLoop::TimerId drainTimer_ = 0;
  EventLoop::TimerId solicitTimer_ = 0;
  EventLoop::TimerId drainWatchTimer_ = 0;
  TimePoint drainStart_{};
  int solicitRetriesLeft_ = 0;
  // The drain deadline fired with work still in flight: terminate's
  // forced closes are then drain-deadline casualties, not ordinary
  // end-of-restart resets. Primary-thread only.
  bool drainDeadlineHit_ = false;

  // Hop tracing. traceInstance_ names this proxy in recorded spans;
  // the drain trace is minted at enterDrain() and rides every
  // reconnect_solicitation so DCR resume spans across tiers share one
  // trace id.
  uint32_t traceInstance_ = 0;
  uint64_t drainTraceId_ = 0;
  uint64_t drainSpanId_ = 0;
};

}  // namespace zdr::proxygen
