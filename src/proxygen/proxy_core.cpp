// Proxy lifecycle: construction (fresh and via Socket Takeover),
// takeover server, drain orchestration, teardown.
//
// Threading: the Proxy is constructed, drained, and destroyed on the
// primary loop's thread. Per-connection state lives in Shards, each
// confined to one event-loop thread; the lifecycle code below reaches
// into shards only through forEachShard (runSync fan-out), which
// serializes against the shard's own callbacks.
#include "proxygen/proxy_detail.h"

namespace zdr::proxygen {

Proxy::Proxy(EventLoop& loop, Config config, MetricsRegistry* metrics)
    : loop_(loop), config_(std::move(config)), metrics_(metrics) {
  initCommon();
  startFresh();
}

Proxy::Proxy(EventLoop& loop, Config config, MetricsRegistry* metrics,
             takeover::TakeoverClient::Result handoff)
    : loop_(loop), config_(std::move(config)), metrics_(metrics) {
  initCommon();
  startFromHandoff(std::move(handoff));
}

Proxy::~Proxy() {
  if (!terminated()) {
    terminate();
  }
}

void Proxy::bump(const std::string& counter, uint64_t n) {
  if (metrics_) {
    metrics_->counter(counter).add(n);
  }
}

void Proxy::tlPoint(const std::string& phase, const std::string& detail) {
  if (metrics_) {
    metrics_->timeline().point(config_.name, phase, detail);
  }
}
void Proxy::tlBegin(const std::string& phase, const std::string& detail) {
  if (metrics_) {
    metrics_->timeline().begin(config_.name, phase, detail);
  }
}
void Proxy::tlEnd(const std::string& phase, const std::string& detail) {
  if (metrics_) {
    metrics_->timeline().end(config_.name, phase, detail);
  }
}

fr::ReleasePhase Proxy::currentReleasePhase() const noexcept {
  if (terminated_.load(std::memory_order_acquire)) {
    return fr::ReleasePhase::kShutdown;
  }
  if (hardDraining_.load(std::memory_order_acquire)) {
    return fr::ReleasePhase::kHardDrain;
  }
  if (draining_.load(std::memory_order_acquire)) {
    return fr::ReleasePhase::kDrain;
  }
  return fr::ReleasePhase::kSteady;
}

void Proxy::noteDisruption(Shard* sh, fr::DisruptionCause cause,
                           uint64_t traceId) {
  const fr::ReleasePhase phase = currentReleasePhase();
  // The counter is the exact tally (E2E equality assertions); the ring
  // event carries the trace id and phase for offline attribution.
  bump(config_.name + ".disruption." + fr::disruptionCauseName(cause));
  fr::EventRing* ring = sh != nullptr ? sh->events
                        : shards_.empty() ? nullptr
                                          : shards_.front()->events;
  fr::recordEvent(ring, fr::EventKind::kDisruption, traceInstance_, 0,
                  traceId, fr::packCausePhase(cause, phase));
}

UpstreamPool* Proxy::upstreamPool() noexcept {
  return shards_.empty() ? nullptr : shards_.front()->appPool.get();
}

size_t Proxy::shardCount() const noexcept { return shards_.size(); }

// --- retry budget -----------------------------------------------------
// Windowed, Envoy-style: retries are allowed while
//   retries < max(floor, ratio × requests)
// over a rolling window. Counting requests keeps the cap proportional
// to load; the floor keeps single-request flows (one PPR replay chain)
// retryable; the window reset means a past burst can't starve retries
// forever. Shard-confined — call on the shard's own thread.

namespace {
// Template so the (private) Shard type is deduced, never named.
template <typename ShardT>
void resetRetryWindowIfStale(ShardT& sh, TimePoint now, Duration window) {
  if (sh.retryWindowStart == TimePoint{} ||
      now - sh.retryWindowStart > window) {
    sh.retryWindowStart = now;
    sh.windowRequests = 0;
    sh.windowRetries = 0;
  }
}
}  // namespace

void Proxy::noteShardRequest(Shard& sh) {
  resetRetryWindowIfStale(sh, Clock::now(), config_.retryBudgetWindow);
  ++sh.windowRequests;
}

bool Proxy::trySpendRetryToken(Shard& sh) {
  resetRetryWindowIfStale(sh, Clock::now(), config_.retryBudgetWindow);
  auto proportional = static_cast<uint64_t>(
      config_.retryBudgetRatio * static_cast<double>(sh.windowRequests));
  uint64_t allowed = proportional > config_.retryBudgetMinPerWindow
                         ? proportional
                         : config_.retryBudgetMinPerWindow;
  if (sh.windowRetries >= allowed) {
    bump("shard.retry_budget_exhausted");
    return false;
  }
  ++sh.windowRetries;
  bump("shard.retries");
  return true;
}

void Proxy::forEachShard(const std::function<void(Shard&)>& fn) {
  for (auto& sh : shards_) {
    workers_->runOn(sh->idx, [&fn, &sh] { fn(*sh); });
  }
}

void Proxy::initCommon() {
  workers_ = std::make_unique<WorkerPool>(loop_, tcpWorkerCount(),
                                          config_.name + ".worker");
  traceInstance_ = trace::internInstance(config_.name);
  shards_.reserve(workers_->size());
  for (size_t i = 0; i < workers_->size(); ++i) {
    auto sh = std::make_unique<Shard>();
    sh->idx = i;
    sh->loop = &workers_->loop(i);
    if (metrics_) {
      // Resolved here — before any work referencing the shard is
      // posted to its loop — so worker threads see the handles without
      // further synchronization.
      std::string wname = config_.name + ".w" + std::to_string(i);
      sh->spans = &metrics_->spanSink(wname, config_.spanSinkCapacity);
      sh->events = &metrics_->eventRing(wname, config_.eventRingCapacity);
      sh->requestUs = &metrics_->hdr(wname + ".request_us");
      sh->inflightPeak = &metrics_->maxGauge(wname + ".inflight_peak");
      sh->copyBytesPerReq = &metrics_->hdr(wname + ".copy_bytes_per_req");
      if (config_.loopProfiling) {
        // Always-on loop self-profiling: install is safe against the
        // already-running loop (release/acquire publish); terminate()
        // uninstalls on each shard's own thread before the recorders
        // die with this proxy.
        loopRecorders_.push_back(std::make_unique<fr::LoopRecorder>(
            *metrics_, wname, config_.eventRingCapacity));
        sh->recorder = loopRecorders_.back().get();
        sh->loop->setObserver(sh->recorder, config_.loopStallThreshold);
      }
    }
    shards_.push_back(std::move(sh));
  }

  if (metrics_) {
    hot_.requests = &metrics_->counter(config_.name + ".requests");
    if (config_.role == Role::kEdge) {
      hot_.responsesRelayed =
          &metrics_->counter(config_.name + ".responses_relayed");
      hot_.httpConnAccepted =
          &metrics_->counter(config_.name + ".http_conn_accepted");
      hot_.cacheHit = &metrics_->counter("edge.cache_hit");
      hot_.cacheMiss = &metrics_->counter("edge.cache_miss");
    } else {
      hot_.responsesSent =
          &metrics_->counter(config_.name + ".responses_sent");
      hot_.trunkAccepted =
          &metrics_->counter(config_.name + ".trunk_accepted");
    }
  }

  if (config_.role == Role::kOrigin) {
    // Each shard gets its own pool: pooled connections live on the
    // shard's loop, and the pool's reap timer must be armed on the
    // loop that owns it.
    forEachShard([this](Shard& sh) {
      UpstreamPool::Options poolOpts = config_.upstreamPool;
      if (poolOpts.faultTag.empty()) {
        poolOpts.faultTag = "origin.app";
      }
      if (poolOpts.instanceName.empty()) {
        poolOpts.instanceName = config_.name;
      }
      sh.appPool = std::make_unique<UpstreamPool>(*sh.loop, poolOpts,
                                                  metrics_);
    });
    if (!config_.appServers.empty()) {
      std::vector<l4lb::BackendTarget> targets;
      for (const auto& a : config_.appServers) {
        targets.push_back({a.name, a.addr});
      }
      appHealth_ = std::make_unique<l4lb::HealthChecker>(
          loop_, std::move(targets), config_.appServerHealth, nullptr,
          metrics_);
    }
    brokerHash_ = std::make_unique<l4lb::MaglevHash>();
    std::vector<std::string> brokerNames;
    for (const auto& b : config_.brokers) {
      brokerNames.push_back(b.name);
    }
    brokerHash_->rebuild(brokerNames);
  }
}

void Proxy::startFresh() {
  if (config_.role == Role::kEdge) {
    if (config_.enableHttpVip) {
      httpListeners_ = std::make_unique<ListenerGroup>(
          *workers_, bindTcpRing(config_.httpVip, workers_->size()),
          [this](size_t w, TcpSocket s) {
            edgeOnHttpAccept(*shards_[w], std::move(s));
          });
    }
    if (config_.enableMqttVip) {
      // MQTT stays on the primary loop: tunnels are pinned to shard 0
      // so DCR resume never has to coordinate across workers.
      mqttAcceptors_.push_back(std::make_unique<Acceptor>(
          loop_, TcpListener(config_.mqttVip, BindOptions{}),
          [this](TcpSocket s) { edgeOnMqttAccept(std::move(s)); }));
    }
    if (config_.enableQuicVip) {
      quicish::Server::Options qo;
      qo.instanceId = config_.instanceId;
      qo.numWorkers = config_.udpWorkers;
      qo.userSpaceRouting = config_.udpUserSpaceRouting;
      quicServer_ = std::make_unique<quicish::Server>(loop_, config_.quicVip,
                                                      qo, metrics_);
    }
    // Every shard establishes its own trunks to every configured
    // origin (connections are thread-confined; sharing one session
    // across loops would mean locking the whole h2 stack).
    forEachShard([this](Shard& sh) {
      for (size_t i = 0; i < config_.origins.size(); ++i) {
        sh.trunkLinks.push_back(std::make_unique<TrunkLink>());
        sh.trunkLinks.back()->shard = &sh;
        sh.trunkLinks.back()->origin = config_.origins[i];
        sh.trunkLinks.back()->idx = i;
        edgeEnsureTrunk(sh, i);
      }
    });
  } else {
    trunkListeners_ = std::make_unique<ListenerGroup>(
        *workers_, bindTcpRing(config_.trunkAddr, workers_->size()),
        [this](size_t w, TcpSocket s) {
          originOnTrunkAccept(*shards_[w], std::move(s));
        });
  }
}

void Proxy::startFromHandoff(takeover::TakeoverClient::Result handoff) {
  // Adopt each passed socket by VIP name. Every descriptor must be
  // consumed — an ignored fd would keep a kernel socket alive with
  // nobody reading it, black-holing its share of traffic (§5.1).
  std::vector<FdGuard> quicFds;
  std::vector<TcpListener> httpRing;
  std::vector<TcpListener> mqttRing;
  std::vector<TcpListener> trunkRing;
  for (auto& taken : handoff.sockets) {
    if (taken.desc.proto == takeover::Proto::kUdp) {
      quicFds.push_back(std::move(taken.fd));
    } else if (taken.desc.vipName == "http") {
      httpRing.push_back(TcpListener::fromFd(std::move(taken.fd)));
    } else if (taken.desc.vipName == "mqtt") {
      mqttRing.push_back(TcpListener::fromFd(std::move(taken.fd)));
    } else if (taken.desc.vipName == "trunk") {
      trunkRing.push_back(TcpListener::fromFd(std::move(taken.fd)));
    }
    // Unknown names fall out of scope here and are closed — never
    // silently leaked.
  }

  // Dial the trunks *before* arming the adopted rings: the rings carry
  // a backlog of live SYNs from the handoff window, and a request must
  // never race ahead of its shard's trunk links even starting to
  // connect (edgeDispatchUpstream only waits for links it can see
  // connecting).
  if (config_.role == Role::kEdge) {
    forEachShard([this](Shard& sh) {
      for (size_t i = 0; i < config_.origins.size(); ++i) {
        sh.trunkLinks.push_back(std::make_unique<TrunkLink>());
        sh.trunkLinks.back()->shard = &sh;
        sh.trunkLinks.back()->origin = config_.origins[i];
        sh.trunkLinks.back()->idx = i;
        edgeEnsureTrunk(sh, i);
      }
    });
  }

  // The adopted ring size need not match our worker count (the new
  // release may be configured differently). ListenerGroup places
  // listener i on worker i % M: a surplus stacks extra acceptors on
  // the early workers (never orphaned, §5.1), a deficit leaves some
  // workers accept-less but still serving takeover'd flows.
  auto adoptRing = [this](std::vector<TcpListener> ring,
                          ListenerGroup::AcceptCallback cb)
      -> std::unique_ptr<ListenerGroup> {
    if (ring.empty()) {
      return nullptr;
    }
    size_t workers = workers_->size();
    bump(config_.name + ".ring_adopted_fds", ring.size());
    if (ring.size() > workers) {
      bump(config_.name + ".ring_fd_surplus", ring.size() - workers);
    } else if (ring.size() < workers) {
      bump(config_.name + ".ring_idle_workers", workers - ring.size());
    }
    return std::make_unique<ListenerGroup>(*workers_, std::move(ring),
                                           std::move(cb));
  };
  httpListeners_ =
      adoptRing(std::move(httpRing), [this](size_t w, TcpSocket s) {
        edgeOnHttpAccept(*shards_[w], std::move(s));
      });
  trunkListeners_ =
      adoptRing(std::move(trunkRing), [this](size_t w, TcpSocket s) {
        originOnTrunkAccept(*shards_[w], std::move(s));
      });
  for (auto& l : mqttRing) {
    mqttAcceptors_.push_back(std::make_unique<Acceptor>(
        loop_, std::move(l),
        [this](TcpSocket s) { edgeOnMqttAccept(std::move(s)); }));
  }

  if (!quicFds.empty()) {
    quicish::Server::Options qo;
    qo.instanceId = config_.instanceId;
    qo.numWorkers = quicFds.size();
    qo.userSpaceRouting = config_.udpUserSpaceRouting;
    quicServer_ = std::make_unique<quicish::Server>(loop_, std::move(quicFds),
                                                    qo, metrics_);
    if (handoff.inventory.hasUdpForwardAddr) {
      quicServer_->setForwardPeer(handoff.inventory.udpForwardAddr);
    }
  }
  bump(config_.name + ".takeover_adopted");
  tlPoint("ring_adopted", std::to_string(handoff.sockets.size()));
  fr::recordEvent(shards_.empty() ? nullptr : shards_.front()->events,
                  fr::EventKind::kTakeoverEdge, traceInstance_, 0, 0,
                  handoff.sockets.size());
}

takeover::Inventory Proxy::buildInventory(std::vector<int>& fds) {
  takeover::Inventory inv;
  auto addGroup = [&](const char* name, ListenerGroup* group) {
    if (group == nullptr || group->count() == 0) {
      return;
    }
    for (int fd : group->fds()) {
      takeover::SocketDescriptor d;
      d.vipName = name;
      d.proto = takeover::Proto::kTcp;
      d.addr = group->localAddr();
      inv.sockets.push_back(std::move(d));
      fds.push_back(fd);
    }
    inv.rings.push_back({name, static_cast<uint32_t>(group->count())});
  };
  addGroup("http", httpListeners_.get());
  for (const auto& acc : mqttAcceptors_) {
    takeover::SocketDescriptor d;
    d.vipName = "mqtt";
    d.proto = takeover::Proto::kTcp;
    d.addr = acc->localAddr();
    inv.sockets.push_back(std::move(d));
    fds.push_back(acc->fd());
  }
  if (mqttAcceptors_.size() > 1) {
    inv.rings.push_back(
        {"mqtt", static_cast<uint32_t>(mqttAcceptors_.size())});
  }
  addGroup("trunk", trunkListeners_.get());
  if (quicServer_) {
    size_t i = 0;
    for (int fd : quicServer_->vipSocketFds()) {
      takeover::SocketDescriptor d;
      d.vipName = "quic" + std::to_string(i++);
      d.proto = takeover::Proto::kUdp;
      d.addr = quicServer_->vip();
      inv.sockets.push_back(d);
      fds.push_back(fd);
    }
    inv.hasUdpForwardAddr = true;
    inv.udpForwardAddr = quicServer_->forwardAddr();
  }
  tlPoint("handoff_inventory", std::to_string(inv.sockets.size()));
  return inv;
}

void Proxy::armTakeoverServer() {
  takeoverServer_ = std::make_unique<takeover::TakeoverServer>(
      loop_, config_.takeoverPath,
      [this](std::vector<int>& fds) { return buildInventory(fds); },
      [this] { enterDrain(); });
  tlPoint("takeover_armed");
  fr::recordEvent(shards_.empty() ? nullptr : shards_.front()->events,
                  fr::EventKind::kTakeoverEdge, traceInstance_, 0, 0, 0);
}

SocketAddr Proxy::httpVip() const {
  return httpListeners_ ? httpListeners_->localAddr() : SocketAddr{};
}
SocketAddr Proxy::mqttVip() const {
  return mqttAcceptors_.empty() ? SocketAddr{}
                                : mqttAcceptors_.front()->localAddr();
}
SocketAddr Proxy::quicVip() const {
  return quicServer_ ? quicServer_->vip() : SocketAddr{};
}
SocketAddr Proxy::trunkAddr() const {
  return trunkListeners_ ? trunkListeners_->localAddr() : SocketAddr{};
}

void Proxy::startHardDrain() {
  // Traditional release (§2.3): fail health checks so the L4 layer
  // pulls us from the ring, stop accepting, let existing connections
  // run out the drain period, then reset whatever is left. The
  // acceptors keep running so the health endpoint answers (503) and
  // requests are still served during drain, which is exactly how
  // production draining behaves (traffic moves away as health checks
  // fail).
  hardDraining_.store(true, std::memory_order_release);
  draining_.store(true, std::memory_order_release);
  bump(config_.name + ".hard_drain_started");
  tlBegin("hard_drain");
  fr::recordEvent(shards_.empty() ? nullptr : shards_.front()->events,
                  fr::EventKind::kDrainEdge, traceInstance_, 0, 0,
                  fr::packCausePhase(fr::DisruptionCause::kNone,
                                     fr::ReleasePhase::kHardDrain));
  if (config_.role == Role::kOrigin) {
    // Edge↔Origin trunks are HTTP/2: graceful GOAWAY is available even
    // in the traditional flow (§2.2).
    forEachShard([](Shard& sh) {
      for (const auto& tc : sh.trunkServerSessions) {
        tc->session->sendGoaway("hard-drain");
      }
    });
  }
  // Hard drains always serve the full window (the instance is still in
  // the L4 ring while health checks fail it out), so the deadline is
  // the only watchdog — no early exit.
  Duration deadline = config_.drainDeadline.count() > 0
                          ? config_.drainDeadline
                          : config_.drainPeriod;
  drainStart_ = Clock::now();
  drainTimer_ = loop_.runAfter(
      deadline,
      [this] {
        if (userConnCount() + trunkSessionCount() + mqttTunnels_.size() +
                directTunnelCount() > 0) {
          drainDeadlineHit_ = true;
          bump(config_.name + ".drain_deadline_exceeded");
          bump("release.drain_deadline_exceeded");
          tlPoint("drain_deadline_exceeded");
        }
        terminate();
      },
      "timer.drain_deadline");
}

void Proxy::enterDrain() {
  // ZDR drain (Fig 5 step E): the updated instance has ACKed and owns
  // the listening sockets; we finish what we started and go away.
  if (draining_.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  bump(config_.name + ".zdr_drain_started");
  // The drain trace: every reconnect_solicitation sent during this
  // drain carries it, so DCR resume spans recorded at the Edge and the
  // re-attach spans at the peer Origin all join one trace. The header
  // string doubles as the timeline window's detail for test/offline
  // correlation.
  drainTraceId_ = trace::newId();
  drainSpanId_ = trace::newId();
  tlBegin("zdr_drain",
          trace::formatTraceHeader(drainTraceId_, drainSpanId_));
  fr::recordEvent(shards_.empty() ? nullptr : shards_.front()->events,
                  fr::EventKind::kDrainEdge, traceInstance_, 0,
                  drainTraceId_,
                  fr::packCausePhase(fr::DisruptionCause::kNone,
                                     fr::ReleasePhase::kDrain));

  // Stop accepting: close our dup of the listening fds (the updated
  // instance keeps the sockets alive).
  if (httpListeners_) {
    httpListeners_->closeAll();
  }
  for (const auto& acc : mqttAcceptors_) {
    acc->close();
  }
  if (trunkListeners_) {
    trunkListeners_->closeAll();
  }
  if (quicServer_) {
    quicServer_->enterDrain();
  }

  if (config_.role == Role::kOrigin) {
    forEachShard([this](Shard& sh) {
      for (const auto& tc : sh.trunkServerSessions) {
        tc->session->sendGoaway("zdr-drain");
        if (config_.dcrEnabled) {
          // §4.2: solicit the Edge to move MQTT tunnels to a healthy
          // peer before we terminate. The payload carries the drain
          // trace so the Edge's resume spans join it.
          tc->session->sendControl(
              h2::FrameType::kReconnectSolicitation,
              trace::formatTraceHeader(drainTraceId_, drainSpanId_));
          bump(config_.name + ".dcr_solicitations_sent");
        }
      }
    });
    if (config_.dcrEnabled && config_.dcrSolicitRetries > 0) {
      // A solicitation frame can be lost in transit; re-send a few
      // times across the drain window. The Edge resume path is
      // idempotent, so duplicates are harmless. Each tick posts the
      // re-send onto every shard's own loop; posted work drains
      // before terminate's fan-out reaches the shard, and checks
      // terminated_ so a late tick is a no-op.
      solicitRetriesLeft_ = config_.dcrSolicitRetries;
      Duration interval =
          std::max(Duration{10}, config_.drainPeriod /
                                     (config_.dcrSolicitRetries + 1));
      solicitTimer_ = loop_.runEvery(
          interval,
          [this] {
            if (terminated() || solicitRetriesLeft_ <= 0) {
              loop_.cancelTimer(solicitTimer_);
              solicitTimer_ = 0;
              return;
            }
            --solicitRetriesLeft_;
            for (auto& shPtr : shards_) {
              Shard* sh = shPtr.get();
              sh->loop->runInLoop([this, sh] {
                if (terminated()) {
                  return;
                }
                for (const auto& tc : sh->trunkServerSessions) {
                  tc->session->sendControl(
                      h2::FrameType::kReconnectSolicitation,
                      trace::formatTraceHeader(drainTraceId_, drainSpanId_));
                  bump(config_.name + ".dcr_solicitations_resent");
                }
              });
            }
          },
          "timer.dcr_solicit");
    }
  }

  // Drain-deadline watchdog: the deadline bounds the drain phase hard
  // (stragglers past it are force-closed and reported); the periodic
  // tick lets an instance whose work finished early leave without
  // waiting out the window.
  Duration deadline = config_.drainDeadline.count() > 0
                          ? config_.drainDeadline
                          : config_.drainPeriod;
  drainStart_ = Clock::now();
  drainTimer_ = loop_.runAfter(
      deadline,
      [this] {
        if (userConnCount() + trunkSessionCount() + mqttTunnels_.size() +
                directTunnelCount() > 0) {
          drainDeadlineHit_ = true;
          bump(config_.name + ".drain_deadline_exceeded");
          bump("release.drain_deadline_exceeded");
          tlPoint("drain_deadline_exceeded");
        }
        terminate();
      },
      "timer.drain_deadline");
  if (config_.drainEarlyExit) {
    drainWatchTimer_ =
        loop_.runEvery(config_.drainWatchInterval,
                       [this] { drainWatchTick(); }, "timer.drain_watch");
  }
}

void Proxy::drainWatchTick() {
  if (terminated()) {
    if (drainWatchTimer_ != 0) {
      loop_.cancelTimer(drainWatchTimer_);
      drainWatchTimer_ = 0;
    }
    return;
  }
  if (userConnCount() == 0 && trunkSessionCount() == 0 &&
      mqttTunnels_.empty() && directTunnelCount() == 0) {
    bump(config_.name + ".drain_early_exit");
    tlPoint("drain_early_exit");
    terminate();
  }
}

void Proxy::terminate() {
  if (terminated_.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  loop_.cancelTimer(drainTimer_);
  if (solicitTimer_ != 0) {
    loop_.cancelTimer(solicitTimer_);
    solicitTimer_ = 0;
  }
  if (drainWatchTimer_ != 0) {
    loop_.cancelTimer(drainWatchTimer_);
    drainWatchTimer_ = 0;
  }
  bump(config_.name + ".terminated");
  if (draining()) {
    tlEnd(hardDraining_.load(std::memory_order_acquire) ? "hard_drain"
                                                        : "zdr_drain");
  }
  tlPoint("terminated");
  fr::recordEvent(shards_.empty() ? nullptr : shards_.front()->events,
                  fr::EventKind::kDrainEdge, traceInstance_, 0,
                  drainTraceId_,
                  fr::packCausePhase(fr::DisruptionCause::kNone,
                                     fr::ReleasePhase::kShutdown));
  // Forced closes past a missed drain deadline are deadline
  // casualties; everything else reset here is the ordinary
  // end-of-restart cut.
  const fr::DisruptionCause rstCause =
      drainDeadlineHit_ ? fr::DisruptionCause::kDrainDeadline
                        : fr::DisruptionCause::kResetOnRestart;
  // Connections that did not drain in time and are reset below. Only
  // meaningful after a drain — destructor teardown at test end is not
  // a forced close.
  size_t forcedCloses = mqttTunnels_.size();

  // Whatever is still alive now is disrupted — this is the source of
  // the TCP RSTs and errors the paper's Fig 12 counts.
  //
  // MQTT tunnels go first: they live on the primary loop but hold raw
  // pointers into shard 0's trunk links, which the fan-out below
  // destroys.
  for (const auto& tun :
       std::set<std::shared_ptr<MqttTunnel>>(mqttTunnels_)) {
    bump("edge.mqtt_tunnel_reset");
    if (!tun->disruptionNoted) {
      tun->disruptionNoted = true;
      noteDisruption(nullptr, rstCause, tun->resumeTraceId);
    }
    tun->userConn->close(std::make_error_code(std::errc::connection_reset));
  }
  mqttTunnels_.clear();

  // Shard-owned connections must die on their own loop threads: a
  // Connection's destructor unregisters from the loop that owns it.
  forEachShard([this, rstCause, &forcedCloses](Shard& sh) {
    forcedCloses += sh.userConns.size() + sh.trunkServerSessions.size();
    for (const auto& uc :
         std::set<std::shared_ptr<UserHttpConn>>(sh.userConns)) {
      if (uc->requestActive) {
        bump("edge.err.conn_rst");
        // Sets the per-request guard: close() below synchronously
        // re-enters the connection's close callback, whose own
        // attribution must then stay silent.
        edgeNoteDisruption(uc, rstCause);
      }
      uc->conn->close(std::make_error_code(std::errc::connection_reset));
    }
    sh.userConns.clear();

    for (auto& link : sh.trunkLinks) {
      if (link->reconnectTimer != 0) {
        sh.loop->cancelTimer(link->reconnectTimer);
        link->reconnectTimer = 0;
      }
      if (link->session) {
        link->session->closeNow();
      }
    }
    sh.trunkLinks.clear();

    for (const auto& tc : std::set<std::shared_ptr<TrunkServerConn>>(
             sh.trunkServerSessions)) {
      tc->session->closeNow(
          std::make_error_code(std::errc::connection_reset));
    }
    sh.trunkServerSessions.clear();

    forcedCloses += sh.directTunnels.size();
    for (const auto& dt : std::set<std::shared_ptr<DirectTunnel>>(
             sh.directTunnels)) {
      originCloseDirectTunnel(dt);
    }
    sh.directTunnels.clear();

    for (const auto& conn :
         std::set<ConnectionPtr>(sh.sniffingTrunkConns)) {
      conn->close(std::make_error_code(std::errc::connection_reset));
    }
    sh.sniffingTrunkConns.clear();

    if (sh.appPool) {
      sh.appPool->closeAll();
      // Destroy on the shard's own thread: the pool's reap timer is
      // armed on this loop.
      sh.appPool.reset();
    }

    // Uninstall our loop observer on the shard's own thread (no
    // dispatch can be concurrently inside it — we are the dispatch).
    // Guarded: during a ZDR overlap the takeover peer has already
    // installed its recorder on the shared primary loop.
    if (sh.recorder != nullptr && sh.loop->observer() == sh.recorder) {
      sh.loop->setObserver(nullptr);
    }
    sh.recorder = nullptr;
  });
  userConnCount_.store(0, std::memory_order_release);
  trunkSessionCount_.store(0, std::memory_order_release);
  directTunnelCount_.store(0, std::memory_order_release);
  if (draining()) {
    bump(config_.name + ".drain_forced_closes", forcedCloses);
    bump("release.drain_forced_closes", forcedCloses);
  }

  if (httpListeners_) {
    httpListeners_->closeAll();
  }
  for (const auto& acc : mqttAcceptors_) {
    acc->close();
  }
  if (trunkListeners_) {
    trunkListeners_->closeAll();
  }
  if (quicServer_) {
    quicServer_->shutdown();
  }
  takeoverServer_.reset();
  appHealth_.reset();
}

}  // namespace zdr::proxygen
