// Proxy lifecycle: construction (fresh and via Socket Takeover),
// takeover server, drain orchestration, teardown.
#include "proxygen/proxy_detail.h"

namespace zdr::proxygen {

Proxy::Proxy(EventLoop& loop, Config config, MetricsRegistry* metrics)
    : loop_(loop), config_(std::move(config)), metrics_(metrics) {
  initCommon();
  startFresh();
}

Proxy::Proxy(EventLoop& loop, Config config, MetricsRegistry* metrics,
             takeover::TakeoverClient::Result handoff)
    : loop_(loop), config_(std::move(config)), metrics_(metrics) {
  initCommon();
  startFromHandoff(std::move(handoff));
}

Proxy::~Proxy() {
  if (!terminated_) {
    terminate();
  }
}

void Proxy::bump(const std::string& counter, uint64_t n) {
  if (metrics_) {
    metrics_->counter(counter).add(n);
  }
}

void Proxy::initCommon() {
  if (config_.role == Role::kOrigin) {
    UpstreamPool::Options poolOpts;
    poolOpts.faultTag = "origin.app";
    appPool_ = std::make_unique<UpstreamPool>(loop_, poolOpts, metrics_);
    if (!config_.appServers.empty()) {
      std::vector<l4lb::BackendTarget> targets;
      for (const auto& a : config_.appServers) {
        targets.push_back({a.name, a.addr});
      }
      appHealth_ = std::make_unique<l4lb::HealthChecker>(
          loop_, std::move(targets), config_.appServerHealth, nullptr,
          metrics_);
    }
    brokerHash_ = std::make_unique<l4lb::MaglevHash>();
    std::vector<std::string> brokerNames;
    for (const auto& b : config_.brokers) {
      brokerNames.push_back(b.name);
    }
    brokerHash_->rebuild(brokerNames);
  }
}

void Proxy::startFresh() {
  BindOptions opts;
  if (config_.role == Role::kEdge) {
    if (config_.enableHttpVip) {
      httpAcceptor_ = std::make_unique<Acceptor>(
          loop_, TcpListener(config_.httpVip, opts),
          [this](TcpSocket s) { edgeOnHttpAccept(std::move(s)); });
    }
    if (config_.enableMqttVip) {
      mqttAcceptor_ = std::make_unique<Acceptor>(
          loop_, TcpListener(config_.mqttVip, opts),
          [this](TcpSocket s) { edgeOnMqttAccept(std::move(s)); });
    }
    if (config_.enableQuicVip) {
      quicish::Server::Options qo;
      qo.instanceId = config_.instanceId;
      qo.numWorkers = config_.udpWorkers;
      qo.userSpaceRouting = config_.udpUserSpaceRouting;
      quicServer_ = std::make_unique<quicish::Server>(loop_, config_.quicVip,
                                                      qo, metrics_);
    }
    // Establish trunks to every configured origin.
    for (size_t i = 0; i < config_.origins.size(); ++i) {
      trunkLinks_.push_back(std::make_unique<TrunkLink>());
      trunkLinks_.back()->origin = config_.origins[i];
      trunkLinks_.back()->idx = i;
      edgeEnsureTrunk(i);
    }
  } else {
    trunkAcceptor_ = std::make_unique<Acceptor>(
        loop_, TcpListener(config_.trunkAddr, opts),
        [this](TcpSocket s) { originOnTrunkAccept(std::move(s)); });
  }
}

void Proxy::startFromHandoff(takeover::TakeoverClient::Result handoff) {
  // Adopt each passed socket by VIP name. Every descriptor must be
  // consumed — an ignored fd would keep a kernel socket alive with
  // nobody reading it, black-holing its share of traffic (§5.1).
  std::vector<FdGuard> quicFds;
  for (auto& taken : handoff.sockets) {
    if (taken.desc.proto == takeover::Proto::kUdp) {
      quicFds.push_back(std::move(taken.fd));
      continue;
    }
    if (taken.desc.vipName == "http") {
      httpAcceptor_ = std::make_unique<Acceptor>(
          loop_, TcpListener::fromFd(std::move(taken.fd)),
          [this](TcpSocket s) { edgeOnHttpAccept(std::move(s)); });
    } else if (taken.desc.vipName == "mqtt") {
      mqttAcceptor_ = std::make_unique<Acceptor>(
          loop_, TcpListener::fromFd(std::move(taken.fd)),
          [this](TcpSocket s) { edgeOnMqttAccept(std::move(s)); });
    } else if (taken.desc.vipName == "trunk") {
      trunkAcceptor_ = std::make_unique<Acceptor>(
          loop_, TcpListener::fromFd(std::move(taken.fd)),
          [this](TcpSocket s) { originOnTrunkAccept(std::move(s)); });
    }
    // Unknown names fall out of scope here and are closed — never
    // silently leaked.
  }
  if (!quicFds.empty()) {
    quicish::Server::Options qo;
    qo.instanceId = config_.instanceId;
    qo.numWorkers = quicFds.size();
    qo.userSpaceRouting = config_.udpUserSpaceRouting;
    quicServer_ = std::make_unique<quicish::Server>(loop_, std::move(quicFds),
                                                    qo, metrics_);
    if (handoff.inventory.hasUdpForwardAddr) {
      quicServer_->setForwardPeer(handoff.inventory.udpForwardAddr);
    }
  }
  if (config_.role == Role::kEdge) {
    for (size_t i = 0; i < config_.origins.size(); ++i) {
      trunkLinks_.push_back(std::make_unique<TrunkLink>());
      trunkLinks_.back()->origin = config_.origins[i];
      trunkLinks_.back()->idx = i;
      edgeEnsureTrunk(i);
    }
  }
  bump(config_.name + ".takeover_adopted");
}

takeover::Inventory Proxy::buildInventory(std::vector<int>& fds) {
  takeover::Inventory inv;
  auto addTcp = [&](const char* name, Acceptor* acc) {
    if (acc == nullptr) {
      return;
    }
    takeover::SocketDescriptor d;
    d.vipName = name;
    d.proto = takeover::Proto::kTcp;
    d.addr = acc->localAddr();
    inv.sockets.push_back(d);
    fds.push_back(acc->fd());
  };
  addTcp("http", httpAcceptor_.get());
  addTcp("mqtt", mqttAcceptor_.get());
  addTcp("trunk", trunkAcceptor_.get());
  if (quicServer_) {
    size_t i = 0;
    for (int fd : quicServer_->vipSocketFds()) {
      takeover::SocketDescriptor d;
      d.vipName = "quic" + std::to_string(i++);
      d.proto = takeover::Proto::kUdp;
      d.addr = quicServer_->vip();
      inv.sockets.push_back(d);
      fds.push_back(fd);
    }
    inv.hasUdpForwardAddr = true;
    inv.udpForwardAddr = quicServer_->forwardAddr();
  }
  return inv;
}

void Proxy::armTakeoverServer() {
  takeoverServer_ = std::make_unique<takeover::TakeoverServer>(
      loop_, config_.takeoverPath,
      [this](std::vector<int>& fds) { return buildInventory(fds); },
      [this] { enterDrain(); });
}

SocketAddr Proxy::httpVip() const {
  return httpAcceptor_ ? httpAcceptor_->localAddr() : SocketAddr{};
}
SocketAddr Proxy::mqttVip() const {
  return mqttAcceptor_ ? mqttAcceptor_->localAddr() : SocketAddr{};
}
SocketAddr Proxy::quicVip() const {
  return quicServer_ ? quicServer_->vip() : SocketAddr{};
}
SocketAddr Proxy::trunkAddr() const {
  return trunkAcceptor_ ? trunkAcceptor_->localAddr() : SocketAddr{};
}

void Proxy::startHardDrain() {
  // Traditional release (§2.3): fail health checks so the L4 layer
  // pulls us from the ring, stop accepting, let existing connections
  // run out the drain period, then reset whatever is left.
  hardDraining_ = true;
  draining_ = true;
  bump(config_.name + ".hard_drain_started");
  if (httpAcceptor_) {
    // Keep the health endpoint answering (503) — close only the
    // business of accepting *new user work* at the end. The acceptor
    // keeps running; requests are still served during drain, which is
    // exactly how production draining behaves (traffic moves away as
    // health checks fail).
  }
  if (config_.role == Role::kOrigin) {
    // Edge↔Origin trunks are HTTP/2: graceful GOAWAY is available even
    // in the traditional flow (§2.2).
    for (const auto& tc : trunkServerSessions_) {
      tc->session->sendGoaway("hard-drain");
    }
  }
  drainTimer_ = loop_.runAfter(config_.drainPeriod, [this] { terminate(); });
}

void Proxy::enterDrain() {
  // ZDR drain (Fig 5 step E): the updated instance has ACKed and owns
  // the listening sockets; we finish what we started and go away.
  if (draining_) {
    return;
  }
  draining_ = true;
  bump(config_.name + ".zdr_drain_started");

  // Stop accepting: close our dup of the listening fds (the updated
  // instance keeps the sockets alive).
  if (httpAcceptor_) {
    httpAcceptor_->close();
  }
  if (mqttAcceptor_) {
    mqttAcceptor_->close();
  }
  if (trunkAcceptor_) {
    trunkAcceptor_->close();
  }
  if (quicServer_) {
    quicServer_->enterDrain();
  }

  if (config_.role == Role::kOrigin) {
    for (const auto& tc : trunkServerSessions_) {
      tc->session->sendGoaway("zdr-drain");
      if (config_.dcrEnabled) {
        // §4.2: solicit the Edge to move MQTT tunnels to a healthy
        // peer before we terminate.
        tc->session->sendControl(h2::FrameType::kReconnectSolicitation);
        bump(config_.name + ".dcr_solicitations_sent");
      }
    }
    if (config_.dcrEnabled && config_.dcrSolicitRetries > 0 &&
        !trunkServerSessions_.empty()) {
      // A solicitation frame can be lost in transit; re-send a few
      // times across the drain window. The Edge resume path is
      // idempotent, so duplicates are harmless.
      solicitRetriesLeft_ = config_.dcrSolicitRetries;
      Duration interval =
          std::max(Duration{10}, config_.drainPeriod /
                                     (config_.dcrSolicitRetries + 1));
      solicitTimer_ = loop_.runEvery(interval, [this] {
        if (terminated_ || solicitRetriesLeft_ <= 0) {
          loop_.cancelTimer(solicitTimer_);
          solicitTimer_ = 0;
          return;
        }
        --solicitRetriesLeft_;
        for (const auto& tc : trunkServerSessions_) {
          tc->session->sendControl(h2::FrameType::kReconnectSolicitation);
          bump(config_.name + ".dcr_solicitations_resent");
        }
      });
    }
  }

  drainTimer_ = loop_.runAfter(config_.drainPeriod, [this] { terminate(); });
}

void Proxy::terminate() {
  if (terminated_) {
    return;
  }
  terminated_ = true;
  loop_.cancelTimer(drainTimer_);
  if (solicitTimer_ != 0) {
    loop_.cancelTimer(solicitTimer_);
    solicitTimer_ = 0;
  }
  bump(config_.name + ".terminated");

  // Whatever is still alive now is disrupted — this is the source of
  // the TCP RSTs and errors the paper's Fig 12 counts.
  for (const auto& uc : std::set<std::shared_ptr<UserHttpConn>>(userConns_)) {
    if (uc->requestActive) {
      bump("edge.err.conn_rst");
    }
    uc->conn->close(std::make_error_code(std::errc::connection_reset));
  }
  userConns_.clear();

  for (const auto& tun :
       std::set<std::shared_ptr<MqttTunnel>>(mqttTunnels_)) {
    bump("edge.mqtt_tunnel_reset");
    tun->userConn->close(std::make_error_code(std::errc::connection_reset));
  }
  mqttTunnels_.clear();

  for (auto& link : trunkLinks_) {
    if (link->session) {
      link->session->closeNow();
    }
  }
  trunkLinks_.clear();

  for (const auto& tc :
       std::set<std::shared_ptr<TrunkServerConn>>(trunkServerSessions_)) {
    tc->session->closeNow(std::make_error_code(std::errc::connection_reset));
  }
  trunkServerSessions_.clear();

  if (httpAcceptor_) {
    httpAcceptor_->close();
  }
  if (mqttAcceptor_) {
    mqttAcceptor_->close();
  }
  if (trunkAcceptor_) {
    trunkAcceptor_->close();
  }
  if (quicServer_) {
    quicServer_->shutdown();
  }
  takeoverServer_.reset();
  appHealth_.reset();
  if (appPool_) {
    appPool_->closeAll();
  }
}

}  // namespace zdr::proxygen
