// Keep-alive connection pool for the Origin → App. Server hop.
//
// Production proxies never pay a TCP handshake per request to their
// upstreams; they pool keep-alive connections. The pool is also where
// restart hygiene shows up: a connection that served a 379 belongs to
// a restarting server and must never be reused.
//
// The pool also owns the per-backend circuit breaker (outlier
// ejection): a backend that keeps failing is ejected — acquire()
// fast-fails so callers fail over instead of queueing connect attempts
// into a dead host — and is re-admitted through a half-open probe
// after an exponential backoff. State machine:
//
//   closed ──(N consecutive failures, or windowed error rate ≥
//             threshold with enough samples)──▶ open
//   open ──(backoff expired; next acquire becomes the probe)──▶ half-open
//   half-open ──(probe outcome: success)──▶ closed  (backoff resets)
//   half-open ──(probe outcome: failure)──▶ open    (backoff doubles)
//
// Connect failures feed the breaker from inside acquire(); the origin
// reports request-level outcomes via recordSuccess/recordFailure so
// mid-request transport losses count too. A 379 drain handoff is
// deliberately NOT a failure — restarting servers are healthy.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "metrics/metrics.h"
#include "netcore/connection.h"

namespace zdr::proxygen {

class UpstreamPool {
 public:
  struct Options {
    size_t maxIdlePerBackend = 8;
    Duration idleTimeout = Duration{10000};
    Duration connectTimeout = Duration{3000};
    // Fault-injection tag bound to every fresh upstream fd (chaos
    // tests target e.g. "origin.app"); empty ⇒ untagged. Each fd also
    // gets the per-backend tag "<faultTag>.<name>" so chaos tests can
    // fault exactly one backend.
    std::string faultTag;
    // Owner's instance name, used to attribute breaker-trip windows on
    // the release timeline ("breaker_open.<backend>"). Empty ⇒ no
    // timeline events.
    std::string instanceName;

    // --- circuit breaker / outlier ejection ---
    bool breakerEnabled = true;
    // Trip on this many consecutive failures…
    int breakerConsecutiveFailures = 5;
    // …or when the windowed error rate reaches this fraction, once the
    // window holds at least breakerMinSamples outcomes.
    double breakerErrorRate = 0.5;
    int breakerMinSamples = 20;
    Duration breakerWindow = Duration{10000};
    // Ejection backoff: base × 2^(consecutive opens), capped.
    Duration breakerBackoffBase = Duration{200};
    Duration breakerBackoffMax = Duration{5000};
  };

  // `reused` distinguishes pool hits from fresh connects (metrics and
  // tests key off it).
  using Ready =
      std::function<void(ConnectionPtr conn, std::error_code ec, bool reused)>;

  UpstreamPool(EventLoop& loop, Options opts,
               MetricsRegistry* metrics = nullptr);
  ~UpstreamPool();
  UpstreamPool(const UpstreamPool&) = delete;
  UpstreamPool& operator=(const UpstreamPool&) = delete;

  // Hands out an idle pooled connection to `name`@`addr`, or dials a
  // fresh one. The connection's callbacks are cleared before handout.
  void acquire(const std::string& name, const SocketAddr& addr, Ready cb);

  // Returns a healthy keep-alive connection for reuse. The pool owns
  // it until the next acquire (or idle timeout / peer close).
  void release(const std::string& name, ConnectionPtr conn);

  // Drops every idle connection (drain/terminate path).
  void closeAll();

  // Request-level breaker feedback from the caller. recordSuccess
  // closes an ejected/probing breaker and resets its backoff;
  // recordFailure counts toward the trip thresholds (and re-opens a
  // half-open breaker). Connect failures are recorded internally.
  void recordSuccess(const std::string& name);
  void recordFailure(const std::string& name);
  // True while `name` is ejected and its backoff has not expired
  // (selection should skip it; acquire() would fast-fail).
  [[nodiscard]] bool breakerOpen(const std::string& name) const;

  [[nodiscard]] size_t idleCount(const std::string& name) const;
  [[nodiscard]] uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] uint64_t misses() const noexcept { return misses_; }

 private:
  struct IdleEntry {
    ConnectionPtr conn;
    TimePoint since;
  };

  enum class BreakerPhase : uint8_t { kClosed, kOpen, kHalfOpen };
  struct BreakerState {
    BreakerPhase phase = BreakerPhase::kClosed;
    int consecutiveFails = 0;
    uint64_t windowSuccesses = 0;
    uint64_t windowFailures = 0;
    TimePoint windowStart{};
    int openCount = 0;  // backoff exponent; reset on probe success
    TimePoint openUntil{};
    TimePoint lastProbe{};
  };

  // Gate for a new request to `name`: grants the half-open probe when
  // an ejection's backoff expires (mutates phase).
  bool allowRequest(const std::string& name);
  void trip(const std::string& name, BreakerState& st);
  void maybeResetWindow(BreakerState& st, TimePoint now);
  void bump(const char* name);

  void reapIdle();

  EventLoop& loop_;
  Options opts_;
  MetricsRegistry* metrics_;
  std::map<std::string, std::deque<IdleEntry>> idle_;
  std::map<std::string, BreakerState> breakers_;
  EventLoop::TimerId reapTimer_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace zdr::proxygen
