// Keep-alive connection pool for the Origin → App. Server hop.
//
// Production proxies never pay a TCP handshake per request to their
// upstreams; they pool keep-alive connections. The pool is also where
// restart hygiene shows up: a connection that served a 379 belongs to
// a restarting server and must never be reused.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "metrics/metrics.h"
#include "netcore/connection.h"

namespace zdr::proxygen {

class UpstreamPool {
 public:
  struct Options {
    size_t maxIdlePerBackend = 8;
    Duration idleTimeout = Duration{10000};
    Duration connectTimeout = Duration{3000};
    // Fault-injection tag bound to every fresh upstream fd (chaos
    // tests target e.g. "origin.app"); empty ⇒ untagged.
    std::string faultTag;
  };

  // `reused` distinguishes pool hits from fresh connects (metrics and
  // tests key off it).
  using Ready =
      std::function<void(ConnectionPtr conn, std::error_code ec, bool reused)>;

  UpstreamPool(EventLoop& loop, Options opts,
               MetricsRegistry* metrics = nullptr);
  ~UpstreamPool();
  UpstreamPool(const UpstreamPool&) = delete;
  UpstreamPool& operator=(const UpstreamPool&) = delete;

  // Hands out an idle pooled connection to `name`@`addr`, or dials a
  // fresh one. The connection's callbacks are cleared before handout.
  void acquire(const std::string& name, const SocketAddr& addr, Ready cb);

  // Returns a healthy keep-alive connection for reuse. The pool owns
  // it until the next acquire (or idle timeout / peer close).
  void release(const std::string& name, ConnectionPtr conn);

  // Drops every idle connection (drain/terminate path).
  void closeAll();

  [[nodiscard]] size_t idleCount(const std::string& name) const;
  [[nodiscard]] uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] uint64_t misses() const noexcept { return misses_; }

 private:
  struct IdleEntry {
    ConnectionPtr conn;
    TimePoint since;
  };

  void reapIdle();

  EventLoop& loop_;
  Options opts_;
  MetricsRegistry* metrics_;
  std::map<std::string, std::deque<IdleEntry>> idle_;
  EventLoop::TimerId reapTimer_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace zdr::proxygen
