// Edge role: user-facing VIP handling, trunk-link management, local
// cache serving, and the Edge half of Downstream Connection Reuse.
#include <cstdint>

#include "metrics/stats_json.h"
#include "metrics/trace_export.h"
#include "proxygen/proxy_detail.h"

namespace zdr::proxygen {

namespace {

// Staging buffer pattern: each user connection drains socket bytes
// into its own buffer so request processing can be re-triggered after
// a response completes (keep-alive) without new socket activity.
struct EdgeConnAdapter {
  Buffer stage;
};

bool isCacheablePath(const std::string& path) {
  return path.rfind("/cached/", 0) == 0;
}

}  // namespace

// ------------------------------------------------------------- HTTP accept

void Proxy::edgeOnHttpAccept(Shard& sh, TcpSocket sock) {
  // Runs on sh's loop thread; everything the connection touches from
  // here on is confined to that shard.
  if (terminated_) {
    return;
  }
  bumpHot(hot_.httpConnAccepted);
  fault::tagFd(sock.fd(), "edge.user");
  // Interned once: accepts are per-connection hot path, the intern
  // mutex must not be.
  static const uint32_t kAcceptTag = trace::internInstance("accept.http");
  fr::recordEvent(sh.events, fr::EventKind::kAccept, traceInstance_, 0, 0,
                  kAcceptTag);
  auto uc = std::make_shared<UserHttpConn>();
  uc->shard = &sh;
  uc->conn = Connection::make(*sh.loop, std::move(sock));
  sh.userConns.insert(uc);
  userConnCount_.fetch_add(1, std::memory_order_acq_rel);

  // The parser's body callback captures a raw pointer: the parser is a
  // member of *uc and cannot outlive it.
  UserHttpConn* raw = uc.get();
  uc->parser.setBodyCallback(
      [raw](std::string_view frag) { raw->bodyPending.append(frag); });

  auto stage = std::make_shared<Buffer>();
  auto process = [this, uc, stage]() {
    while (!stage->empty() || uc->parser.messageComplete()) {
      if (uc->requestActive && uc->responseStarted) {
        return;  // no pipelining: wait for the response to finish
      }
      auto st = uc->parser.feed(*stage);
      if (st == http::ParseStatus::kError) {
        bump("edge.err.bad_request");
        uc->conn->close(std::make_error_code(std::errc::protocol_error));
        return;
      }
      if (uc->parser.headersComplete() && !uc->headersHandled) {
        uc->headersHandled = true;
        uc->requestActive = true;
        edgeOnHttpRequestHeaders(uc);
        if (!uc->conn->open()) {
          return;
        }
      }
      if (!uc->bodyPending.empty()) {
        edgeOnHttpBody(uc, uc->bodyPending, uc->parser.messageComplete());
        uc->bodyPending.clear();
      }
      if (uc->parser.messageComplete()) {
        if (!uc->servedLocally && uc->link != nullptr && !uc->upstreamEnded) {
          uc->upstreamEnded = true;
          uc->link->session->sendData(uc->streamId, {}, true);
        }
        if (uc->servedLocally) {
          // Response already went out; recycle for the next request.
          edgeFinishUserRequest(uc);
          continue;
        }
        return;  // await upstream response
      }
      if (stage->empty()) {
        return;
      }
    }
  };

  uc->conn->setDataCallback([process, stage](Buffer& in) {
    stage->append(in.readable());
    in.clear();
    process();
  });
  // Re-run processing after a response completes (keep-alive turnover).
  uc->parser.setBodyCallback(
      [raw](std::string_view frag) { raw->bodyPending.append(frag); });
  uc->conn->setCloseCallback([this, uc](std::error_code ec) {
    // Attribution: a scripted fault on this connection trumps the
    // generic causes (the E2E injects faults and demands they are
    // blamed on the fault, not on the restart).
    const bool sabotaged = uc->conn->faultInjections() > 0;
    if (uc->requestActive) {
      if (ec && uc->responseStarted && uc->conn->pendingOutput() > 0) {
        // The response could not be written out: the user experiences
        // a write timeout (Fig 12's worst disruption class).
        bump("edge.err.write_timeout");
        edgeNoteDisruption(uc, sabotaged
                                   ? fr::DisruptionCause::kFaultInjected
                                   : fr::DisruptionCause::kTimeout);
      } else if (ec) {
        bump("edge.err.conn_rst");
        edgeNoteDisruption(uc, sabotaged
                                   ? fr::DisruptionCause::kFaultInjected
                                   : fr::DisruptionCause::kResetOnRestart);
      }
      if (uc->link != nullptr) {
        if (uc->link->session) {
          uc->link->session->sendReset(uc->streamId);
        }
        uc->link->httpStreams.erase(uc->streamId);
      }
      uc->shard->loop->cancelTimer(uc->timeoutTimer);
    } else if (ec && sabotaged && uc->conn->pendingOutput() > 0) {
      // The request ledger already closed (responses flush at loop
      // end, after edgeFinishUserRequest), but a scripted fault killed
      // the connection with response bytes still queued — the client
      // never got the answer, so this is just as client-visible as a
      // mid-request reset and must not escape attribution.
      bump("edge.err.write_timeout");
      edgeNoteDisruption(uc, fr::DisruptionCause::kFaultInjected);
    }
    if (uc->countedInFlight) {
      uc->countedInFlight = false;
      edgeNoteRequestDone(*uc->shard);
    }
    if (uc->shard->userConns.erase(uc) > 0) {
      userConnCount_.fetch_sub(1, std::memory_order_acq_rel);
    }
  });
  uc->conn->start();
}

void Proxy::edgeOnHttpRequestHeaders(const std::shared_ptr<UserHttpConn>& uc) {
  const http::Request& req = uc->parser.message();
  bumpHot(hot_.requests);
  uc->reqStartNs = trace::nowNs();
  if (trace::tracingEnabled()) {
    // The edge is the trace root — unless the client already carries
    // an x-zdr-trace (a downstream edge, or a test), in which case we
    // join its trace as a child hop.
    uc->trace.traceId = trace::newId();
    uc->trace.spanId = trace::newId();
    if (auto tv = req.headers.get(kHdrTrace)) {
      uint64_t t = 0;
      uint64_t sp = 0;
      if (trace::parseTraceHeader(*tv, t, sp)) {
        uc->trace.traceId = t;
        uc->trace.parentId = sp;
      }
    }
  }

  // Local endpoints: L4 health checks.
  if (req.path == "/__health") {
    http::Response res;
    res.status = hardDraining_ ? 503 : 200;
    res.body = hardDraining_ ? "draining" : "ok";
    edgeServeLocal(uc, res);
    return;
  }

  // Live introspection: JSON snapshot of every instrument plus recent
  // spans and the release timeline. Health-check-exempt from admission
  // like /__health — a shedding proxy is exactly the one you need to
  // scrape.
  if (req.path == "/__stats" || req.path.rfind("/__stats?", 0) == 0) {
    bump("edge.stats_scrapes");
    http::Response res;
    res.status = 200;
    res.headers.set("Content-Type", "application/json");
    if (metrics_ != nullptr) {
      stats::StatsOptions so;
      so.instance = config_.name;
      if (req.path.find("spans=all") != std::string::npos) {
        so.maxSpansPerSink = SIZE_MAX;
      }
      res.body = stats::renderStatsJson(*metrics_, so);
    } else {
      res.body = "{}";
    }
    edgeServeLocal(uc, res);
    return;
  }

  // Flight-recorder capture: spans + event rings + release timeline in
  // one doc (?events=all / ?spans=all lift the per-ring caps,
  // ?format=chrome serves Chrome/Perfetto trace-event JSON directly).
  // Health-check-exempt like /__stats — captures are most valuable
  // exactly when the proxy is drowning or draining.
  if (req.path == "/__trace" || req.path.rfind("/__trace?", 0) == 0) {
    bump("edge.recorder.scrapes");
    http::Response res;
    res.status = 200;
    res.headers.set("Content-Type", "application/json");
    if (metrics_ != nullptr) {
      fr::TraceCaptureOptions to;
      to.instance = config_.name;
      if (req.path.find("spans=all") != std::string::npos) {
        to.maxSpansPerSink = SIZE_MAX;
      }
      if (req.path.find("events=all") != std::string::npos) {
        to.maxEventsPerRing = SIZE_MAX;
      }
      res.body = req.path.find("format=chrome") != std::string::npos
                     ? fr::renderChromeTrace(*metrics_, to)
                     : fr::renderTraceCapture(*metrics_, to);
    } else {
      res.body = "{}";
    }
    edgeServeLocal(uc, res);
    return;
  }

  // Edge cache (Direct-Server-Return model for cacheable content §2.2).
  if (config_.edgeCacheEnabled && req.method == "GET" &&
      isCacheablePath(req.path)) {
    if (auto cached = edgeCache_.get(req.path)) {
      bumpHot(hot_.cacheHit);
      edgeServeLocal(uc, *cached);
      return;
    }
    uc->cacheKey = req.path;
    bumpHot(hot_.cacheMiss);
  }

  // Admission control: requests heading upstream count against the
  // shard's in-flight cap. Health checks and cache hits (served above,
  // cheaply and locally) are exempt — shedding them would tell the L4
  // the instance is down when it is merely busy.
  noteShardRequest(*uc->shard);
  if (edgeMaybeShed(uc)) {
    return;
  }

  edgeDispatchUpstream(uc);
}

void Proxy::edgeNoteDisruption(const std::shared_ptr<UserHttpConn>& uc,
                               fr::DisruptionCause cause) {
  if (uc->disruptionNoted) {
    return;
  }
  uc->disruptionNoted = true;
  noteDisruption(uc->shard, cause, uc->trace.traceId);
}

bool Proxy::edgeMaybeShed(const std::shared_ptr<UserHttpConn>& uc) {
  Shard& sh = *uc->shard;
  const size_t cap = config_.shedMaxInFlightPerShard;
  if (cap == 0) {
    return false;
  }
  if (sh.inFlightRequests >= cap) {
    // Fast-fail: a 503 in microseconds beats a 504 after the full
    // request timeout, and Retry-After steers well-behaved clients to
    // back off rather than hammer an overloaded shard.
    bump("edge.err.shed");
    edgeNoteDisruption(uc, fr::DisruptionCause::kShed);
    http::Response res;
    res.status = 503;
    res.reason = std::string(http::defaultReason(503));
    res.headers.set("Retry-After", "1");
    res.body = "overloaded";
    edgeServeLocal(uc, res);
    return true;
  }
  uc->countedInFlight = true;
  ++sh.inFlightRequests;
  if (sh.inflightPeak != nullptr) {
    sh.inflightPeak->update(static_cast<double>(sh.inFlightRequests));
  }
  const size_t high = config_.shedPauseHighWatermark > 0
                          ? config_.shedPauseHighWatermark
                          : cap - cap / 4;
  if (!sh.acceptsPaused && sh.inFlightRequests >= high &&
      httpListeners_ != nullptr) {
    // Above the high watermark stop accepting: backpressure lands in
    // the listen backlog (and eventually the L4) instead of growing
    // the in-flight set until everything sheds.
    sh.acceptsPaused = true;
    httpListeners_->pauseOn(sh.idx);
    bump("edge.accept_paused");
    // Shed windows are per-shard phases (shards pause independently,
    // so the key carries the shard index to pair begin/end correctly).
    tlBegin("accept_paused.w" + std::to_string(sh.idx));
  }
  return false;
}

void Proxy::edgeNoteRequestDone(Shard& sh) {
  if (sh.inFlightRequests > 0) {
    --sh.inFlightRequests;
  }
  const size_t cap = config_.shedMaxInFlightPerShard;
  if (!sh.acceptsPaused || cap == 0) {
    return;
  }
  const size_t high = config_.shedPauseHighWatermark > 0
                          ? config_.shedPauseHighWatermark
                          : cap - cap / 4;
  const size_t low = config_.shedResumeLowWatermark > 0
                         ? config_.shedResumeLowWatermark
                         : high / 2;
  if (sh.inFlightRequests <= low) {
    sh.acceptsPaused = false;
    if (httpListeners_ != nullptr) {
      httpListeners_->resumeOn(sh.idx);
    }
    bump("edge.accept_resumed");
    tlEnd("accept_paused.w" + std::to_string(sh.idx));
  }
}

void Proxy::edgeDispatchUpstream(const std::shared_ptr<UserHttpConn>& uc) {
  const http::Request& req = uc->parser.message();
  TrunkLink* link = edgePickTrunk(*uc->shard);
  if (link == nullptr) {
    // A trunk may simply not be up *yet*: after a socket takeover the
    // adopted ring delivers live user connections before this
    // instance's freshly dialed trunks finish their handshakes. While
    // any link is still connecting, wait it out briefly instead of
    // 502ing a request the previous instance would have served.
    bool pending = false;
    for (const auto& l : uc->shard->trunkLinks) {
      pending |= l->connecting;
    }
    constexpr int kTrunkWaitMaxRetries = 50;  // × 20 ms = 1 s grace
    if (pending && !terminated_ &&
        uc->trunkWaitRetries < kTrunkWaitMaxRetries) {
      if (uc->trunkWaitStartNs == 0) {
        uc->trunkWaitStartNs = trace::nowNs();
      }
      ++uc->trunkWaitRetries;
      uc->shard->loop->runAfter(
          Duration{20},
          [this, uc] {
            if (uc->requestActive && uc->link == nullptr &&
                uc->conn->open() && !terminated_) {
              edgeDispatchUpstream(uc);
            }
          },
          "timer.trunk_wait");
      return;
    }
    bump("edge.err.no_origin");
    edgeNoteDisruption(uc, fr::DisruptionCause::kTrunkAbort);
    edgeFailUserRequest(uc, 502, "no healthy origin");
    return;
  }
  uint32_t sid = link->session->openStream();
  if (sid == 0) {
    bump("edge.err.no_origin");
    edgeNoteDisruption(uc, fr::DisruptionCause::kTrunkAbort);
    edgeFailUserRequest(uc, 502, "trunk rejected stream");
    return;
  }
  uc->link = link;
  uc->streamId = sid;
  link->httpStreams[sid] = uc;

  if (uc->trace.valid()) {
    uint64_t now = trace::nowNs();
    if (uc->trunkWaitStartNs != 0) {
      recordSpan(uc->shard->spans, uc->trace.traceId, trace::newId(),
                 uc->trace.spanId, trace::SpanKind::kEdgeTrunkWait,
                 traceInstance_, uc->trunkWaitStartNs, now,
                 static_cast<uint64_t>(uc->trunkWaitRetries));
      uc->trunkWaitStartNs = 0;
    }
    if (uc->dispatchStartNs == 0) {
      uc->dispatchStartNs = now;
    }
    if (uc->upstreamSpanId == 0) {
      // One upstream span covers the whole phase, re-dispatches
      // included (each retry adds its own kEdgeRedispatch marker).
      uc->upstreamSpanId = trace::newId();
    }
  }

  h2::HeaderList headers;
  headers.emplace_back(std::string(kHdrMethod), req.method);
  headers.emplace_back(std::string(kHdrPath), req.path);
  for (const auto& [n, v] : req.headers.all()) {
    if (n == kHdrTrace) {
      continue;  // this hop owns the header; re-added below
    }
    headers.emplace_back(n, v);
  }
  if (uc->upstreamSpanId != 0) {
    headers.emplace_back(
        std::string(kHdrTrace),
        trace::formatTraceHeader(uc->trace.traceId, uc->upstreamSpanId));
  }
  bool endNow = uc->parser.messageComplete() && uc->bodyPending.empty();
  uc->upstreamEnded = endNow;
  link->session->sendHeaders(sid, headers, endNow);

  uc->timeoutTimer = uc->shard->loop->runAfter(
      config_.requestTimeout,
      [this, uc] {
        if (uc->requestActive && !uc->responseStarted && uc->conn->open()) {
          bump("edge.err.timeout");
          edgeNoteDisruption(uc, fr::DisruptionCause::kTimeout);
          if (uc->link != nullptr) {
            if (uc->link->session) {
              uc->link->session->sendReset(uc->streamId);
            }
            uc->link->httpStreams.erase(uc->streamId);
            uc->link = nullptr;
          }
          edgeFailUserRequest(uc, 504, "origin timeout");
        }
      },
      "timer.request_timeout");
}

void Proxy::edgeOnHttpBody(const std::shared_ptr<UserHttpConn>& uc,
                           std::string_view fragment, bool last) {
  if (uc->servedLocally || uc->link == nullptr || uc->upstreamEnded) {
    return;  // locally-served or failed request: discard the body
  }
  uc->upstreamEnded = last;
  uc->link->session->sendData(uc->streamId, fragment, last);
}

void Proxy::edgeServeLocal(const std::shared_ptr<UserHttpConn>& uc,
                           const http::Response& res) {
  uc->servedLocally = true;
  uc->lastStatus = res.status;
  Buffer out;
  if (draining_) {
    // Drain migration: tell keep-alive clients to reconnect; their next
    // connection lands on the updated instance (§4.1).
    http::Response copy = res;
    copy.headers.set("Connection", "close");
    http::serialize(copy, out);
  } else {
    http::serialize(res, out);
  }
  uc->copyBytes += out.size();
  uc->conn->send(out.readable());
  if (uc->parser.messageComplete()) {
    edgeFinishUserRequest(uc);
    if (draining_ && uc->conn->open()) {
      uc->conn->closeAfterFlush();
    }
  }
  // Otherwise the request body is still streaming in; it is discarded
  // as it arrives and the request finishes once the parser completes.
}

void Proxy::edgeFailUserRequest(const std::shared_ptr<UserHttpConn>& uc,
                                int status, const std::string& why) {
  http::Response res;
  res.status = status;
  res.reason = std::string(http::defaultReason(status));
  res.body = why;
  edgeServeLocal(uc, res);
}

bool Proxy::edgeTryRedispatch(const std::shared_ptr<UserHttpConn>& uc) {
  // A trunk stream died under the request. For an idempotent request
  // that is fully sent and has seen no response bytes, retrying on
  // another trunk is invisible to the user — but only within the
  // shard's retry budget, so a dying origin can't double the load on
  // the survivors (retry-storm amplification).
  const http::Request& req = uc->parser.message();
  if (req.method != "GET" || uc->responseStarted ||
      !uc->parser.messageComplete() || !uc->conn->open() || terminated_) {
    return false;
  }
  if (edgePickTrunk(*uc->shard) == nullptr) {
    return false;  // nowhere better to go; fail like before
  }
  if (!trySpendRetryToken(*uc->shard)) {
    return false;
  }
  bump("edge.dispatch_retries");
  if (uc->trace.valid()) {
    const uint64_t now = trace::nowNs();
    recordSpan(uc->shard->spans, uc->trace.traceId, trace::newId(),
               uc->upstreamSpanId != 0 ? uc->upstreamSpanId
                                       : uc->trace.spanId,
               trace::SpanKind::kEdgeRedispatch, traceInstance_, now, now,
               static_cast<uint64_t>(uc->trunkWaitRetries));
  }
  uc->shard->loop->cancelTimer(uc->timeoutTimer);
  uc->link = nullptr;
  uc->streamId = 0;
  uc->upstreamEnded = false;
  edgeDispatchUpstream(uc);
  return true;
}

void Proxy::edgeDeliverUpstreamResponse(
    const std::shared_ptr<UserHttpConn>& uc) {
  uc->lastStatus = uc->upstreamResponse.status;
  if (!uc->cacheKey.empty() && uc->upstreamResponse.status == 200) {
    edgeCache_.put(uc->cacheKey, uc->upstreamResponse);
  }
  if (draining_) {
    uc->upstreamResponse.headers.set("Connection", "close");
  }
  Buffer out;
  http::serialize(uc->upstreamResponse, out);
  uc->copyBytes += out.size();
  uc->conn->send(out.readable());
  edgeFinishUserRequest(uc);
  if (draining_ && uc->conn->open()) {
    uc->conn->closeAfterFlush();  // migrate the client off this instance
  }
}

void Proxy::edgeFinishUserRequest(const std::shared_ptr<UserHttpConn>& uc) {
  uc->shard->loop->cancelTimer(uc->timeoutTimer);
  if (uc->link != nullptr) {
    uc->link->httpStreams.erase(uc->streamId);
  }
  if (uc->countedInFlight) {
    uc->countedInFlight = false;
    edgeNoteRequestDone(*uc->shard);
  }
  Shard& sh = *uc->shard;
  const uint64_t endNs = trace::nowNs();
  if (uc->reqStartNs != 0 && sh.requestUs != nullptr) {
    sh.requestUs->record(
        static_cast<double>(endNs - uc->reqStartNs) / 1000.0);
  }
  if (sh.copyBytesPerReq != nullptr) {
    sh.copyBytesPerReq->record(static_cast<double>(uc->copyBytes));
  }
  if (uc->trace.valid()) {
    if (uc->dispatchStartNs != 0) {
      // The upstream phase ends with the request (covers failure paths
      // where no response ever arrived).
      recordSpan(sh.spans, uc->trace.traceId, uc->upstreamSpanId,
                 uc->trace.spanId, trace::SpanKind::kEdgeUpstream,
                 traceInstance_, uc->dispatchStartNs, endNs,
                 static_cast<uint64_t>(uc->lastStatus));
    }
    recordSpan(sh.spans, uc->trace.traceId, uc->trace.spanId,
               uc->trace.parentId,
               uc->dispatchStartNs != 0 ? trace::SpanKind::kEdgeRequest
                                        : trace::SpanKind::kEdgeLocal,
               traceInstance_, uc->reqStartNs, endNs,
               static_cast<uint64_t>(uc->lastStatus));
  }
  // A final response delivered before the request body finished (379
  // replays surface this, as do early 5xx) leaves the connection
  // unsynchronized: close it rather than parse stray body bytes as a
  // new request.
  bool early = !uc->parser.messageComplete();
  uc->resetRequestState();
  uc->parser.reset();
  if (early) {
    uc->conn->closeAfterFlush();
  }
}

// ------------------------------------------------------------ trunk links

Proxy::TrunkLink* Proxy::edgePickTrunk(Shard& sh) {
  // Round-robin over healthy links; links whose origin announced
  // GOAWAY take no new work (§4.1).
  auto usable = [](const TrunkLink& l) { return l.up && !l.peerDraining; };
  for (size_t i = 0; i < sh.trunkLinks.size(); ++i) {
    TrunkLink* link =
        sh.trunkLinks[(sh.trunkRoundRobin + i) % sh.trunkLinks.size()].get();
    if (usable(*link)) {
      sh.trunkRoundRobin = (sh.trunkRoundRobin + i + 1) % sh.trunkLinks.size();
      return link;
    }
  }
  // Degraded mode: accept a draining origin rather than failing.
  for (auto& l : sh.trunkLinks) {
    if (l->up) {
      return l.get();
    }
  }
  return nullptr;
}

void Proxy::edgeEnsureTrunk(Shard& sh, size_t idx) {
  // Runs on sh's loop thread (or on the primary before the shard has
  // any traffic, via the startup fan-out, which is equivalent).
  TrunkLink* link = sh.trunkLinks[idx].get();
  if (link->connecting || link->up || terminated_) {
    return;
  }
  link->connecting = true;
  Shard* shp = &sh;
  Connector::connect(
      *sh.loop, link->origin.addr,
      [this, shp, idx](TcpSocket sock, std::error_code ec) {
        if (terminated_) {
          return;
        }
        TrunkLink* link = shp->trunkLinks[idx].get();
        link->connecting = false;
        if (ec) {
          bump("edge.trunk_connect_failed");
          if (!draining_ && link->reconnectTimer == 0) {
            link->reconnectTimer = shp->loop->runAfter(
                Duration{200},
                [this, shp, idx] {
                  shp->trunkLinks[idx]->reconnectTimer = 0;
                  edgeEnsureTrunk(*shp, idx);
                },
                "timer.trunk_reconnect");
          }
          return;
        }
        fault::tagFd(sock.fd(), "trunk.edge");
        auto conn = Connection::make(*shp->loop, std::move(sock));
        link->session = h2::Session::make(conn, h2::Session::Role::kClient);
        link->up = true;
        link->peerDraining = false;

        h2::Session::Callbacks cbs;
        cbs.onHeaders = [this, link](uint32_t sid,
                                     const h2::HeaderList& headers,
                                     bool end) {
          // HTTP response headers for one of our streams.
          if (auto it = link->httpStreams.find(sid);
              it != link->httpStreams.end()) {
            auto uc = it->second.lock();
            if (!uc) {
              link->httpStreams.erase(it);
              return;
            }
            uc->responseStarted = true;
            for (const auto& [n, v] : headers) {
              if (n == kHdrStatus) {
                uc->upstreamResponse.status = std::stoi(v);
                uc->upstreamResponse.reason = std::string(
                    http::defaultReason(uc->upstreamResponse.status));
              } else {
                uc->upstreamResponse.headers.add(n, v);
              }
            }
            if (end) {
              edgeDeliverUpstreamResponse(uc);  // response with no body
              return;
            }
            // Relay mode: a big response streams straight through to the
            // client instead of re-buffering the whole body. Requires
            // the origin's Content-Length (the client needs framing) and
            // skips the cache, which wants the assembled body.
            uint64_t len = 0;
            if (auto cl = uc->upstreamResponse.headers.get("Content-Length")) {
              len = std::strtoull(std::string(*cl).c_str(), nullptr, 10);
            }
            if (config_.relayThresholdBytes > 0 &&
                len >= config_.relayThresholdBytes) {
              uc->relayActive = true;
              uc->cacheKey.clear();
              uc->lastStatus = uc->upstreamResponse.status;
              if (draining_) {
                uc->upstreamResponse.headers.set("Connection", "close");
              }
              Buffer out;
              http::serializeHead(uc->upstreamResponse, out);
              uc->copyBytes += out.size();
              uc->conn->send(out.readable());
              bump("edge.relay_mode_entered");
            }
            return;
          }
          // MQTT tunnel responses (open ack / DCR resume verdict).
          if (auto it = link->mqttStreams.find(sid);
              it != link->mqttStreams.end()) {
            auto tun = it->second.lock();
            if (!tun) {
              link->mqttStreams.erase(it);
              return;
            }
            int status = 0;
            for (const auto& [n, v] : headers) {
              if (n == kHdrStatus) {
                status = std::stoi(v);
              }
            }
            if (tun->resuming && sid == tun->resumeStreamId) {
              if (tun->resumeTraceId != 0) {
                recordSpan(link->shard->spans, tun->resumeTraceId,
                           tun->resumeSpanId, tun->resumeParentId,
                           trace::SpanKind::kEdgeDcrResume, traceInstance_,
                           tun->resumeStartNs, trace::nowNs(),
                           static_cast<uint64_t>(status));
              }
              if (status == 200) {
                // connect_ack (§4.2): swap to the new relay path.
                if (tun->link != nullptr) {
                  tun->link->mqttStreams.erase(tun->streamId);
                  tun->link->session->sendReset(tun->streamId);
                }
                tun->link = link;
                tun->streamId = sid;
                tun->resuming = false;
                tun->resumeLink = nullptr;
                tun->tunnelUp = true;
                bump("edge.dcr_resumed");
              } else {
                // connect_refuse: drop; the client reconnects normally.
                bump("edge.dcr_refused");
                link->mqttStreams.erase(sid);
                edgeDropMqttTunnel(
                    tun, std::make_error_code(std::errc::connection_reset));
              }
              return;
            }
            if (status != 0 && status != 200) {
              bump("edge.mqtt_tunnel_open_failed");
              edgeDropMqttTunnel(
                  tun, std::make_error_code(std::errc::connection_refused));
            }
            return;
          }
        };
        cbs.onData = [this, link](uint32_t sid, std::string_view data,
                                  bool end) {
          if (auto it = link->httpStreams.find(sid);
              it != link->httpStreams.end()) {
            auto uc = it->second.lock();
            if (!uc) {
              link->httpStreams.erase(it);
              return;
            }
            if (uc->relayActive) {
              // Headers already went out; forward each fragment without
              // re-buffering it into upstreamResponse.body.
              uc->copyBytes += data.size();
              uc->conn->send(data);
              if (end) {
                bumpHot(hot_.responsesRelayed);
                edgeFinishUserRequest(uc);
                if (draining_ && uc->conn->open()) {
                  uc->conn->closeAfterFlush();
                }
              }
              return;
            }
            uc->upstreamResponse.body.append(data);
            uc->copyBytes += data.size();
            if (end) {
              bumpHot(hot_.responsesRelayed);
              edgeDeliverUpstreamResponse(uc);
            }
            return;
          }
          if (auto it = link->mqttStreams.find(sid);
              it != link->mqttStreams.end()) {
            auto tun = it->second.lock();
            if (tun && tun->userConn->open()) {
              tun->userConn->send(data);
              bump(config_.name + ".mqtt_bytes_to_user", data.size());
            }
            if (end && tun) {
              edgeDropMqttTunnel(tun, {});
            }
            return;
          }
        };
        cbs.onReset = [this, link](uint32_t sid) {
          if (auto it = link->httpStreams.find(sid);
              it != link->httpStreams.end()) {
            auto uc = it->second.lock();
            link->httpStreams.erase(it);
            if (uc && uc->requestActive) {
              uc->link = nullptr;
              if (uc->relayActive) {
                // Part of the body already reached the client under a
                // Content-Length it can never complete; the only honest
                // signal left is a reset.
                bump("edge.err.stream_abort");
                edgeNoteDisruption(uc, fr::DisruptionCause::kTrunkAbort);
                uc->conn->close(
                    std::make_error_code(std::errc::connection_reset));
                return;
              }
              if (edgeTryRedispatch(uc)) {
                return;
              }
              bump("edge.err.stream_abort");
              edgeNoteDisruption(uc, fr::DisruptionCause::kTrunkAbort);
              edgeFailUserRequest(uc, 502, "origin stream reset");
            }
            return;
          }
          if (auto it = link->mqttStreams.find(sid);
              it != link->mqttStreams.end()) {
            auto tun = it->second.lock();
            link->mqttStreams.erase(it);
            if (tun && !tun->resuming) {
              edgeDropMqttTunnel(
                  tun, std::make_error_code(std::errc::connection_reset));
            }
          }
        };
        cbs.onGoaway = [this, link](const h2::GoawayInfo&) {
          link->peerDraining = true;
          bump("edge.trunk_goaway_received");
        };
        cbs.onControl = [this, link](const h2::Frame& f) {
          edgeOnTrunkControl(link, f);
        };
        cbs.onClose = [this, link](std::error_code) {
          edgeOnTrunkClosed(link);
        };
        link->session->setCallbacks(std::move(cbs));
        link->session->start();
        // The origin's listener sniffs the first bytes to tell trunk
        // frames from ZDRTUN prefaces; a ping makes an otherwise idle
        // trunk announce itself instead of sitting unregistered.
        link->session->sendPing();
        bump("edge.trunk_established");
      });
}

void Proxy::edgeOnTrunkControl(TrunkLink* link, const h2::Frame& frame) {
  if (frame.type == h2::FrameType::kReconnectSolicitation &&
      config_.dcrEnabled) {
    bump("edge.dcr_solicitation_received");
    // The draining origin's drain trace rides the frame payload so the
    // resume hops recorded here join it.
    uint64_t solTrace = 0;
    uint64_t solSpan = 0;
    if (!frame.payload.empty()) {
      trace::parseTraceHeader(frame.payload, solTrace, solSpan);
    }
    edgeResumeMqttTunnels(link, solTrace, solSpan);
  }
}

void Proxy::edgeOnTrunkClosed(TrunkLink* link) {
  link->up = false;
  link->connecting = false;
  link->session = nullptr;
  bump("edge.trunk_closed");

  // In-flight HTTP requests on this trunk abort.
  auto httpStreams = std::move(link->httpStreams);
  link->httpStreams.clear();
  for (auto& [sid, weakUc] : httpStreams) {
    auto uc = weakUc.lock();
    if (uc && uc->requestActive) {
      uc->link = nullptr;
      if (uc->relayActive) {
        bump("edge.err.stream_abort");
        edgeNoteDisruption(uc, fr::DisruptionCause::kTrunkAbort);
        uc->conn->close(std::make_error_code(std::errc::connection_reset));
        continue;  // partial streamed body; see onReset
      }
      if (edgeTryRedispatch(uc)) {
        continue;
      }
      bump("edge.err.stream_abort");
      edgeNoteDisruption(uc, fr::DisruptionCause::kTrunkAbort);
      edgeFailUserRequest(uc, 502, "trunk closed");
    }
  }
  // MQTT tunnels on this trunk die (unless mid-resume to another link).
  auto mqttStreams = std::move(link->mqttStreams);
  link->mqttStreams.clear();
  for (auto& [sid, weakTun] : mqttStreams) {
    auto tun = weakTun.lock();
    if (!tun) {
      continue;
    }
    if (tun->resuming && tun->resumeLink != nullptr &&
        tun->resumeLink != link) {
      // Resume still in flight elsewhere; detach from the dead trunk.
      if (tun->link == link) {
        tun->link = nullptr;
        tun->tunnelUp = false;
      }
      continue;
    }
    edgeDropMqttTunnel(tun,
                       std::make_error_code(std::errc::connection_reset));
  }

  if (!draining_ && !terminated_ && link->reconnectTimer == 0) {
    size_t idx = link->idx;
    Shard* shp = link->shard;
    link->reconnectTimer = shp->loop->runAfter(
        Duration{200},
        [this, shp, idx] {
          shp->trunkLinks[idx]->reconnectTimer = 0;
          edgeEnsureTrunk(*shp, idx);
        },
        "timer.trunk_reconnect");
  }
}

// -------------------------------------------------------------- MQTT edge

void Proxy::edgeOnMqttAccept(TcpSocket sock) {
  if (terminated_) {
    return;
  }
  bump(config_.name + ".mqtt_conn_accepted");
  fault::tagFd(sock.fd(), "edge.mqtt");
  static const uint32_t kAcceptTag = trace::internInstance("accept.mqtt");
  fr::recordEvent(shards_.empty() ? nullptr : shards_.front()->events,
                  fr::EventKind::kAccept, traceInstance_, 0, 0, kAcceptTag);
  auto tun = std::make_shared<MqttTunnel>();
  tun->userConn = Connection::make(loop_, std::move(sock));
  mqttTunnels_.insert(tun);

  tun->userConn->setDataCallback([this, tun](Buffer& in) {
    tun->pendingToOrigin.append(in.readable());
    in.clear();
    if (tun->userId.empty()) {
      // Peek at the CONNECT packet for the user-id (the edge needs it
      // for DCR routing; it otherwise relays bytes opaquely).
      Buffer copy;
      copy.append(tun->pendingToOrigin.readable());
      bool malformed = false;
      auto pkt = mqtt::decode(copy, malformed);
      if (malformed ||
          (pkt && pkt->type != mqtt::PacketType::kConnect)) {
        edgeDropMqttTunnel(tun,
                           std::make_error_code(std::errc::protocol_error));
        return;
      }
      if (!pkt) {
        return;  // CONNECT not fully buffered yet
      }
      tun->userId = pkt->clientId;
      if (config_.mqttPassThrough) {
        // Reduced-copy mode: skip the trunk's frame machinery and dial
        // the origin's tunnel port directly, so both legs are plain TCP
        // and the whole path can ride splice(2).
        TrunkLink* link = edgePickTrunk(*shards_.front());
        if (link == nullptr) {
          bump("edge.err.no_origin");
          edgeDropMqttTunnel(
              tun, std::make_error_code(std::errc::network_unreachable));
          return;
        }
        edgeOpenDirectTunnel(tun, /*resume=*/false, link->origin);
      } else {
        edgeOpenMqttTunnel(tun, /*resume=*/false);
      }
    }
    if (tun->tunnelUp && tun->link != nullptr && tun->link->session &&
        !tun->pendingToOrigin.empty()) {
      tun->link->session->sendData(
          tun->streamId, tun->pendingToOrigin.view(), false);
      tun->pendingToOrigin.clear();
    }
  });
  tun->userConn->setCloseCallback([this, tun](std::error_code) {
    if (tun->link != nullptr) {
      if (tun->link->session) {
        tun->link->session->sendReset(tun->streamId);
      }
      tun->link->mqttStreams.erase(tun->streamId);
      tun->link = nullptr;
    }
    if (tun->resumeLink != nullptr) {
      if (tun->resumeLink->session) {
        tun->resumeLink->session->sendReset(tun->resumeStreamId);
      }
      tun->resumeLink->mqttStreams.erase(tun->resumeStreamId);
      tun->resumeLink = nullptr;
    }
    if (tun->directConn) {
      auto dc = std::move(tun->directConn);
      tun->directConn = nullptr;
      dc->close({});
    }
    if (tun->resumeDirectConn) {
      auto dc = std::move(tun->resumeDirectConn);
      tun->resumeDirectConn = nullptr;
      dc->close({});
    }
    mqttTunnels_.erase(tun);
  });
  tun->userConn->start();
}

void Proxy::edgeOpenMqttTunnel(const std::shared_ptr<MqttTunnel>& tun,
                               bool resume) {
  // MQTT tunnels are pinned to shard 0 (the primary loop), so they
  // only ever ride shard 0's trunk links.
  TrunkLink* link = edgePickTrunk(*shards_.front());
  if (link == nullptr) {
    bump("edge.err.no_origin");
    edgeDropMqttTunnel(tun,
                       std::make_error_code(std::errc::network_unreachable));
    return;
  }
  uint32_t sid = link->session->openStream();
  if (sid == 0) {
    edgeDropMqttTunnel(tun,
                       std::make_error_code(std::errc::network_unreachable));
    return;
  }
  h2::HeaderList headers;
  headers.emplace_back(std::string(kHdrTunnel), "mqtt");
  headers.emplace_back(std::string(kHdrUserId), tun->userId);
  if (resume) {
    headers.emplace_back(std::string(kHdrResume), "1");
    if (trace::tracingEnabled()) {
      tun->resumeTraceId = trace::newId();
      tun->resumeParentId = 0;
      tun->resumeSpanId = trace::newId();
      tun->resumeStartNs = trace::nowNs();
      headers.emplace_back(std::string(kHdrTrace),
                           trace::formatTraceHeader(tun->resumeTraceId,
                                                    tun->resumeSpanId));
    }
  }
  link->mqttStreams[sid] = tun;
  link->session->sendHeaders(sid, headers, false);
  if (resume) {
    tun->resuming = true;
    tun->resumeLink = link;
    tun->resumeStreamId = sid;
    bump("edge.dcr_reconnect_sent");  // the paper's re_connect message
  } else {
    tun->link = link;
    tun->streamId = sid;
    tun->tunnelUp = true;  // origin buffers until its broker leg is up
    if (!tun->pendingToOrigin.empty()) {
      link->session->sendData(sid, tun->pendingToOrigin.view(), false);
      tun->pendingToOrigin.clear();
    }
  }
}

void Proxy::edgeResumeMqttTunnels(TrunkLink* fromLink, uint64_t solTraceId,
                                  uint64_t solSpanId) {
  // §4.2 workflow step B: for every tunnel relayed via the restarting
  // origin, ask a *different healthy* origin to take over the relay.
  // Tunnels are pinned to shard 0, so on any other shard this loop is
  // empty and the solicitation is a no-op.
  Shard& sh = *fromLink->shard;

  // Pass-through tunnels do not ride trunk streams; match them by the
  // origin the solicitation arrived from and re-dial a healthy peer.
  if (config_.mqttPassThrough && &sh == shards_.front().get()) {
    std::vector<std::shared_ptr<MqttTunnel>> direct;
    for (const auto& tun : mqttTunnels_) {
      if (tun->directConn && tun->originName == fromLink->origin.name &&
          !tun->resuming) {
        direct.push_back(tun);
      }
    }
    for (const auto& tun : direct) {
      TrunkLink* other = nullptr;
      for (size_t i = 0; i < sh.trunkLinks.size(); ++i) {
        TrunkLink* cand =
            sh.trunkLinks[(sh.trunkRoundRobin + i) % sh.trunkLinks.size()]
                .get();
        if (cand->origin.name != fromLink->origin.name && cand->up &&
            !cand->peerDraining) {
          other = cand;
          sh.trunkRoundRobin =
              (sh.trunkRoundRobin + i + 1) % sh.trunkLinks.size();
          break;
        }
      }
      if (other == nullptr) {
        bump("edge.dcr_no_alternative");
        continue;
      }
      edgeOpenDirectTunnel(tun, /*resume=*/true, other->origin, solTraceId,
                           solSpanId);
    }
  }
  std::vector<std::shared_ptr<MqttTunnel>> affected;
  for (auto& [sid, weakTun] : fromLink->mqttStreams) {
    if (auto tun = weakTun.lock(); tun && !tun->resuming) {
      affected.push_back(tun);
    }
  }
  for (const auto& tun : affected) {
    TrunkLink* other = nullptr;
    for (size_t i = 0; i < sh.trunkLinks.size(); ++i) {
      TrunkLink* cand =
          sh.trunkLinks[(sh.trunkRoundRobin + i) % sh.trunkLinks.size()].get();
      if (cand != fromLink && cand->up && !cand->peerDraining) {
        other = cand;
        sh.trunkRoundRobin = (sh.trunkRoundRobin + i + 1) % sh.trunkLinks.size();
        break;
      }
    }
    if (other == nullptr) {
      bump("edge.dcr_no_alternative");
      continue;  // tunnel rides out the drain and dies with the origin
    }
    uint32_t sid = other->session->openStream();
    if (sid == 0) {
      continue;
    }
    h2::HeaderList headers;
    headers.emplace_back(std::string(kHdrTunnel), "mqtt");
    headers.emplace_back(std::string(kHdrUserId), tun->userId);
    headers.emplace_back(std::string(kHdrResume), "1");
    if (trace::tracingEnabled()) {
      // Join the drain trace from the solicitation (fresh trace when
      // the frame carried none — an old peer, or a test poke).
      tun->resumeTraceId = solTraceId != 0 ? solTraceId : trace::newId();
      tun->resumeParentId = solSpanId;
      tun->resumeSpanId = trace::newId();
      tun->resumeStartNs = trace::nowNs();
      headers.emplace_back(std::string(kHdrTrace),
                           trace::formatTraceHeader(tun->resumeTraceId,
                                                    tun->resumeSpanId));
    }
    other->mqttStreams[sid] = tun;
    other->session->sendHeaders(sid, headers, false);
    tun->resuming = true;
    tun->resumeLink = other;
    tun->resumeStreamId = sid;
    bump("edge.dcr_reconnect_sent");
  }
}

void Proxy::edgeOpenDirectTunnel(const std::shared_ptr<MqttTunnel>& tun,
                                 bool resume, const BackendRef& origin,
                                 uint64_t solTraceId, uint64_t solSpanId) {
  if (resume) {
    tun->resuming = true;
    tun->resumeTraceId = 0;
    if (trace::tracingEnabled()) {
      tun->resumeTraceId = solTraceId != 0 ? solTraceId : trace::newId();
      tun->resumeParentId = solSpanId;
      tun->resumeSpanId = trace::newId();
      tun->resumeStartNs = trace::nowNs();
    }
    bump("edge.dcr_reconnect_sent");
  }
  std::string originName = origin.name;
  Connector::connect(
      loop_, origin.addr,
      [this, tun, resume, originName](TcpSocket sock, std::error_code ec) {
        if (terminated_ || !tun->userConn->open()) {
          return;
        }
        if (ec) {
          if (resume) {
            // The old relay path is normally still intact; stay on it.
            // If the broker already kicked it (client takeover), the
            // tunnel has no leg left and must drop.
            tun->resuming = false;
            bump("edge.dcr_refused");
            if (tun->directConn == nullptr) {
              edgeDropMqttTunnel(tun, ec);
            }
          } else {
            bump("edge.err.no_origin");
            edgeDropMqttTunnel(tun, ec);
          }
          return;
        }
        fault::tagFd(sock.fd(), "edge.tunnel");
        auto dc = Connection::make(loop_, std::move(sock));
        std::weak_ptr<Connection> wdc = dc;

        if (!resume) {
          tun->directConn = dc;
          tun->originName = originName;
          dc->setCloseCallback([this, tun, wdc](std::error_code why) {
            if (tun->directConn != nullptr && tun->directConn == wdc.lock()) {
              tun->directConn = nullptr;
              if (tun->resuming) {
                // Expected mid-resume: the broker kicks the old session
                // the moment the resume leg's CONNECT lands (MQTT client
                // takeover). The verdict completes the swap; dropping
                // here would sever the user for no reason.
                bump("edge.dcr_old_leg_closed");
                return;
              }
              edgeDropMqttTunnel(tun, why);
            }
          });
          dc->start();
          dc->send("ZDRTUN " + tun->userId + " 0\n");
          // Bytes the user sent before the leg was up — the CONNECT
          // packet at minimum — lead the relay. The broker's CONNACK
          // flows back through it untouched.
          if (!tun->pendingToOrigin.empty()) {
            dc->send(tun->pendingToOrigin.readable());
            tun->pendingToOrigin.clear();
          }
          tun->tunnelUp = true;
          bump("edge.mqtt_passthrough_opened");
          tun->userConn->startRelayTo(dc);
          dc->startRelayTo(tun->userConn);
          return;
        }

        // DCR resume (§4.2): keep the old path live until the new origin
        // answers the preface with a verdict (make-before-break).
        tun->resumeDirectConn = dc;
        tun->resumeVerdictBuf.clear();
        dc->setCloseCallback([this, tun, wdc](std::error_code why) {
          if (tun->resumeDirectConn != nullptr &&
              tun->resumeDirectConn == wdc.lock()) {
            tun->resumeDirectConn = nullptr;
            tun->resuming = false;  // old path survives (usually)
            bump("edge.dcr_refused");
            if (tun->directConn == nullptr) {
              edgeDropMqttTunnel(tun, why);
            }
          }
        });
        dc->setDataCallback([this, tun, wdc, originName](Buffer& in) {
          auto dc = wdc.lock();
          if (!dc || tun->resumeDirectConn != dc) {
            return;
          }
          tun->resumeVerdictBuf.append(in.readable());
          in.clear();
          auto view = tun->resumeVerdictBuf.view();
          auto eol = view.find('\n');
          if (eol == std::string_view::npos) {
            if (view.size() > 64) {  // verdicts are one short line
              tun->resumeDirectConn = nullptr;
              tun->resuming = false;
              dc->close(std::make_error_code(std::errc::protocol_error));
            }
            return;
          }
          const bool ok = view.substr(0, eol + 1) == kTunnelOk;
          if (tun->resumeTraceId != 0) {
            recordSpan(shards_.front()->spans, tun->resumeTraceId,
                       tun->resumeSpanId, tun->resumeParentId,
                       trace::SpanKind::kEdgeDcrResume, traceInstance_,
                       tun->resumeStartNs, trace::nowNs(), ok ? 200 : 410);
          }
          if (!ok) {
            // connect_refuse: drop; the client reconnects normally.
            bump("edge.dcr_refused");
            tun->resumeDirectConn = nullptr;
            tun->resuming = false;
            dc->close({});
            edgeDropMqttTunnel(
                tun, std::make_error_code(std::errc::connection_reset));
            return;
          }
          // connect_ack: swap relays atomically on this loop. The
          // user-side pipe may hold in-flight bytes; startRelayTo
          // routes that residue to the NEW sink, which is exactly the
          // make-before-break contract.
          tun->resumeVerdictBuf.consume(eol + 1);
          auto old = tun->directConn;
          tun->resumeDirectConn = nullptr;
          tun->resuming = false;
          tun->directConn = dc;
          tun->originName = originName;
          tun->tunnelUp = true;
          // The conn graduates from resume candidate to live leg: swap
          // in the live-leg close handling (the resume closeCb above
          // keys off resumeDirectConn, which no longer points here).
          dc->setCloseCallback([this, tun, wdc](std::error_code why) {
            if (tun->directConn != nullptr && tun->directConn == wdc.lock()) {
              tun->directConn = nullptr;
              if (tun->resuming) {
                bump("edge.dcr_old_leg_closed");
                return;
              }
              edgeDropMqttTunnel(tun, why);
            }
          });
          bump("edge.dcr_resumed");
          if (!tun->resumeVerdictBuf.empty()) {
            // Broker traffic that chased the verdict down the new leg.
            tun->userConn->send(tun->resumeVerdictBuf.readable());
            tun->resumeVerdictBuf.clear();
          }
          tun->userConn->startRelayTo(dc);
          dc->startRelayTo(tun->userConn);
          if (old && old->open()) {
            old->close({});
          }
        });
        dc->start();
        dc->send("ZDRTUN " + tun->userId + " 1\n");
      });
}

void Proxy::edgeDropMqttTunnel(const std::shared_ptr<MqttTunnel>& tun,
                               std::error_code why) {
  // An errored drop severs a live subscriber: attribute it. Protocol
  // errors are the client's own malformed CONNECT, not a disruption
  // we inflicted.
  if (why && why != std::make_error_code(std::errc::protocol_error) &&
      !tun->disruptionNoted) {
    tun->disruptionNoted = true;
    const bool sabotaged =
        (tun->userConn && tun->userConn->faultInjections() > 0) ||
        (tun->directConn && tun->directConn->faultInjections() > 0);
    noteDisruption(nullptr,
                   sabotaged ? fr::DisruptionCause::kFaultInjected
                             : fr::DisruptionCause::kTrunkAbort,
                   tun->resumeTraceId);
  }
  if (tun->link != nullptr) {
    tun->link->mqttStreams.erase(tun->streamId);
    if (tun->link->session) {  // null once the trunk itself died
      tun->link->session->sendReset(tun->streamId);
    }
    tun->link = nullptr;
  }
  if (tun->resumeLink != nullptr) {
    tun->resumeLink->mqttStreams.erase(tun->resumeStreamId);
    if (tun->resumeLink->session) {
      tun->resumeLink->session->sendReset(tun->resumeStreamId);
    }
    tun->resumeLink = nullptr;
  }
  if (tun->directConn) {
    auto dc = std::move(tun->directConn);
    tun->directConn = nullptr;
    dc->close({});
  }
  if (tun->resumeDirectConn) {
    auto dc = std::move(tun->resumeDirectConn);
    tun->resumeDirectConn = nullptr;
    dc->close({});
  }
  if (tun->userConn && tun->userConn->open()) {
    tun->userConn->close(why);
  }
  mqttTunnels_.erase(tun);
}

}  // namespace zdr::proxygen
