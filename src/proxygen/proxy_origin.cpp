// Origin role: trunk server, HTTP forwarding to the App. Server tier
// (including Partial Post Replay), and MQTT relay to brokers with the
// Origin half of Downstream Connection Reuse.
#include "proxygen/proxy_detail.h"

#include <cstring>

#include "appserver/app_server.h"
#include "l4lb/hashing.h"

namespace zdr::proxygen {

void Proxy::originOnTrunkAccept(Shard& sh, TcpSocket sock) {
  // Runs on sh's loop thread; the session and every request/tunnel it
  // carries stay confined to that shard.
  if (terminated_) {
    return;
  }
  fault::tagFd(sock.fd(), "trunk.origin");
  static const uint32_t kAcceptTag = trace::internInstance("accept.trunk");
  fr::recordEvent(sh.events, fr::EventKind::kAccept, traceInstance_, 0, 0,
                  kAcceptTag);
  auto conn = Connection::make(*sh.loop, std::move(sock));

  // Sniff the first bytes before committing to a protocol: an edge in
  // pass-through mode opens MQTT tunnels as raw TCP connections on
  // this same port, announced by a "ZDRTUN <userId> <0|1>\n" preface.
  // Everything else is an h2 trunk (whose binary frame header can
  // never spell the preface — "ZDRT" read as a length exceeds
  // kMaxFramePayload). The callback deliberately consumes nothing
  // until it can rule the preface in or out, so the h2 path replays a
  // byte-complete stream into the session via drainPending().
  Shard* shp = &sh;
  std::weak_ptr<Connection> weak = conn;
  conn->setCloseCallback([shp, weak](std::error_code) {
    if (auto c = weak.lock()) {
      shp->sniffingTrunkConns.erase(c);
    }
  });
  conn->setDataCallback([this, shp, weak](Buffer& in) {
    auto conn = weak.lock();
    if (!conn) {
      return;
    }
    auto data = in.readable();
    size_t cmp = std::min(data.size(), kTunnelPreface.size());
    if (std::memcmp(data.data(), kTunnelPreface.data(), cmp) != 0) {
      shp->sniffingTrunkConns.erase(conn);
      originStartTrunkSession(*shp, conn);
      return;
    }
    if (cmp < kTunnelPreface.size()) {
      return;  // prefix matches so far; need more bytes
    }
    // Full preface line: "ZDRTUN <userId> <0|1>\n".
    std::string_view view(reinterpret_cast<const char*>(data.data()),
                          data.size());
    size_t eol = view.find('\n');
    if (eol == std::string_view::npos) {
      if (view.size() > 512) {  // preposterous preface: not ours
        conn->close(std::make_error_code(std::errc::protocol_error));
      }
      return;
    }
    std::string_view line = view.substr(kTunnelPreface.size(),
                                        eol - kTunnelPreface.size());
    size_t sp = line.rfind(' ');
    if (sp == std::string_view::npos || sp == 0 ||
        (line.substr(sp + 1) != "0" && line.substr(sp + 1) != "1")) {
      conn->close(std::make_error_code(std::errc::protocol_error));
      return;
    }
    std::string userId(line.substr(0, sp));
    bool resume = line.substr(sp + 1) == "1";
    in.consume(eol + 1);  // user bytes after the preface stay queued
    shp->sniffingTrunkConns.erase(conn);
    originOpenDirectTunnel(*shp, conn, userId, resume);
  });
  sh.sniffingTrunkConns.insert(conn);
  conn->start();
}

void Proxy::originStartTrunkSession(Shard& sh, const ConnectionPtr& conn) {
  bumpHot(hot_.trunkAccepted);
  auto tc = std::make_shared<TrunkServerConn>();
  tc->shard = &sh;
  tc->session = h2::Session::make(conn, h2::Session::Role::kServer);
  sh.trunkServerSessions.insert(tc);
  trunkSessionCount_.fetch_add(1, std::memory_order_acq_rel);

  h2::Session::Callbacks cbs;
  std::weak_ptr<TrunkServerConn> weakTc = tc;
  cbs.onHeaders = [this, weakTc](uint32_t sid, const h2::HeaderList& headers,
                                 bool end) {
    if (auto tc = weakTc.lock()) {
      originOnStreamHeaders(tc, sid, headers, end);
    }
  };
  cbs.onData = [this, weakTc](uint32_t sid, std::string_view data, bool end) {
    if (auto tc = weakTc.lock()) {
      originOnStreamData(tc, sid, data, end);
    }
  };
  cbs.onReset = [this, weakTc](uint32_t sid) {
    auto tc = weakTc.lock();
    if (!tc) {
      return;
    }
    if (auto it = tc->requests.find(sid); it != tc->requests.end()) {
      auto req = it->second;
      req->finished = true;
      tc->shard->loop->cancelTimer(req->timer);
      if (req->appConn) {
        req->appConn->close({});
      }
      tc->requests.erase(it);
    }
    if (auto it = tc->brokerTunnels.find(sid);
        it != tc->brokerTunnels.end()) {
      auto bt = it->second;
      bt->closed = true;
      if (bt->brokerConn) {
        bt->brokerConn->close({});
      }
      tc->brokerTunnels.erase(it);
    }
  };
  cbs.onClose = [this, weakTc](std::error_code) {
    auto tc = weakTc.lock();
    if (!tc) {
      return;
    }
    for (auto& [sid, req] : tc->requests) {
      req->finished = true;
      tc->shard->loop->cancelTimer(req->timer);
      if (req->appConn) {
        req->appConn->close({});
      }
    }
    tc->requests.clear();
    for (auto& [sid, bt] : tc->brokerTunnels) {
      bt->closed = true;
      if (bt->brokerConn) {
        bt->brokerConn->close({});
      }
    }
    tc->brokerTunnels.clear();
    if (tc->shard->trunkServerSessions.erase(tc) > 0) {
      trunkSessionCount_.fetch_sub(1, std::memory_order_acq_rel);
    }
  };
  tc->session->setCallbacks(std::move(cbs));
  tc->session->start();

  if (draining_) {
    // A session raced our drain start: tell it immediately.
    tc->session->sendGoaway("draining");
  }
  // Replay the bytes the preface sniff left queued (it consumed
  // nothing on the h2 path, so the session sees the stream from byte
  // zero).
  conn->drainPending();
}

void Proxy::originOnStreamHeaders(const std::shared_ptr<TrunkServerConn>& tc,
                                  uint32_t streamId,
                                  const h2::HeaderList& headers,
                                  bool endStream) {
  std::string tunnelKind;
  std::string userId;
  bool resume = false;
  uint64_t traceId = 0;
  uint64_t parentSpan = 0;
  http::Request head;
  for (const auto& [n, v] : headers) {
    if (n == kHdrTunnel) {
      tunnelKind = v;
    } else if (n == kHdrUserId) {
      userId = v;
    } else if (n == kHdrResume) {
      resume = v == "1";
    } else if (n == kHdrTrace) {
      // Intercepted, never forwarded as-is: each hop re-stamps the
      // header with its own span as the parent.
      trace::parseTraceHeader(v, traceId, parentSpan);
    } else if (n == kHdrMethod) {
      head.method = v;
    } else if (n == kHdrPath) {
      head.path = v;
    } else {
      head.headers.add(n, v);
    }
  }

  if (tunnelKind == "mqtt") {
    originOpenBrokerTunnel(tc, streamId, userId, resume, traceId,
                           parentSpan);
    return;
  }

  // Plain HTTP request from the Edge.
  auto req = std::make_shared<OriginRequest>();
  req->shard = tc->shard;
  req->tc = tc;
  req->streamId = streamId;
  req->head = std::move(head);
  req->isPost = req->head.method == "POST";
  req->clientDone = endStream;
  req->reqStartNs = trace::nowNs();
  if (trace::tracingEnabled() && traceId != 0) {
    req->trace.traceId = traceId;
    req->trace.parentId = parentSpan;
    req->trace.spanId = trace::newId();
  }
  tc->requests[streamId] = req;
  bumpHot(hot_.requests);
  noteShardRequest(*tc->shard);
  originStartAppRequest(req);
}

void Proxy::originOnStreamData(const std::shared_ptr<TrunkServerConn>& tc,
                               uint32_t streamId, std::string_view data,
                               bool endStream) {
  if (auto it = tc->requests.find(streamId); it != tc->requests.end()) {
    auto req = it->second;
    if (endStream) {
      req->clientDone = true;
    }
    if (req->connected && req->appConn && req->appConn->open()) {
      Buffer out;
      if (!data.empty()) {
        http::appendChunk(out, data);
        req->bodyForwarded += data.size();
        if (req->isPost) {
          req->retainSent(data);
        }
      }
      if (req->clientDone) {
        http::appendFinalChunk(out);
      }
      req->appConn->send(out.readable());
    } else {
      req->pendingBody.append(
          std::as_bytes(std::span(data.data(), data.size())));
    }
    return;
  }
  if (auto it = tc->brokerTunnels.find(streamId);
      it != tc->brokerTunnels.end()) {
    auto bt = it->second;
    if (bt->up && bt->brokerConn && bt->brokerConn->open()) {
      bt->brokerConn->send(data);
    } else {
      bt->pendingToBroker.append(
          std::as_bytes(std::span(data.data(), data.size())));
    }
    if (endStream && bt->brokerConn) {
      bt->brokerConn->closeAfterFlush();
    }
  }
}

// ------------------------------------------------------- app-server leg

const BackendRef* Proxy::originPickAppServer(Shard& sh,
                                             const std::string& excludeName) {
  if (config_.appServers.empty()) {
    return nullptr;
  }
  // Round-robin over healthy app servers, skipping excludes. The
  // cursor is per-shard; the HealthChecker is shared and internally
  // locked.
  for (size_t i = 0; i < config_.appServers.size(); ++i) {
    const BackendRef& cand =
        config_.appServers[(sh.appRoundRobin + i) % config_.appServers.size()];
    if (cand.name == excludeName) {
      continue;
    }
    if (appHealth_ && !appHealth_->isHealthy(cand.name)) {
      continue;
    }
    if (sh.appPool && sh.appPool->breakerOpen(cand.name)) {
      continue;  // ejected outlier; half-open probes re-admit it
    }
    sh.appRoundRobin = (sh.appRoundRobin + i + 1) % config_.appServers.size();
    return &cand;
  }
  return nullptr;
}

void Proxy::originStartAppRequest(const std::shared_ptr<OriginRequest>& req) {
  ++req->attempts;
  if (req->attempts > config_.pprMaxRetries + 1) {
    bump(config_.name + ".ppr_retries_exhausted");
    originFailRequest(req, 500, "replay retries exhausted",
                      fr::DisruptionCause::kBreaker);
    return;
  }
  // Every attempt after the first is a retry and must fit in the
  // shard's budget: when a backend dies, bounded retries fail over;
  // unbounded retries would multiply the tier-wide load exactly when
  // the tier is least able to absorb it.
  if (req->attempts > 1 && !trySpendRetryToken(*req->shard)) {
    originFailRequest(req, 503, "retry budget exhausted",
                      fr::DisruptionCause::kBreaker);
    return;
  }
  bump(config_.name + ".app_attempts");
  if (req->trace.valid()) {
    // Every PPR attempt gets its own span on the SAME trace id, so a
    // replayed POST shows both app attempts under one trace.
    req->attemptSpanId = trace::newId();
    req->attemptStartNs = trace::nowNs();
  }
  originConnectApp(req, req->appName);
}

void Proxy::originConnectApp(const std::shared_ptr<OriginRequest>& req,
                             const std::string& excludeName) {
  const BackendRef* target = nullptr;
  for (size_t i = 0; i < config_.appServers.size(); ++i) {
    const BackendRef* cand = originPickAppServer(*req->shard, excludeName);
    if (cand == nullptr) {
      break;
    }
    if (req->excluded.count(cand->name) == 0) {
      target = cand;
      break;
    }
  }
  if (target == nullptr) {
    // Fall back to any non-excluded server even if health data is
    // stale — §4.4: retries across the tier "never result in a failure
    // due to unavailability of an active HHVM server".
    for (const auto& cand : config_.appServers) {
      if (req->excluded.count(cand.name) == 0 && cand.name != excludeName) {
        target = &cand;
        break;
      }
    }
  }
  if (target == nullptr) {
    originFailRequest(req, 503, "no app server available",
                      fr::DisruptionCause::kBreaker);
    return;
  }
  req->appName = target->name;
  req->resParser.reset();

  const uint64_t connectStartNs = trace::nowNs();
  req->shard->appPool->acquire(
      target->name, target->addr,
      [this, req, connectStartNs](ConnectionPtr conn, std::error_code ec,
                                  bool reused) {
        if (req->finished) {
          if (conn && !reused) {
            conn->close({});
          } else if (conn) {
            req->shard->appPool->release(req->appName, std::move(conn));
          }
          return;
        }
        if (ec) {
          if (req->trace.valid() && req->attemptSpanId != 0) {
            // detail 0 ⇒ the attempt died before any response.
            recordSpan(req->shard->spans, req->trace.traceId,
                       req->attemptSpanId, req->trace.spanId,
                       trace::SpanKind::kOriginAppAttempt, traceInstance_,
                       req->attemptStartNs, trace::nowNs(), 0);
            req->attemptSpanId = 0;
          }
          // Draining app servers refuse new connections; try the next
          // one (§4.4).
          req->excluded.insert(req->appName);
          bump(config_.name + ".app_connect_failed");
          originStartAppRequest(req);
          return;
        }
        if (req->trace.valid()) {
          recordSpan(req->shard->spans, req->trace.traceId, trace::newId(),
                     req->attemptSpanId, trace::SpanKind::kOriginAppConnect,
                     traceInstance_, connectStartNs, trace::nowNs(),
                     reused ? 1 : 0);
        }
        req->appConn = std::move(conn);
        req->connected = true;

        req->appConn->setDataCallback([this, req](Buffer& in) {
          while (!in.empty() && !req->finished) {
            auto st = req->resParser.feed(in);
            if (st == http::ParseStatus::kError) {
              req->shard->appPool->recordFailure(req->appName);
              originFailRequest(req, 502, "bad app response",
                                fr::DisruptionCause::kTrunkAbort);
              return;
            }
            if (req->resParser.messageComplete()) {
              originOnAppResponse(req);
              return;
            }
            if (st == http::ParseStatus::kNeedMore ||
                st == http::ParseStatus::kHeadersDone) {
              return;
            }
          }
        });
        req->appConn->setCloseCallback([this, req](std::error_code) {
          if (!req->finished && !req->resParser.messageComplete()) {
            if (req->trace.valid() && req->attemptSpanId != 0) {
              recordSpan(req->shard->spans, req->trace.traceId,
                         req->attemptSpanId, req->trace.spanId,
                         trace::SpanKind::kOriginAppAttempt, traceInstance_,
                         req->attemptStartNs, trace::nowNs(), 0);
              req->attemptSpanId = 0;
            }
            req->shard->appPool->recordFailure(req->appName);
            // An idempotent request that saw no response bytes fails
            // over to another server (budget-gated, like a connect
            // failure). A POST died mid-execution with no 379 handed
            // back — nothing safe to replay (§4.3 caveat).
            if (!req->isPost) {
              req->excluded.insert(req->appName);
              req->connected = false;
              req->appConn = nullptr;
              originStartAppRequest(req);
              return;
            }
            originFailRequest(req, 502, "app connection lost",
                              fr::DisruptionCause::kTrunkAbort);
          }
        });
        if (!req->appConn->started()) {
          req->appConn->start();
        }

        // Send the request head; the body always streams as chunks so
        // in-flight hand-offs need no Content-Length bookkeeping.
        http::Request out = req->head;
        out.headers.remove("Content-Length");
        out.headers.remove("Transfer-Encoding");
        if (req->trace.valid() && req->attemptSpanId != 0) {
          // set(), not add(): a 379-reconstructed head re-added the
          // echoed x-zdr-trace, and this attempt's span replaces it.
          out.headers.set(std::string(kHdrTrace),
                          trace::formatTraceHeader(req->trace.traceId,
                                                   req->attemptSpanId));
        }
        Buffer buf;
        if (req->isPost || !req->pendingBody.empty() || !req->clientDone) {
          out.headers.set("Transfer-Encoding", "chunked");
          http::serializeHead(out, buf);
          if (!req->pendingBody.empty()) {
            http::appendChunk(buf, req->pendingBody.view());
            req->bodyForwarded += req->pendingBody.size();
            if (req->isPost) {
              req->retainSent(req->pendingBody.view());
            }
            req->pendingBody.clear();
          }
          if (req->clientDone) {
            http::appendFinalChunk(buf);
          }
        } else {
          http::serializeHead(out, buf);
        }
        req->appConn->send(buf.readable());
      });
}

void Proxy::originOnAppResponse(const std::shared_ptr<OriginRequest>& req) {
  const http::Response& res = req->resParser.message();
  if (req->trace.valid() && req->attemptSpanId != 0) {
    recordSpan(req->shard->spans, req->trace.traceId, req->attemptSpanId,
               req->trace.spanId, trace::SpanKind::kOriginAppAttempt,
               traceInstance_, req->attemptStartNs, trace::nowNs(),
               static_cast<uint64_t>(res.status));
    req->attemptSpanId = 0;
  }
  // Any complete response — including a 379 drain hand-back, which
  // comes from a healthy, merely-restarting server — closes an open
  // breaker for this backend.
  req->shard->appPool->recordSuccess(req->appName);

  if (res.isPartialPostReplay()) {
    if (!config_.pprEnabled) {
      // §5.2: the proxy replays only when the feature is expected of
      // this upstream. An unexpected 379 is treated as a server
      // failure — and it must never reach the end user as-is.
      bump(config_.name + ".ppr_gate_rejected");
      originFailRequest(req, 500, "unexpected 379 from upstream",
                        fr::DisruptionCause::kBreaker);
      return;
    }
    // §4.3: the app server is restarting and handed the partial
    // request back. Rebuild and replay to a healthy peer; 379 must
    // never propagate further downstream.
    bump(config_.name + ".ppr_379_received");
    originReplayPartialPost(req, res);
    return;
  }
  if (res.status == http::kPartialPostStatus) {
    // 379 without the exact status message: a buggy upstream using an
    // unreserved code (§5.2) — treat as an ordinary response.
    bump(config_.name + ".ppr_gate_rejected");
  }
  originFinishRequest(req, res);
}

void Proxy::originReplayPartialPost(const std::shared_ptr<OriginRequest>& req,
                                    const http::Response& res379) {
  auto rebuilt = appserver::reconstructRequestFrom379(res379);
  if (!rebuilt) {
    originFailRequest(req, 500, "malformed 379",
                      fr::DisruptionCause::kBreaker);
    return;
  }
  // The server that bounced us is restarting: exclude it and carry the
  // already-received body into the retry.
  req->excluded.insert(req->appName);
  if (req->appConn) {
    req->appConn->close({});
    req->appConn = nullptr;
  }
  req->connected = false;

  http::Request head = std::move(*rebuilt);
  std::string bodySoFar = std::move(head.body);
  head.body.clear();
  req->head = std::move(head);

  // The 379 echoes what the server RECEIVED; anything we wrote that was
  // still in flight when it built the response is missing and must be
  // recovered from our bounded sent-tail.
  if (req->bodyForwarded > bodySoFar.size()) {
    uint64_t missing = req->bodyForwarded - bodySoFar.size();
    if (missing > req->sentTail.size()) {
      // Tail window exceeded (pathologically slow echo): unrecoverable.
      bump(config_.name + ".ppr_tail_exhausted");
      originFailRequest(req, 500, "in-flight bytes unrecoverable",
                        fr::DisruptionCause::kBreaker);
      return;
    }
    bump(config_.name + ".ppr_inflight_recovered");
    bodySoFar.append(req->sentTail.substr(req->sentTail.size() - missing));
  }

  // Everything the dying server had received (plus recovered in-flight
  // bytes) becomes pending payload, ahead of whatever the client still
  // streams in.
  Buffer rebuiltPending;
  rebuiltPending.append(bodySoFar);
  rebuiltPending.append(req->pendingBody.readable());
  req->pendingBody = std::move(rebuiltPending);
  req->bodyForwarded = 0;
  req->sentTail.clear();  // re-accumulates against the replay target
  bump(config_.name + ".ppr_replays");
  if (req->trace.valid()) {
    // Instant marker: the replay decision point, between the bounced
    // attempt's span and the next attempt's.
    const uint64_t now = trace::nowNs();
    recordSpan(req->shard->spans, req->trace.traceId, trace::newId(),
               req->trace.spanId, trace::SpanKind::kOriginPprReplay,
               traceInstance_, now, now,
               static_cast<uint64_t>(req->attempts));
  }
  originStartAppRequest(req);
}

void Proxy::originFinishRequest(const std::shared_ptr<OriginRequest>& req,
                                const http::Response& res) {
  if (req->finished) {
    return;
  }
  req->finished = true;
  req->shard->loop->cancelTimer(req->timer);
  const uint64_t endNs = trace::nowNs();
  if (req->reqStartNs != 0 && req->shard->requestUs != nullptr) {
    req->shard->requestUs->record(
        static_cast<double>(endNs - req->reqStartNs) / 1000.0);
  }
  if (req->trace.valid()) {
    recordSpan(req->shard->spans, req->trace.traceId, req->trace.spanId,
               req->trace.parentId, trace::SpanKind::kOriginRequest,
               traceInstance_, req->reqStartNs, endNs,
               static_cast<uint64_t>(res.status));
  }
  auto tc = req->tc.lock();
  if (tc && tc->session->open()) {
    h2::HeaderList headers;
    headers.emplace_back(std::string(kHdrStatus),
                         std::to_string(res.status));
    for (const auto& [n, v] : res.headers.all()) {
      if (!http::Headers::nameEquals(n, "Content-Length") &&
          !http::Headers::nameEquals(n, "Transfer-Encoding")) {
        headers.emplace_back(n, v);
      }
    }
    if (!res.body.empty()) {
      // The exact body size (the response is fully assembled here).
      // The edge uses it to stream large bodies straight to the user
      // — it must write the head, Content-Length included, before the
      // first DATA frame lands.
      headers.emplace_back("Content-Length", std::to_string(res.body.size()));
    }
    tc->session->sendHeaders(req->streamId, headers, res.body.empty());
    if (!res.body.empty()) {
      // Bounded DATA frames: one giant frame would trip the peer's
      // kMaxFramePayload guard, and the edge's streaming relay moves
      // each fragment straight to the user as it arrives.
      constexpr size_t kDataChunk = 256 * 1024;
      std::string_view body = res.body;
      while (!body.empty()) {
        size_t n = std::min(body.size(), kDataChunk);
        tc->session->sendData(req->streamId, body.substr(0, n),
                              n == body.size());
        body.remove_prefix(n);
      }
    }
    tc->requests.erase(req->streamId);
  }
  if (req->appConn) {
    // Recycle the upstream connection when it is provably clean: a
    // complete non-error exchange whose request body fully went out.
    // A 379 means the server is restarting — never pool it.
    bool reusable = req->appConn->open() && res.status < 500 &&
                    !res.isPartialPostReplay() && req->clientDone &&
                    req->pendingBody.empty() &&
                    req->resParser.messageComplete();
    if (reusable) {
      req->appConn->setDataCallback(nullptr);
      req->appConn->setCloseCallback(nullptr);
      req->shard->appPool->release(req->appName, std::move(req->appConn));
    } else {
      req->appConn->closeAfterFlush();
    }
    req->appConn = nullptr;
  }
  bumpHot(hot_.responsesSent);
}

void Proxy::originFailRequest(const std::shared_ptr<OriginRequest>& req,
                              int status, const std::string& why,
                              fr::DisruptionCause cause) {
  if (req->finished) {
    return;
  }
  if (req->appConn && req->appConn->faultInjections() > 0) {
    cause = fr::DisruptionCause::kFaultInjected;
  }
  noteDisruption(req->shard, cause, req->trace.traceId);
  http::Response res;
  res.status = status;
  res.reason = std::string(http::defaultReason(status));
  res.body = why;
  bump(config_.name + ".err." + std::to_string(status));
  originFinishRequest(req, res);
}

// ---------------------------------------------------------- broker leg

const BackendRef* Proxy::originBrokerFor(const std::string& userId) {
  if (config_.brokers.empty()) {
    return nullptr;
  }
  // Consistent hashing on user-id keeps the user→broker mapping stable
  // across proxies, which is what makes the Origin "stateless" with
  // respect to MQTT tunnels (§4.2).
  auto idx = brokerHash_->pick(l4lb::hashBytes(userId));
  if (!idx) {
    return nullptr;
  }
  return &config_.brokers[*idx];
}

void Proxy::originOpenBrokerTunnel(const std::shared_ptr<TrunkServerConn>& tc,
                                   uint32_t streamId,
                                   const std::string& userId, bool resume,
                                   uint64_t traceId,
                                   uint64_t parentSpanId) {
  auto bt = std::make_shared<BrokerTunnel>();
  bt->tc = tc;
  bt->streamId = streamId;
  bt->userId = userId;
  bt->resume = resume;
  if (resume && trace::tracingEnabled() && traceId != 0) {
    // The edge stamped the resume stream with the draining peer's
    // drain trace; our re-attach span joins it.
    bt->trace.traceId = traceId;
    bt->trace.parentId = parentSpanId;
    bt->trace.spanId = trace::newId();
    bt->resumeStartNs = trace::nowNs();
  }
  tc->brokerTunnels[streamId] = bt;
  bump(config_.name + (resume ? ".dcr_reconnect_received"
                              : ".mqtt_tunnel_opened"));

  const BackendRef* broker = originBrokerFor(userId);
  if (broker == nullptr) {
    h2::HeaderList headers{{std::string(kHdrStatus), "503"}};
    tc->session->sendHeaders(streamId, headers, true);
    tc->brokerTunnels.erase(streamId);
    return;
  }

  Connector::connect(
      *tc->shard->loop, broker->addr,
      [this, bt](TcpSocket sock, std::error_code ec) {
        auto tc = bt->tc.lock();
        if (!tc || bt->closed) {
          return;
        }
        if (ec) {
          recordSpan(tc->shard->spans, bt->trace.traceId, bt->trace.spanId,
                     bt->trace.parentId,
                     trace::SpanKind::kOriginDcrReconnect, traceInstance_,
                     bt->resumeStartNs, trace::nowNs(), 502);
          h2::HeaderList headers{{std::string(kHdrStatus), "502"}};
          tc->session->sendHeaders(bt->streamId, headers, true);
          tc->brokerTunnels.erase(bt->streamId);
          return;
        }
        fault::tagFd(sock.fd(), "origin.broker");
        bt->brokerConn = Connection::make(loop_, std::move(sock));

        bt->brokerConn->setDataCallback([this, bt](Buffer& in) {
          auto tc = bt->tc.lock();
          if (!tc || bt->closed) {
            in.clear();
            return;
          }
          if (bt->resume && !bt->up) {
            // DCR re-attach: consume the broker's CONNACK ourselves;
            // the end user must never see this handshake (§4.2).
            bt->resumeParseBuf.append(in.readable());
            in.clear();
            bool malformed = false;
            auto pkt = mqtt::decode(bt->resumeParseBuf, malformed);
            if (malformed) {
              h2::HeaderList headers{{std::string(kHdrStatus), "502"}};
              tc->session->sendHeaders(bt->streamId, headers, true);
              bt->brokerConn->close({});
              tc->brokerTunnels.erase(bt->streamId);
              return;
            }
            if (!pkt) {
              return;
            }
            if (pkt->type == mqtt::PacketType::kConnack &&
                pkt->returnCode == mqtt::kConnAccepted &&
                pkt->sessionPresent) {
              // connect_ack: context found, relay path re-established.
              bt->up = true;
              bump(config_.name + ".dcr_connect_ack");
              recordSpan(tc->shard->spans, bt->trace.traceId,
                         bt->trace.spanId, bt->trace.parentId,
                         trace::SpanKind::kOriginDcrReconnect,
                         traceInstance_, bt->resumeStartNs, trace::nowNs(),
                         200);
              h2::HeaderList headers{{std::string(kHdrStatus), "200"}};
              tc->session->sendHeaders(bt->streamId, headers, false);
              // Any publishes that followed the CONNACK flow onward.
              if (!bt->resumeParseBuf.empty()) {
                tc->session->sendData(bt->streamId,
                                      bt->resumeParseBuf.view(), false);
                bt->resumeParseBuf.clear();
              }
            } else {
              // connect_refuse: no context at the broker.
              bump(config_.name + ".dcr_connect_refuse");
              recordSpan(tc->shard->spans, bt->trace.traceId,
                         bt->trace.spanId, bt->trace.parentId,
                         trace::SpanKind::kOriginDcrReconnect,
                         traceInstance_, bt->resumeStartNs, trace::nowNs(),
                         410);
              h2::HeaderList headers{{std::string(kHdrStatus), "410"}};
              tc->session->sendHeaders(bt->streamId, headers, true);
              bt->brokerConn->close({});
              tc->brokerTunnels.erase(bt->streamId);
            }
            return;
          }
          // Established tunnel: relay bytes to the edge.
          tc->session->sendData(bt->streamId, in.view(), false);
          in.clear();
        });
        bt->brokerConn->setCloseCallback([this, bt](std::error_code) {
          auto tc = bt->tc.lock();
          if (tc && !bt->closed) {
            bt->closed = true;
            tc->session->sendReset(bt->streamId);
            tc->brokerTunnels.erase(bt->streamId);
          }
        });
        bt->brokerConn->start();

        if (bt->resume) {
          // §4.2 step B2: re-attach to the user's broker context with a
          // resume CONNECT carrying the user-id.
          mqtt::Packet connect;
          connect.type = mqtt::PacketType::kConnect;
          connect.clientId = bt->userId;
          connect.cleanSession = false;
          Buffer out;
          mqtt::encode(connect, out);
          bt->brokerConn->send(out.readable());
        } else {
          bt->up = true;
          auto tcNow = bt->tc.lock();
          if (tcNow) {
            h2::HeaderList headers{{std::string(kHdrStatus), "200"}};
            tcNow->session->sendHeaders(bt->streamId, headers, false);
          }
          if (!bt->pendingToBroker.empty()) {
            bt->brokerConn->send(bt->pendingToBroker.readable());
            bt->pendingToBroker.clear();
          }
        }
      });
}

// ----------------------------------------- pass-through tunnels (ZDRTUN)

void Proxy::originOpenDirectTunnel(Shard& sh, const ConnectionPtr& conn,
                                   const std::string& userId, bool resume) {
  auto dt = std::make_shared<DirectTunnel>();
  dt->shard = &sh;
  dt->tunnelConn = conn;
  dt->userId = userId;
  dt->resume = resume;
  sh.directTunnels.insert(dt);
  directTunnelCount_.fetch_add(1, std::memory_order_acq_rel);
  if (resume) {
    bump(config_.name + ".dcr_reconnect_received");
  } else {
    bump(config_.name + ".mqtt_passthrough_opened");
  }

  // User bytes behind the preface pile up in conn's input buffer until
  // the broker leg is up; startRelayTo forwards them in order.
  conn->setDataCallback([](Buffer&) {});
  conn->setCloseCallback([this, dt](std::error_code) {
    originCloseDirectTunnel(dt);
  });

  const BackendRef* broker = originBrokerFor(userId);
  if (broker == nullptr) {
    bump(config_.name + ".err.no_broker");
    conn->close(std::make_error_code(std::errc::network_unreachable));
    return;
  }
  Connector::connect(
      *sh.loop, broker->addr,
      [this, dt](TcpSocket sock, std::error_code ec) {
        if (dt->closed || !dt->tunnelConn->open()) {
          return;
        }
        if (ec) {
          // A resume that cannot reach the broker is a refuse: the
          // edge keeps the old path until the draining origin dies.
          if (dt->resume) {
            bump(config_.name + ".dcr_connect_refuse");
            dt->tunnelConn->send(kTunnelGone);
            dt->tunnelConn->closeAfterFlush();
          } else {
            dt->tunnelConn->close(ec);
          }
          return;
        }
        fault::tagFd(sock.fd(), "origin.broker");
        dt->brokerConn = Connection::make(*dt->shard->loop, std::move(sock));
        dt->brokerConn->setCloseCallback([this, dt](std::error_code) {
          originCloseDirectTunnel(dt);
        });

        if (!dt->resume) {
          // Fresh tunnel: pure pass-through from byte zero. The user's
          // own CONNECT (queued behind the preface) opens the broker
          // session; its CONNACK flows back through the relay.
          dt->up = true;
          dt->brokerConn->start();
          dt->tunnelConn->startRelayTo(dt->brokerConn);
          dt->brokerConn->startRelayTo(dt->tunnelConn);
          return;
        }

        // DCR re-attach: complete the broker handshake privately; the
        // end user must never see it (§4.2). Only after connect_ack
        // does the connection pair flip into relay mode.
        dt->brokerConn->setDataCallback([this, dt](Buffer& in) {
          if (dt->closed || dt->up) {
            return;  // relay mode handles established traffic
          }
          dt->resumeParseBuf.append(in.readable());
          in.clear();
          bool malformed = false;
          auto pkt = mqtt::decode(dt->resumeParseBuf, malformed);
          if (malformed) {
            bump(config_.name + ".dcr_connect_refuse");
            dt->tunnelConn->send(kTunnelGone);
            dt->tunnelConn->closeAfterFlush();
            dt->brokerConn->close({});
            return;
          }
          if (!pkt) {
            return;
          }
          if (pkt->type == mqtt::PacketType::kConnack &&
              pkt->returnCode == mqtt::kConnAccepted &&
              pkt->sessionPresent) {
            bump(config_.name + ".dcr_connect_ack");
            dt->up = true;
            dt->tunnelConn->send(kTunnelOk);
            // Publishes that followed the CONNACK precede the relay.
            if (!dt->resumeParseBuf.empty()) {
              dt->tunnelConn->send(dt->resumeParseBuf.readable());
              dt->resumeParseBuf.clear();
            }
            dt->tunnelConn->startRelayTo(dt->brokerConn);
            dt->brokerConn->startRelayTo(dt->tunnelConn);
          } else {
            bump(config_.name + ".dcr_connect_refuse");
            dt->tunnelConn->send(kTunnelGone);
            dt->tunnelConn->closeAfterFlush();
            dt->brokerConn->close({});
          }
        });
        dt->brokerConn->start();
        mqtt::Packet connect;
        connect.type = mqtt::PacketType::kConnect;
        connect.clientId = dt->userId;
        connect.cleanSession = false;
        Buffer out;
        mqtt::encode(connect, out);
        dt->brokerConn->send(out.readable());
      });
}

void Proxy::originCloseDirectTunnel(const std::shared_ptr<DirectTunnel>& dt) {
  if (dt->closed) {
    return;
  }
  dt->closed = true;
  if (dt->tunnelConn && dt->tunnelConn->open()) {
    dt->tunnelConn->close(std::make_error_code(std::errc::connection_reset));
  }
  if (dt->brokerConn && dt->brokerConn->open()) {
    dt->brokerConn->close({});
  }
  if (dt->shard->directTunnels.erase(dt) > 0) {
    directTunnelCount_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

}  // namespace zdr::proxygen
