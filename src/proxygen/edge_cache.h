// Edge response cache (the Direct-Server-Return serving path of §2.2:
// "for cache-able content (e.g., web, videos etc.) it responds to the
// user" directly at the Edge).
//
// Capacity-bounded LRU with per-entry TTL, on the shared LruMap
// recency mechanics (netcore/lru_map.h).
#pragma once

#include <mutex>
#include <optional>
#include <string>

#include "http/message.h"
#include "netcore/event_loop.h"
#include "netcore/lru_map.h"

namespace zdr::proxygen {

class EdgeCache {
 public:
  explicit EdgeCache(size_t capacity = 1024, Duration ttl = Duration{30000})
      : capacity_(capacity), ttl_(ttl) {}

  std::optional<http::Response> get(const std::string& key) {
    std::lock_guard<std::mutex> lock(mutex_);
    Entry* e = lru_.touch(key);
    if (e == nullptr) {
      ++misses_;
      return std::nullopt;
    }
    if (Clock::now() - e->insertedAt > ttl_) {
      lru_.erase(key);
      ++expirations_;
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    return e->response;
  }

  void put(const std::string& key, http::Response response) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (Entry* e = lru_.touch(key)) {
      e->response = std::move(response);
      e->insertedAt = Clock::now();
      return;
    }
    if (lru_.size() >= capacity_ && lru_.evictOldest()) {
      ++evictions_;
    }
    lru_.insertFront(key, Entry{std::move(response), Clock::now()});
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    lru_.clear();
  }

  [[nodiscard]] size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return lru_.size();
  }
  [[nodiscard]] uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
  }
  [[nodiscard]] uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
  }
  [[nodiscard]] uint64_t evictions() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
  }
  [[nodiscard]] uint64_t expirations() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return expirations_;
  }

 private:
  struct Entry {
    http::Response response;
    TimePoint insertedAt;
  };

  // Edge workers share one cache (a per-shard cache would cut the hit
  // rate by the worker count for hot keys).
  mutable std::mutex mutex_;
  size_t capacity_;
  Duration ttl_;
  LruMap<std::string, Entry> lru_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t expirations_ = 0;
};

}  // namespace zdr::proxygen
