// Edge response cache (the Direct-Server-Return serving path of §2.2:
// "for cache-able content (e.g., web, videos etc.) it responds to the
// user" directly at the Edge).
//
// Capacity-bounded LRU with per-entry TTL.
#pragma once

#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "http/message.h"
#include "netcore/event_loop.h"

namespace zdr::proxygen {

class EdgeCache {
 public:
  explicit EdgeCache(size_t capacity = 1024, Duration ttl = Duration{30000})
      : capacity_(capacity), ttl_(ttl) {}

  std::optional<http::Response> get(const std::string& key) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return std::nullopt;
    }
    if (Clock::now() - it->second->insertedAt > ttl_) {
      order_.erase(it->second);
      index_.erase(it);
      ++expirations_;
      ++misses_;
      return std::nullopt;
    }
    order_.splice(order_.begin(), order_, it->second);
    ++hits_;
    return it->second->response;
  }

  void put(const std::string& key, http::Response response) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->response = std::move(response);
      it->second->insertedAt = Clock::now();
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (index_.size() >= capacity_ && !order_.empty()) {
      index_.erase(order_.back().key);
      order_.pop_back();
      ++evictions_;
    }
    order_.push_front(Entry{key, std::move(response), Clock::now()});
    index_[key] = order_.begin();
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    order_.clear();
    index_.clear();
  }

  [[nodiscard]] size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return index_.size();
  }
  [[nodiscard]] uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
  }
  [[nodiscard]] uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
  }
  [[nodiscard]] uint64_t evictions() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
  }
  [[nodiscard]] uint64_t expirations() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return expirations_;
  }

 private:
  struct Entry {
    std::string key;
    http::Response response;
    TimePoint insertedAt;
  };

  // Edge workers share one cache (a per-shard cache would cut the hit
  // rate by the worker count for hot keys).
  mutable std::mutex mutex_;
  size_t capacity_;
  Duration ttl_;
  std::list<Entry> order_;  // MRU first
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t expirations_ = 0;
};

}  // namespace zdr::proxygen
