#include "proxygen/upstream_pool.h"

#include "netcore/fault_injection.h"

namespace zdr::proxygen {

UpstreamPool::UpstreamPool(EventLoop& loop, Options opts,
                           MetricsRegistry* metrics)
    : loop_(loop), opts_(opts), metrics_(metrics) {
  reapTimer_ = loop_.runEvery(Duration{1000}, [this] { reapIdle(); });
}

UpstreamPool::~UpstreamPool() {
  loop_.cancelTimer(reapTimer_);
  closeAll();
}

void UpstreamPool::acquire(const std::string& name, const SocketAddr& addr,
                           Ready cb) {
  auto it = idle_.find(name);
  while (it != idle_.end() && !it->second.empty()) {
    IdleEntry entry = std::move(it->second.front());
    it->second.pop_front();
    if (!entry.conn->open()) {
      continue;  // died while parked; try the next one
    }
    // Hand out clean: whatever sentinel callbacks we parked it with
    // must not fire into the new owner's traffic.
    entry.conn->setDataCallback(nullptr);
    entry.conn->setCloseCallback(nullptr);
    ++hits_;
    if (metrics_) {
      metrics_->counter("pool.hits").add();
    }
    cb(std::move(entry.conn), {}, /*reused=*/true);
    return;
  }

  ++misses_;
  if (metrics_) {
    metrics_->counter("pool.misses").add();
  }
  Connector::connect(
      loop_, addr,
      [this, cb](TcpSocket sock, std::error_code ec) {
        if (ec) {
          cb(nullptr, ec, false);
          return;
        }
        if (!opts_.faultTag.empty()) {
          fault::tagFd(sock.fd(), opts_.faultTag);
        }
        cb(Connection::make(loop_, std::move(sock)), {}, false);
      },
      opts_.connectTimeout);
}

void UpstreamPool::release(const std::string& name, ConnectionPtr conn) {
  if (!conn || !conn->open()) {
    return;
  }
  auto& queue = idle_[name];
  if (queue.size() >= opts_.maxIdlePerBackend) {
    conn->close({});
    return;
  }
  // Parked sentinel: any byte or close while idle invalidates the
  // connection (server went away, or protocol desync).
  ConnectionPtr raw = conn;
  conn->setDataCallback([raw](Buffer& in) {
    in.clear();
    raw->close({});
  });
  conn->setCloseCallback([this, name, raw](std::error_code) {
    auto it = idle_.find(name);
    if (it == idle_.end()) {
      return;
    }
    auto& q = it->second;
    for (auto qi = q.begin(); qi != q.end(); ++qi) {
      if (qi->conn == raw) {
        q.erase(qi);
        break;
      }
    }
  });
  queue.push_back(IdleEntry{std::move(conn), Clock::now()});
}

void UpstreamPool::closeAll() {
  auto all = std::move(idle_);
  idle_.clear();
  for (auto& [name, queue] : all) {
    for (auto& entry : queue) {
      entry.conn->setCloseCallback(nullptr);
      entry.conn->close({});
    }
  }
}

size_t UpstreamPool::idleCount(const std::string& name) const {
  auto it = idle_.find(name);
  return it == idle_.end() ? 0 : it->second.size();
}

void UpstreamPool::reapIdle() {
  TimePoint now = Clock::now();
  for (auto& [name, queue] : idle_) {
    while (!queue.empty() &&
           now - queue.front().since > opts_.idleTimeout) {
      auto conn = queue.front().conn;
      queue.pop_front();
      conn->setCloseCallback(nullptr);
      conn->close({});
    }
  }
}

}  // namespace zdr::proxygen
