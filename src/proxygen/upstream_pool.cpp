#include "proxygen/upstream_pool.h"

#include "netcore/fault_injection.h"

namespace zdr::proxygen {

UpstreamPool::UpstreamPool(EventLoop& loop, Options opts,
                           MetricsRegistry* metrics)
    : loop_(loop), opts_(opts), metrics_(metrics) {
  reapTimer_ = loop_.runEvery(Duration{1000}, [this] { reapIdle(); });
}

UpstreamPool::~UpstreamPool() {
  loop_.cancelTimer(reapTimer_);
  closeAll();
}

void UpstreamPool::acquire(const std::string& name, const SocketAddr& addr,
                           Ready cb) {
  if (opts_.breakerEnabled && !allowRequest(name)) {
    // Ejected backend: fail fast so the caller fails over immediately
    // instead of burning a connect timeout on a known-bad host.
    bump("pool.breaker_rejected");
    cb(nullptr, std::make_error_code(std::errc::connection_refused), false);
    return;
  }
  auto it = idle_.find(name);
  while (it != idle_.end() && !it->second.empty()) {
    IdleEntry entry = std::move(it->second.front());
    it->second.pop_front();
    if (!entry.conn->open()) {
      continue;  // died while parked; try the next one
    }
    // Hand out clean: whatever sentinel callbacks we parked it with
    // must not fire into the new owner's traffic.
    entry.conn->setDataCallback(nullptr);
    entry.conn->setCloseCallback(nullptr);
    ++hits_;
    if (metrics_) {
      metrics_->counter("pool.hits").add();
    }
    cb(std::move(entry.conn), {}, /*reused=*/true);
    return;
  }

  ++misses_;
  if (metrics_) {
    metrics_->counter("pool.misses").add();
  }
  Connector::connect(
      loop_, addr,
      [this, name, cb](TcpSocket sock, std::error_code ec) {
        if (ec) {
          recordFailure(name);
          cb(nullptr, ec, false);
          return;
        }
        if (!opts_.faultTag.empty()) {
          fault::tagFd(sock.fd(), opts_.faultTag);
          fault::tagFd(sock.fd(), opts_.faultTag + "." + name);
        }
        cb(Connection::make(loop_, std::move(sock)), {}, false);
      },
      opts_.connectTimeout);
}

void UpstreamPool::recordSuccess(const std::string& name) {
  if (!opts_.breakerEnabled) {
    return;
  }
  auto it = breakers_.find(name);
  if (it == breakers_.end()) {
    return;  // nothing to reset, and no point tracking pure successes
  }
  BreakerState& st = it->second;
  maybeResetWindow(st, Clock::now());
  ++st.windowSuccesses;
  st.consecutiveFails = 0;
  if (st.phase != BreakerPhase::kClosed) {
    st.phase = BreakerPhase::kClosed;
    st.openCount = 0;
    st.windowSuccesses = 0;
    st.windowFailures = 0;
    bump("pool.breaker_close");
    if (metrics_ != nullptr && !opts_.instanceName.empty()) {
      metrics_->timeline().end(opts_.instanceName, "breaker_open." + name);
    }
  }
}

void UpstreamPool::recordFailure(const std::string& name) {
  if (!opts_.breakerEnabled) {
    return;
  }
  TimePoint now = Clock::now();
  BreakerState& st = breakers_[name];
  if (st.windowStart == TimePoint{}) {
    st.windowStart = now;
  }
  maybeResetWindow(st, now);
  ++st.windowFailures;
  ++st.consecutiveFails;
  if (st.phase == BreakerPhase::kHalfOpen) {
    trip(name, st);  // probe failed: back off harder
    return;
  }
  if (st.phase != BreakerPhase::kClosed) {
    return;
  }
  uint64_t total = st.windowSuccesses + st.windowFailures;
  bool rateTrip =
      total >= static_cast<uint64_t>(opts_.breakerMinSamples) &&
      static_cast<double>(st.windowFailures) >=
          opts_.breakerErrorRate * static_cast<double>(total);
  if (st.consecutiveFails >= opts_.breakerConsecutiveFailures || rateTrip) {
    trip(name, st);
  }
}

bool UpstreamPool::breakerOpen(const std::string& name) const {
  auto it = breakers_.find(name);
  return it != breakers_.end() &&
         it->second.phase == BreakerPhase::kOpen &&
         Clock::now() < it->second.openUntil;
}

bool UpstreamPool::allowRequest(const std::string& name) {
  auto it = breakers_.find(name);
  if (it == breakers_.end()) {
    return true;
  }
  BreakerState& st = it->second;
  TimePoint now = Clock::now();
  switch (st.phase) {
    case BreakerPhase::kClosed:
      return true;
    case BreakerPhase::kOpen:
      if (now < st.openUntil) {
        return false;
      }
      st.phase = BreakerPhase::kHalfOpen;
      st.lastProbe = now;
      bump("pool.breaker_half_open");
      return true;
    case BreakerPhase::kHalfOpen:
      // One probe per backoff-base interval: a probe whose outcome
      // never comes back (e.g. its request got a 379 hand-back) must
      // not wedge the breaker half-open forever.
      if (now - st.lastProbe >= opts_.breakerBackoffBase) {
        st.lastProbe = now;
        return true;
      }
      return false;
  }
  return true;
}

void UpstreamPool::trip(const std::string& name, BreakerState& st) {
  ++st.openCount;
  auto backoff = opts_.breakerBackoffBase;
  for (int i = 1; i < st.openCount && backoff < opts_.breakerBackoffMax;
       ++i) {
    backoff *= 2;
  }
  if (backoff > opts_.breakerBackoffMax) {
    backoff = opts_.breakerBackoffMax;
  }
  st.phase = BreakerPhase::kOpen;
  st.openUntil = Clock::now() + backoff;
  st.consecutiveFails = 0;
  st.windowSuccesses = 0;
  st.windowFailures = 0;
  st.windowStart = Clock::now();
  bump("pool.breaker_open");
  // Timeline window, opened on the FIRST trip of an ejection episode
  // only (a failed half-open probe re-trips while the window from the
  // original trip is still open); recordSuccess closes it.
  if (st.openCount == 1 && metrics_ != nullptr &&
      !opts_.instanceName.empty()) {
    metrics_->timeline().begin(opts_.instanceName, "breaker_open." + name);
  }
}

void UpstreamPool::maybeResetWindow(BreakerState& st, TimePoint now) {
  if (now - st.windowStart > opts_.breakerWindow) {
    st.windowStart = now;
    st.windowSuccesses = 0;
    st.windowFailures = 0;
  }
}

void UpstreamPool::bump(const char* name) {
  if (metrics_) {
    metrics_->counter(name).add();
  }
}

void UpstreamPool::release(const std::string& name, ConnectionPtr conn) {
  if (!conn || !conn->open()) {
    return;
  }
  auto& queue = idle_[name];
  if (queue.size() >= opts_.maxIdlePerBackend) {
    conn->close({});
    return;
  }
  // Parked sentinel: any byte or close while idle invalidates the
  // connection (server went away, or protocol desync).
  ConnectionPtr raw = conn;
  conn->setDataCallback([raw](Buffer& in) {
    in.clear();
    raw->close({});
  });
  conn->setCloseCallback([this, name, raw](std::error_code) {
    auto it = idle_.find(name);
    if (it == idle_.end()) {
      return;
    }
    auto& q = it->second;
    for (auto qi = q.begin(); qi != q.end(); ++qi) {
      if (qi->conn == raw) {
        q.erase(qi);
        break;
      }
    }
  });
  queue.push_back(IdleEntry{std::move(conn), Clock::now()});
}

void UpstreamPool::closeAll() {
  auto all = std::move(idle_);
  idle_.clear();
  for (auto& [name, queue] : all) {
    for (auto& entry : queue) {
      entry.conn->setCloseCallback(nullptr);
      entry.conn->close({});
    }
  }
}

size_t UpstreamPool::idleCount(const std::string& name) const {
  auto it = idle_.find(name);
  return it == idle_.end() ? 0 : it->second.size();
}

void UpstreamPool::reapIdle() {
  TimePoint now = Clock::now();
  for (auto& [name, queue] : idle_) {
    while (!queue.empty() &&
           now - queue.front().since > opts_.idleTimeout) {
      auto conn = queue.front().conn;
      queue.pop_front();
      conn->setCloseCallback(nullptr);
      conn->close({});
    }
  }
}

}  // namespace zdr::proxygen
