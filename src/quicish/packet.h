// Wire format of the conn-ID datagram protocol ("quicish").
//
// A deliberately small stand-in for QUIC: every packet carries a
// 64-bit connection ID in the clear, which is the one property the
// paper's user-space UDP routing depends on — "decisions for
// user-space routing of packets are made based on information present
// in each UDP packet, such as connection ID" (§4.1).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "netcore/buffer.h"
#include "netcore/socket_addr.h"

namespace zdr::quicish {

enum class PacketType : uint8_t {
  kInitial = 0,  // opens a flow
  kData = 1,
  kAck = 2,       // server → client: echoes seq; carries server instance id
  kReset = 3,     // stateless reset: server has no state for this flow
  kClose = 4,
  kForwarded = 5, // inter-process wrapper used by user-space routing
};

struct Packet {
  PacketType type = PacketType::kData;
  uint64_t connId = 0;
  uint32_t seq = 0;
  // kAck: id of the serving instance; lets experiments attribute replies.
  uint32_t instanceId = 0;
  std::string payload;

  // kForwarded only: the original client source address, preserved so
  // the draining instance can reply to the right peer.
  uint32_t origIp = 0;
  uint16_t origPort = 0;
};

// Serializes into `out` (appends).
void encode(const Packet& p, Buffer& out);
[[nodiscard]] std::string encodeToString(const Packet& p);

// Parses one datagram (datagrams are never fragmented across reads).
std::optional<Packet> decode(std::span<const std::byte> datagram);

// Wraps `inner` (raw datagram bytes) for forwarding to the draining
// process, preserving the original source address.
[[nodiscard]] std::string wrapForwarded(std::span<const std::byte> inner,
                                        const SocketAddr& origSource);
// Allocation-free variant for the batched forwarding path: appends the
// wrapper into `out`.
void wrapForwarded(std::span<const std::byte> inner,
                   const SocketAddr& origSource, Buffer& out);
// Unwrap; returns inner bytes + original source.
struct ForwardedPacket {
  std::string inner;
  SocketAddr origSource;
};
std::optional<ForwardedPacket> unwrapForwarded(
    std::span<const std::byte> datagram);

}  // namespace zdr::quicish
