#include "quicish/client.h"


namespace zdr::quicish {

ClientFlow::ClientFlow(EventLoop& loop, const SocketAddr& serverVip,
                       uint64_t connId)
    : loop_(loop),
      server_(serverVip),
      connId_(connId),
      sock_(SocketAddr::loopback(0)) {
  loop_.addFd(sock_.fd(), kEvRead, [this](uint32_t) { onReadable(); });
}

ClientFlow::~ClientFlow() {
  if (sock_.valid() && loop_.watching(sock_.fd())) {
    loop_.removeFd(sock_.fd());
  }
}

void ClientFlow::send(const Packet& p) {
  std::string bytes = encodeToString(p);
  std::error_code ec;
  sock_.sendTo(std::as_bytes(std::span(bytes.data(), bytes.size())), server_,
               ec);
}

void ClientFlow::sendInitial() {
  Packet p;
  p.type = PacketType::kInitial;
  p.connId = connId_;
  p.seq = seq_++;
  send(p);
}

void ClientFlow::sendData(size_t payloadBytes) {
  Packet p;
  p.type = PacketType::kData;
  p.connId = connId_;
  p.seq = seq_++;
  p.payload.assign(payloadBytes, 'x');
  send(p);
}

void ClientFlow::sendClose() {
  Packet p;
  p.type = PacketType::kClose;
  p.connId = connId_;
  send(p);
}

void ClientFlow::onReadable() {
  std::error_code ec;
  while (!ec) {
    sock_.recvMany(rxBatch_, ec);
    for (size_t i = 0; i < rxBatch_.size(); ++i) {
      auto pkt = decode(rxBatch_.data(i));
      if (!pkt) {
        continue;
      }
      if (pkt->type == PacketType::kAck) {
        ++acks_;
        lastAckInstance_ = pkt->instanceId;
      } else if (pkt->type == PacketType::kReset) {
        ++resets_;
      }
    }
  }
}

}  // namespace zdr::quicish
