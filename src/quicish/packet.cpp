#include "quicish/packet.h"

namespace zdr::quicish {

namespace {
constexpr size_t kHeaderLen = 1 + 8 + 4 + 4;  // type + connId + seq + instId
}

void encode(const Packet& p, Buffer& out) {
  out.appendU8(static_cast<uint8_t>(p.type));
  out.appendU64(p.connId);
  out.appendU32(p.seq);
  out.appendU32(p.instanceId);
  out.append(p.payload);
}

std::string encodeToString(const Packet& p) {
  Buffer buf;
  encode(p, buf);
  return std::string(buf.view());
}

std::optional<Packet> decode(std::span<const std::byte> datagram) {
  if (datagram.size() < kHeaderLen) {
    return std::nullopt;
  }
  Buffer buf;
  buf.append(datagram);
  Packet p;
  uint8_t type = buf.peekU8(0);
  if (type > static_cast<uint8_t>(PacketType::kForwarded)) {
    return std::nullopt;
  }
  p.type = static_cast<PacketType>(type);
  p.connId = buf.peekU64(1);
  p.seq = buf.peekU32(9);
  p.instanceId = buf.peekU32(13);
  p.payload.assign(buf.view().substr(kHeaderLen));
  return p;
}

std::string wrapForwarded(std::span<const std::byte> inner,
                          const SocketAddr& origSource) {
  Buffer buf;
  wrapForwarded(inner, origSource, buf);
  return std::string(buf.view());
}

void wrapForwarded(std::span<const std::byte> inner,
                   const SocketAddr& origSource, Buffer& out) {
  out.appendU8(static_cast<uint8_t>(PacketType::kForwarded));
  out.appendU32(origSource.ipHostOrder());
  out.appendU16(origSource.port());
  out.append(inner);
}

std::optional<ForwardedPacket> unwrapForwarded(
    std::span<const std::byte> datagram) {
  constexpr size_t kWrapLen = 1 + 4 + 2;
  if (datagram.size() < kWrapLen) {
    return std::nullopt;
  }
  Buffer buf;
  buf.append(datagram);
  if (buf.peekU8(0) != static_cast<uint8_t>(PacketType::kForwarded)) {
    return std::nullopt;
  }
  uint32_t ip = buf.peekU32(1);
  uint16_t port = buf.peekU16(5);
  ForwardedPacket fp;
  fp.inner.assign(buf.view().substr(kWrapLen));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(ip);
  sa.sin_port = htons(port);
  fp.origSource = SocketAddr(sa);
  return fp;
}

}  // namespace zdr::quicish
