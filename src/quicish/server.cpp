#include "quicish/server.h"

#include <sys/epoll.h>

#include <array>

#include "netcore/listener_group.h"

namespace zdr::quicish {

Server::Server(EventLoop& loop, const SocketAddr& vip, Options opts,
               MetricsRegistry* metrics)
    : loop_(loop), opts_(opts), metrics_(metrics), vip_(vip) {
  // Shared ring-bind helper (same one the TCP ListenerGroup path
  // uses): handles the port-0 resolve-then-rebind dance.
  vipSocks_ = bindUdpRing(vip, opts_.numWorkers);
  vip_ = vipSocks_.front().localAddr();
  setupForwardSocket();
  for (size_t i = 0; i < vipSocks_.size(); ++i) {
    registerVipSocket(i);
  }
}

Server::Server(EventLoop& loop, std::vector<FdGuard> vipSockets, Options opts,
               MetricsRegistry* metrics)
    : loop_(loop), opts_(opts), metrics_(metrics) {
  for (auto& fd : vipSockets) {
    detail::setNonBlocking(fd.get(), true);
    vipSocks_.push_back(UdpSocket::fromFd(std::move(fd)));
  }
  if (!vipSocks_.empty()) {
    vip_ = vipSocks_.front().localAddr();
  }
  setupForwardSocket();
  for (size_t i = 0; i < vipSocks_.size(); ++i) {
    registerVipSocket(i);
  }
}

Server::~Server() { shutdown(); }

void Server::setupForwardSocket() {
  forwardSock_ = UdpSocket(SocketAddr::loopback(0));
  loop_.addFd(forwardSock_.fd(), EPOLLIN,
              [this](uint32_t) { onForwardReadable(); });
}

void Server::registerVipSocket(size_t idx) {
  loop_.addFd(vipSocks_[idx].fd(), EPOLLIN,
              [this, idx](uint32_t) { onVipReadable(idx); });
}

std::vector<int> Server::vipSocketFds() const {
  std::vector<int> fds;
  fds.reserve(vipSocks_.size());
  for (const auto& s : vipSocks_) {
    fds.push_back(s.fd());
  }
  return fds;
}

void Server::enterDrain() {
  draining_ = true;
  // Stop reading the shared VIP sockets; the updated instance owns
  // them now. Keep the fds open: replies to our flows still go out on
  // them, exactly as the paper's draining process does.
  for (auto& s : vipSocks_) {
    if (s.valid() && loop_.watching(s.fd())) {
      loop_.removeFd(s.fd());
    }
  }
}

void Server::shutdown() {
  for (auto& s : vipSocks_) {
    if (s.valid()) {
      if (loop_.watching(s.fd())) {
        loop_.removeFd(s.fd());
      }
      s.close();
    }
  }
  vipSocks_.clear();
  if (forwardSock_.valid()) {
    if (loop_.watching(forwardSock_.fd())) {
      loop_.removeFd(forwardSock_.fd());
    }
    forwardSock_.close();
  }
}

void Server::bump(const char* name) {
  if (metrics_) {
    metrics_->counter(std::string("quicish.") + std::to_string(opts_.instanceId) +
                      "." + name)
        .add();
  }
}

void Server::onVipReadable(size_t idx) {
  std::array<std::byte, 2048> buf;
  while (true) {
    SocketAddr from;
    std::error_code ec;
    size_t n = vipSocks_[idx].recvFrom(buf, from, ec);
    if (ec) {
      return;  // EAGAIN or transient
    }
    processDatagram(std::span(buf.data(), n), from, idx);
  }
}

void Server::onForwardReadable() {
  std::array<std::byte, 2048> buf;
  while (true) {
    SocketAddr from;
    std::error_code ec;
    size_t n = forwardSock_.recvFrom(buf, from, ec);
    if (ec) {
      return;
    }
    auto fwd = unwrapForwarded(std::span(buf.data(), n));
    if (!fwd) {
      continue;
    }
    auto bytes = std::as_bytes(
        std::span(fwd->inner.data(), fwd->inner.size()));
    processDatagram(bytes, fwd->origSource, 0);
  }
}

void Server::processDatagram(std::span<const std::byte> data,
                             const SocketAddr& from, size_t viaSocket) {
  auto pkt = decode(data);
  if (!pkt) {
    return;
  }
  ++packetsProcessed_;
  bump("packets");

  switch (pkt->type) {
    case PacketType::kInitial: {
      if (draining_) {
        // A draining instance must not take new flows; this can only
        // be a forwarded stray. Reset it.
        Packet rst;
        rst.type = PacketType::kReset;
        rst.connId = pkt->connId;
        rst.instanceId = opts_.instanceId;
        reply(rst, from);
        return;
      }
      flows_[pkt->connId] = Flow{};
      Packet ack;
      ack.type = PacketType::kAck;
      ack.connId = pkt->connId;
      ack.seq = pkt->seq;
      ack.instanceId = opts_.instanceId;
      reply(ack, from);
      bump("flows_opened");
      break;
    }
    case PacketType::kData: {
      auto it = flows_.find(pkt->connId);
      if (it == flows_.end()) {
        // Packet for a flow we do not own: either user-space-route it
        // to the draining peer, or count a mis-route (Fig 2d / Fig 10).
        if (opts_.userSpaceRouting && haveForwardPeer_) {
          std::string wrapped = wrapForwarded(data, from);
          std::error_code ec;
          forwardSock_.sendTo(
              std::as_bytes(std::span(wrapped.data(), wrapped.size())),
              forwardPeer_, ec);
          ++forwardedCnt_;
          bump("forwarded");
          return;
        }
        ++misrouted_;
        bump("misrouted");
        Packet rst;
        rst.type = PacketType::kReset;
        rst.connId = pkt->connId;
        rst.seq = pkt->seq;
        rst.instanceId = opts_.instanceId;
        reply(rst, from);
        return;
      }
      it->second.lastSeq = pkt->seq;
      ++it->second.packets;
      Packet ack;
      ack.type = PacketType::kAck;
      ack.connId = pkt->connId;
      ack.seq = pkt->seq;
      ack.instanceId = opts_.instanceId;
      reply(ack, from);
      break;
    }
    case PacketType::kClose: {
      flows_.erase(pkt->connId);
      break;
    }
    default:
      break;
  }
  (void)viaSocket;
}

void Server::reply(const Packet& p, const SocketAddr& to) {
  std::string bytes = encodeToString(p);
  std::error_code ec;
  if (!vipSocks_.empty() && vipSocks_.front().valid()) {
    vipSocks_.front().sendTo(
        std::as_bytes(std::span(bytes.data(), bytes.size())), to, ec);
  } else {
    forwardSock_.sendTo(
        std::as_bytes(std::span(bytes.data(), bytes.size())), to, ec);
  }
}

}  // namespace zdr::quicish
