#include "quicish/server.h"


#include "netcore/listener_group.h"

namespace zdr::quicish {

Server::Server(EventLoop& loop, const SocketAddr& vip, Options opts,
               MetricsRegistry* metrics)
    : loop_(loop), opts_(opts), metrics_(metrics), vip_(vip) {
  // Shared ring-bind helper (same one the TCP ListenerGroup path
  // uses): handles the port-0 resolve-then-rebind dance.
  vipSocks_ = bindUdpRing(vip, opts_.numWorkers);
  vip_ = vipSocks_.front().localAddr();
  setupForwardSocket();
  for (size_t i = 0; i < vipSocks_.size(); ++i) {
    registerVipSocket(i);
  }
}

Server::Server(EventLoop& loop, std::vector<FdGuard> vipSockets, Options opts,
               MetricsRegistry* metrics)
    : loop_(loop), opts_(opts), metrics_(metrics) {
  for (auto& fd : vipSockets) {
    detail::setNonBlocking(fd.get(), true);
    vipSocks_.push_back(UdpSocket::fromFd(std::move(fd)));
  }
  if (!vipSocks_.empty()) {
    vip_ = vipSocks_.front().localAddr();
  }
  setupForwardSocket();
  for (size_t i = 0; i < vipSocks_.size(); ++i) {
    registerVipSocket(i);
  }
}

Server::~Server() { shutdown(); }

void Server::setupForwardSocket() {
  forwardSock_ = UdpSocket(SocketAddr::loopback(0));
  loop_.addFd(forwardSock_.fd(), kEvRead,
              [this](uint32_t) { onForwardReadable(); });
}

void Server::registerVipSocket(size_t idx) {
  loop_.addFd(vipSocks_[idx].fd(), kEvRead,
              [this, idx](uint32_t) { onVipReadable(idx); });
}

std::vector<int> Server::vipSocketFds() const {
  std::vector<int> fds;
  fds.reserve(vipSocks_.size());
  for (const auto& s : vipSocks_) {
    fds.push_back(s.fd());
  }
  return fds;
}

void Server::enterDrain() {
  draining_ = true;
  // Stop reading the shared VIP sockets; the updated instance owns
  // them now. Keep the fds open: replies to our flows still go out on
  // them, exactly as the paper's draining process does.
  for (auto& s : vipSocks_) {
    if (s.valid() && loop_.watching(s.fd())) {
      loop_.removeFd(s.fd());
    }
  }
}

void Server::shutdown() {
  for (auto& s : vipSocks_) {
    if (s.valid()) {
      if (loop_.watching(s.fd())) {
        loop_.removeFd(s.fd());
      }
      s.close();
    }
  }
  vipSocks_.clear();
  if (forwardSock_.valid()) {
    if (loop_.watching(forwardSock_.fd())) {
      loop_.removeFd(forwardSock_.fd());
    }
    forwardSock_.close();
  }
}

void Server::bump(const char* name) {
  if (metrics_) {
    metrics_->counter(std::string("quicish.") + std::to_string(opts_.instanceId) +
                      "." + name)
        .add();
  }
}

void Server::onVipReadable(size_t idx) {
  // Drain the socket a whole batch per syscall; replies and forwarded
  // strays stage into send batches flushed below (and on batch-full),
  // so a wakeup that moves N datagrams costs O(N / batch) syscalls.
  std::error_code ec;
  while (!ec) {
    vipSocks_[idx].recvMany(rxBatch_, ec);
    for (size_t i = 0; i < rxBatch_.size(); ++i) {
      processDatagram(rxBatch_.data(i), rxBatch_.from(i), idx);
    }
  }
  flushReplies();
  flushForwards();
  publishPoolGauges();
}

void Server::onForwardReadable() {
  std::error_code ec;
  while (!ec) {
    forwardSock_.recvMany(rxBatch_, ec);
    for (size_t i = 0; i < rxBatch_.size(); ++i) {
      auto fwd = unwrapForwarded(rxBatch_.data(i));
      if (!fwd) {
        continue;
      }
      auto bytes = std::as_bytes(
          std::span(fwd->inner.data(), fwd->inner.size()));
      processDatagram(bytes, fwd->origSource, 0);
    }
  }
  flushReplies();
  flushForwards();
  publishPoolGauges();
}

void Server::processDatagram(std::span<const std::byte> data,
                             const SocketAddr& from, size_t viaSocket) {
  auto pkt = decode(data);
  if (!pkt) {
    return;
  }
  ++packetsProcessed_;
  bump("packets");

  switch (pkt->type) {
    case PacketType::kInitial: {
      if (draining_) {
        // A draining instance must not take new flows; this can only
        // be a forwarded stray. Reset it.
        Packet rst;
        rst.type = PacketType::kReset;
        rst.connId = pkt->connId;
        rst.instanceId = opts_.instanceId;
        reply(rst, from);
        return;
      }
      flows_[pkt->connId] = Flow{};
      Packet ack;
      ack.type = PacketType::kAck;
      ack.connId = pkt->connId;
      ack.seq = pkt->seq;
      ack.instanceId = opts_.instanceId;
      reply(ack, from);
      bump("flows_opened");
      break;
    }
    case PacketType::kData: {
      auto it = flows_.find(pkt->connId);
      if (it == flows_.end()) {
        // Packet for a flow we do not own: either user-space-route it
        // to the draining peer, or count a mis-route (Fig 2d / Fig 10).
        if (opts_.userSpaceRouting && haveForwardPeer_) {
          // Stage the wrapped stray; a takeover-era drain forwards a
          // whole batch of misrouted packets in one sendmmsg.
          if (forwardBatch_.full()) {
            flushForwards();
          }
          encodeBuf_.clear();
          wrapForwarded(data, from, encodeBuf_);
          forwardBatch_.push(encodeBuf_.readable(), forwardPeer_);
          ++forwardedCnt_;
          bump("forwarded");
          return;
        }
        ++misrouted_;
        bump("misrouted");
        Packet rst;
        rst.type = PacketType::kReset;
        rst.connId = pkt->connId;
        rst.seq = pkt->seq;
        rst.instanceId = opts_.instanceId;
        reply(rst, from);
        return;
      }
      it->second.lastSeq = pkt->seq;
      ++it->second.packets;
      Packet ack;
      ack.type = PacketType::kAck;
      ack.connId = pkt->connId;
      ack.seq = pkt->seq;
      ack.instanceId = opts_.instanceId;
      reply(ack, from);
      break;
    }
    case PacketType::kClose: {
      flows_.erase(pkt->connId);
      break;
    }
    default:
      break;
  }
  (void)viaSocket;
}

void Server::reply(const Packet& p, const SocketAddr& to) {
  if (replyBatch_.full()) {
    flushReplies();
  }
  encodeBuf_.clear();
  encode(p, encodeBuf_);
  replyBatch_.push(encodeBuf_.readable(), to);
}

void Server::flushReplies() {
  if (replyBatch_.empty()) {
    return;
  }
  std::error_code ec;
  // Replies go out on a shared VIP socket while we hold one (a
  // draining instance keeps doing so, per §4.1), else the host-local
  // forward socket.
  if (!vipSocks_.empty() && vipSocks_.front().valid()) {
    vipSocks_.front().sendMany(replyBatch_, ec);
  } else {
    forwardSock_.sendMany(replyBatch_, ec);
  }
}

void Server::flushForwards() {
  if (forwardBatch_.empty()) {
    return;
  }
  std::error_code ec;
  forwardSock_.sendMany(forwardBatch_, ec);
}

void Server::publishPoolGauges() {
  if (!metrics_) {
    return;
  }
  auto s = pool_.stats();
  std::string prefix =
      "quicish." + std::to_string(opts_.instanceId) + ".pool_";
  metrics_->gauge(prefix + "hits").set(static_cast<double>(s.hits));
  metrics_->gauge(prefix + "misses").set(static_cast<double>(s.misses));
  metrics_->gauge(prefix + "outstanding")
      .set(static_cast<double>(s.outstanding));
}

}  // namespace zdr::quicish
