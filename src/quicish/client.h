// Quicish client flow.
//
// Each flow owns its own UDP source port (so the kernel's REUSEPORT
// 4-tuple hash spreads flows across server worker sockets, as in
// production) and a fixed 64-bit connection ID.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "netcore/buffer_pool.h"
#include "netcore/event_loop.h"
#include "netcore/socket.h"
#include "netcore/udp_batch.h"
#include "quicish/packet.h"

namespace zdr::quicish {

class ClientFlow {
 public:
  ClientFlow(EventLoop& loop, const SocketAddr& serverVip, uint64_t connId);
  ~ClientFlow();
  ClientFlow(const ClientFlow&) = delete;
  ClientFlow& operator=(const ClientFlow&) = delete;

  void sendInitial();
  void sendData(size_t payloadBytes = 64);
  void sendClose();

  [[nodiscard]] uint64_t connId() const noexcept { return connId_; }
  [[nodiscard]] uint64_t acks() const noexcept { return acks_; }
  [[nodiscard]] uint64_t resets() const noexcept { return resets_; }
  [[nodiscard]] uint32_t lastAckInstance() const noexcept {
    return lastAckInstance_;
  }
  [[nodiscard]] uint32_t seq() const noexcept { return seq_; }

 private:
  void onReadable();
  void send(const Packet& p);

  EventLoop& loop_;
  SocketAddr server_;
  uint64_t connId_;
  UdpSocket sock_;
  // Small per-flow pool (a flow sees at most a handful of in-flight
  // replies); pool before batch so handles release into a live pool.
  BufferPool pool_{BufferPool::kDefaultBufSize, 8};
  RecvBatch rxBatch_{pool_, 8};
  uint32_t seq_ = 0;
  uint64_t acks_ = 0;
  uint64_t resets_ = 0;
  uint32_t lastAckInstance_ = 0;
};

}  // namespace zdr::quicish
