// Quicish UDP server instance with SO_REUSEPORT workers, flow table,
// and the two restart paths the paper contrasts:
//
//  * naive restart — the new instance binds *fresh* REUSEPORT sockets
//    on the same VIP, perturbing the kernel's socket ring and
//    mis-routing packets of established flows (Fig 2d), and
//  * Socket Takeover — the new instance adopts the old instance's
//    socket fds (ring unchanged) and user-space-routes packets of
//    flows it does not own to the draining instance over a
//    pre-configured host-local address (§4.1, Fig 10).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "metrics/metrics.h"
#include "netcore/buffer_pool.h"
#include "netcore/event_loop.h"
#include "netcore/fd_guard.h"
#include "netcore/socket.h"
#include "netcore/udp_batch.h"
#include "quicish/packet.h"

namespace zdr::quicish {

class Server {
 public:
  struct Options {
    uint32_t instanceId = 0;
    size_t numWorkers = 4;       // REUSEPORT sockets on the VIP
    // Enables conn-ID user-space routing of unknown-flow packets to
    // the draining peer instance (set via setForwardPeer).
    bool userSpaceRouting = false;
  };

  // Fresh bind on `vip` (REUSEPORT so a second instance can coexist).
  Server(EventLoop& loop, const SocketAddr& vip, Options opts,
         MetricsRegistry* metrics = nullptr);
  // Socket Takeover: adopt already-open VIP sockets.
  Server(EventLoop& loop, std::vector<FdGuard> vipSockets, Options opts,
         MetricsRegistry* metrics = nullptr);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Raw fds of the VIP sockets (for SCM_RIGHTS export). Ownership stays
  // here; the receiving process dup()s them.
  [[nodiscard]] std::vector<int> vipSocketFds() const;

  // Drain mode: stop reading the shared VIP sockets (the updated
  // instance now consumes them) but keep processing flows delivered to
  // the host-local forward address, and keep replying on the shared
  // sockets.
  void enterDrain();

  // Where peers should user-space-forward packets for our flows.
  [[nodiscard]] SocketAddr forwardAddr() const {
    return forwardSock_.localAddr();
  }
  // Configure the draining peer to forward unknown flows to.
  void setForwardPeer(const SocketAddr& addr) {
    forwardPeer_ = addr;
    haveForwardPeer_ = true;
  }

  // Closes everything.
  void shutdown();

  [[nodiscard]] const SocketAddr& vip() const noexcept { return vip_; }
  [[nodiscard]] size_t flowCount() const noexcept { return flows_.size(); }
  [[nodiscard]] uint64_t packetsProcessed() const noexcept {
    return packetsProcessed_;
  }
  [[nodiscard]] uint64_t misrouted() const noexcept { return misrouted_; }
  [[nodiscard]] uint64_t forwarded() const noexcept { return forwardedCnt_; }

 private:
  struct Flow {
    uint32_t lastSeq = 0;
    uint64_t packets = 0;
  };

  void setupForwardSocket();
  void registerVipSocket(size_t idx);
  void onVipReadable(size_t idx);
  void onForwardReadable();
  // Processes one datagram arriving on VIP socket `idx` from `from`.
  void processDatagram(std::span<const std::byte> data,
                       const SocketAddr& from, size_t viaSocket);
  void reply(const Packet& p, const SocketAddr& to);
  // Flush staged replies / user-space-forwarded strays (one sendmmsg
  // each); called when a batch fills and at the end of each drain.
  void flushReplies();
  void flushForwards();
  void publishPoolGauges();
  void bump(const char* name);

  EventLoop& loop_;
  Options opts_;
  MetricsRegistry* metrics_;
  SocketAddr vip_;
  // Batched datagram plane: the pool must be declared before the
  // batches, whose buffer handles release into it on destruction.
  BufferPool pool_;
  RecvBatch rxBatch_{pool_};
  SendBatch replyBatch_{pool_};
  SendBatch forwardBatch_{pool_};
  Buffer encodeBuf_;  // per-reply scratch, reused across packets
  std::vector<UdpSocket> vipSocks_;
  UdpSocket forwardSock_;  // host-local address for user-space routing
  SocketAddr forwardPeer_{};
  bool haveForwardPeer_ = false;
  bool draining_ = false;
  std::unordered_map<uint64_t, Flow> flows_;
  uint64_t packetsProcessed_ = 0;
  uint64_t misrouted_ = 0;
  uint64_t forwardedCnt_ = 0;
};

}  // namespace zdr::quicish
