// Katran-model L4 load balancer (userspace reproduction).
//
// Accepts flows on a VIP and forwards them to L7 backends chosen by
// consistent hashing over the *healthy* set, optionally pinned by the
// LRU connection table so momentary health flaps do not re-route
// established flows (§5.1). Operates at connection granularity — the
// userspace analogue of Katran's per-packet XDP forwarding.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "l4lb/conn_table.h"
#include "l4lb/consistent_hash.h"
#include "l4lb/health.h"
#include "metrics/metrics.h"
#include "netcore/connection.h"

namespace zdr::l4lb {

class L4Balancer {
 public:
  enum class HashKind : uint8_t { kMaglev, kRing };

  struct Options {
    HashKind hash = HashKind::kMaglev;
    bool useConnTable = true;
    size_t connTableCapacity = 4096;
    HealthChecker::Options health{};
  };

  L4Balancer(EventLoop& loop, const SocketAddr& vip,
             std::vector<BackendTarget> backends, Options opts,
             MetricsRegistry* metrics = nullptr);
  ~L4Balancer();
  L4Balancer(const L4Balancer&) = delete;
  L4Balancer& operator=(const L4Balancer&) = delete;

  [[nodiscard]] SocketAddr vip() const { return acceptor_->localAddr(); }
  [[nodiscard]] HealthChecker& health() noexcept { return *health_; }
  [[nodiscard]] ConnTable& connTable() noexcept { return connTable_; }
  [[nodiscard]] size_t activeFlows() const noexcept { return flows_.size(); }

  // Replaces the backend set (e.g. cluster resize in experiments).
  void setBackends(std::vector<BackendTarget> backends);

 private:
  struct Flow;

  void onAccept(TcpSocket sock);
  void rebuildHealthySet();
  [[nodiscard]] const BackendTarget* chooseBackend(uint64_t flowKey);
  void removeFlow(const std::shared_ptr<Flow>& flow);
  void bump(const std::string& name);

  EventLoop& loop_;
  Options opts_;
  MetricsRegistry* metrics_;
  std::vector<BackendTarget> backends_;
  std::unique_ptr<ConsistentHash> hash_;
  std::vector<BackendTarget> healthy_;
  ConnTable connTable_;
  std::unique_ptr<HealthChecker> health_;
  std::unique_ptr<Acceptor> acceptor_;
  std::set<std::shared_ptr<Flow>> flows_;
};

}  // namespace zdr::l4lb
