// Katran-model L4 load balancer (userspace reproduction).
//
// Accepts flows on a VIP and forwards them to L7 backends chosen by
// the hybrid router: Othello-style stateless lookup by default, with
// flows promoted into a per-worker flow-table shard during backend
// churn windows and ZDR takeover so momentary health flaps do not
// re-route established flows (§5.1). ZDR_NO_STATELESS_LOOKUP=1 falls
// back to consistent hashing plus an always-on LRU pin — the pre-PR
// behavior. Operates at connection granularity — the userspace
// analogue of Katran's per-packet XDP forwarding.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "l4lb/health.h"
#include "l4lb/hybrid_router.h"
#include "metrics/metrics.h"
#include "netcore/connection.h"

namespace zdr::l4lb {

class L4Balancer {
 public:
  enum class HashKind : uint8_t { kMaglev, kRing };

  struct Options {
    HashKind hash = HashKind::kMaglev;
    bool useConnTable = true;
    size_t connTableCapacity = 4096;
    // Flow-table shards (per-worker in a sharded deployment).
    size_t flowShards = 1;
    // Promotion stays armed this long after a backend-set change.
    Duration churnWindow = Duration{2000};
    HealthChecker::Options health{};
  };

  L4Balancer(EventLoop& loop, const SocketAddr& vip,
             std::vector<BackendTarget> backends, Options opts,
             MetricsRegistry* metrics = nullptr);
  ~L4Balancer();
  L4Balancer(const L4Balancer&) = delete;
  L4Balancer& operator=(const L4Balancer&) = delete;

  [[nodiscard]] SocketAddr vip() const { return acceptor_->localAddr(); }
  [[nodiscard]] HealthChecker& health() noexcept { return *health_; }
  [[nodiscard]] HybridRouter& router() noexcept { return router_; }
  [[nodiscard]] size_t activeFlows() const noexcept { return flows_.size(); }

  // Replaces the backend set (e.g. cluster resize in experiments).
  void setBackends(std::vector<BackendTarget> backends);

  // ZDR takeover hook: opens a churn window so flows arriving while
  // the serving processes swap get pinned.
  void noteTakeover();

 private:
  struct Flow;

  void onAccept(TcpSocket sock);
  void rebuildHealthySet();
  [[nodiscard]] const BackendTarget* chooseBackend(uint64_t flowKey);
  void removeFlow(const std::shared_ptr<Flow>& flow);
  void bump(const std::string& name);

  EventLoop& loop_;
  Options opts_;
  MetricsRegistry* metrics_;
  std::vector<BackendTarget> backends_;
  std::vector<BackendTarget> healthy_;
  HybridRouter router_;
  std::unique_ptr<HealthChecker> health_;
  std::unique_ptr<Acceptor> acceptor_;
  std::set<std::shared_ptr<Flow>> flows_;
  EventLoop::TimerId maintainTimer_ = 0;
};

}  // namespace zdr::l4lb
