#include "l4lb/health.h"

#include "http/codec.h"

namespace zdr::l4lb {

HealthChecker::HealthChecker(EventLoop& loop,
                             std::vector<BackendTarget> targets, Options opts,
                             ChangeCallback onChange, MetricsRegistry* metrics)
    : loop_(loop),
      opts_(opts),
      onChange_(std::move(onChange)),
      metrics_(metrics),
      alive_(std::make_shared<bool>(true)) {
  states_.reserve(targets.size());
  for (auto& t : targets) {
    states_.push_back(State{std::move(t), false, 0, 0, false});
  }
  timer_ = loop_.runEvery(opts_.interval, [this] { probeAll(); });
  probeAll();
}

HealthChecker::~HealthChecker() {
  *alive_ = false;
  loop_.cancelTimer(timer_);
  for (const auto& conn : std::set<ConnectionPtr>(probes_)) {
    conn->close({});
  }
  probes_.clear();
}

bool HealthChecker::isHealthy(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& s : states_) {
    if (s.target.name == name) {
      return s.healthy;
    }
  }
  return false;
}

std::vector<std::string> HealthChecker::healthyNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  for (const auto& s : states_) {
    if (s.healthy) {
      out.push_back(s.target.name);
    }
  }
  return out;
}

std::vector<BackendTarget> HealthChecker::healthyTargets() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<BackendTarget> out;
  for (const auto& s : states_) {
    if (s.healthy) {
      out.push_back(s.target);
    }
  }
  return out;
}

size_t HealthChecker::healthyCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t n = 0;
  for (const auto& s : states_) {
    if (s.healthy) {
      ++n;
    }
  }
  return n;
}

void HealthChecker::assumeAllHealthy() {
  bool changed = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& s : states_) {
      changed |= !s.healthy;
      s.healthy = true;
      s.consecutiveFails = 0;
    }
  }
  if (changed && onChange_) {
    onChange_();
  }
}

void HealthChecker::probeAll() {
  std::vector<size_t> due;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t i = 0; i < states_.size(); ++i) {
      if (!states_[i].probeInFlight) {
        due.push_back(i);
      }
    }
  }
  for (size_t i : due) {
    probeOne(i);
  }
}

void HealthChecker::probeOne(size_t idx) {
  SocketAddr addr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    states_[idx].probeInFlight = true;
    addr = states_[idx].target.addr;
  }
  auto alive = alive_;
  auto path = opts_.path;
  auto timeout = opts_.probeTimeout;
  Connector::connect(
      loop_, addr,
      [this, alive, idx, path, timeout](TcpSocket sock, std::error_code ec) {
        if (!*alive) {
          return;
        }
        if (ec) {
          onProbeResult(idx, false);
          return;
        }
        // Send the probe request and await a 200.
        auto conn = Connection::make(loop_, std::move(sock));
        if (*alive) {
          probes_.insert(conn);
        }
        auto parser = std::make_shared<http::ResponseParser>();
        auto done = std::make_shared<bool>(false);
        // The timeout timer would otherwise pin `conn` (through its own
        // copy of `finish`) until it expires, long after the verdict:
        // finish cancels it on the early-completion paths.
        auto timerId = std::make_shared<EventLoop::TimerId>(0);
        auto finish = [this, alive, idx, conn, done, timerId](bool pass) {
          if (*done) {
            return;
          }
          *done = true;
          if (*timerId != 0) {
            loop_.cancelTimer(*timerId);
          }
          conn->close({});
          if (*alive) {
            probes_.erase(conn);
            onProbeResult(idx, pass);
          }
        };
        conn->setDataCallback([parser, finish](Buffer& in) {
          auto st = parser->feed(in);
          if (st == http::ParseStatus::kError) {
            finish(false);
          } else if (parser->messageComplete()) {
            finish(parser->message().status == 200);
          }
        });
        conn->setCloseCallback(
            [finish](std::error_code) { finish(false); });
        // Arm the timeout before start(): if the transport dies inside
        // start()/send(), finish already has a real id to cancel.
        *timerId = loop_.runAfter(timeout, [finish] { finish(false); });
        conn->start();
        http::Request req;
        req.method = "GET";
        req.path = path;
        req.headers.set("Host", "healthcheck");
        Buffer out;
        http::serialize(req, out);
        conn->send(out.readable());
      },
      timeout);
}

void HealthChecker::onProbeResult(size_t idx, bool pass) {
  bool transitioned = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& s = states_[idx];
    s.probeInFlight = false;
    bool was = s.healthy;
    if (pass) {
      s.consecutiveFails = 0;
      ++s.consecutivePasses;
      if (!s.healthy && s.consecutivePasses >= opts_.riseThreshold) {
        s.healthy = true;
      }
    } else {
      s.consecutivePasses = 0;
      ++s.consecutiveFails;
      if (s.healthy && s.consecutiveFails >= opts_.failThreshold) {
        s.healthy = false;
      }
    }
    transitioned = was != s.healthy;
  }
  if (transitioned) {
    if (metrics_) {
      metrics_->counter("l4.hc_transitions").add();
    }
    if (onChange_) {
      onChange_();
    }
  }
}

}  // namespace zdr::l4lb
