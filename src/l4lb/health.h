// Active health checking of L7 backends.
//
// Katran continuously health-checks each L7LB (§4.1). A HardRestart
// instance fails its checks and is pulled from the routing ring; a
// Socket Takeover instance keeps answering them ("the new instance
// takes over the responsibility of responding to health-check probes",
// step F) so L4 never notices the release.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "metrics/metrics.h"
#include "netcore/connection.h"

namespace zdr::l4lb {

struct BackendTarget {
  std::string name;
  SocketAddr addr;
};

class HealthChecker {
 public:
  struct Options {
    Duration interval = Duration{200};
    Duration probeTimeout = Duration{500};
    int failThreshold = 2;  // consecutive fails to mark down
    int riseThreshold = 1;  // consecutive passes to mark up
    std::string path = "/__health";
  };

  // `onChange` fires whenever the healthy set changes.
  using ChangeCallback = std::function<void()>;

  HealthChecker(EventLoop& loop, std::vector<BackendTarget> targets,
                Options opts, ChangeCallback onChange,
                MetricsRegistry* metrics = nullptr);
  ~HealthChecker();
  HealthChecker(const HealthChecker&) = delete;
  HealthChecker& operator=(const HealthChecker&) = delete;

  [[nodiscard]] bool isHealthy(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> healthyNames() const;
  [[nodiscard]] std::vector<BackendTarget> healthyTargets() const;
  [[nodiscard]] size_t healthyCount() const;

  // Mark all targets healthy without probing (test convenience).
  void assumeAllHealthy();

 private:
  struct State {
    BackendTarget target;
    bool healthy = false;
    int consecutiveFails = 0;
    int consecutivePasses = 0;
    bool probeInFlight = false;
  };

  void probeAll();
  void probeOne(size_t idx);
  void onProbeResult(size_t idx, bool pass);

  EventLoop& loop_;
  Options opts_;
  ChangeCallback onChange_;
  MetricsRegistry* metrics_;
  // Probes run on loop_'s thread, but the healthy-set accessors are
  // called from proxy worker threads; states_ is guarded throughout.
  mutable std::mutex mutex_;
  std::vector<State> states_;
  EventLoop::TimerId timer_ = 0;
  std::shared_ptr<bool> alive_;  // guards async probe completions
  // Outstanding probe connections; closed on destruction so their
  // callback cycles are broken even mid-probe.
  std::set<ConnectionPtr> probes_;
};

}  // namespace zdr::l4lb
