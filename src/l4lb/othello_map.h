// Concury-style stateless lookup: Othello hashing over routing buckets.
//
// Concury's thesis is that an LB data plane does not need per-flow
// state to route consistently: a minimal perfect-hashing-like structure
// (Othello) answers key→backend in O(1) with two array reads and an
// XOR, in a few kilobytes total — memory independent of the number of
// live flows. We reproduce the structure faithfully:
//
//   lookup(key) = A[h_a(k)] XOR B[h_b(k)]
//
// built so the XOR relation holds for every key in the construction
// set. Our construction keys are *routing buckets* (64 per backend by
// default), each assigned to a backend by highest-random-weight
// (rendezvous) hashing so backend churn only moves the victims'
// buckets — the same minimal-disruption contract as Maglev, with
// strictly less lookup work and zero bytes of per-flow state. A flow
// key hashes to a bucket, the bucket resolves through the Othello
// arrays. Because every bucket is a construction key, lookups always
// return a live backend index (no Othello "alien key" garbage — the
// bucket indirection makes the keyset total).
//
// Construction is O(buckets × backends) and runs off the hot path: the
// control plane rebuilds on churn and swaps the finished structure in,
// exactly as Concury separates its control and data planes.
//
// ZDR_NO_STATELESS_LOOKUP=1 (or setStatelessLookupEnabled(false)) is
// the kill switch: the hybrid router falls back to Maglev + an
// always-on flow table, the pre-PR behavior — mirroring the
// ZDR_NO_BATCHED_UDP / ZDR_NO_VECTORED_IO idiom.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "l4lb/consistent_hash.h"
#include "l4lb/hashing.h"

namespace zdr::l4lb {

namespace detail {
inline std::atomic<bool>& statelessLookupFlag() noexcept {
  static std::atomic<bool> enabled{std::getenv("ZDR_NO_STATELESS_LOOKUP") ==
                                   nullptr};
  return enabled;
}
}  // namespace detail

// When false (ZDR_NO_STATELESS_LOOKUP=1, or
// setStatelessLookupEnabled(false)), HybridRouter routes every flow
// through Maglev plus the stateful flow table — the §5.1 LRU-pinning
// behavior this PR's hybrid policy generalizes. The scale bench flips
// this between runs to measure the same binary both ways.
inline bool statelessLookupEnabled() noexcept {
  return detail::statelessLookupFlag().load(std::memory_order_relaxed);
}
inline void setStatelessLookupEnabled(bool on) noexcept {
  detail::statelessLookupFlag().store(on, std::memory_order_relaxed);
}

class OthelloMap final : public ConsistentHash {
 public:
  struct Options {
    size_t bucketsPerBackend = 64;
    size_t minBuckets = 1024;
    size_t maxBuckets = 1 << 16;
  };

  OthelloMap() : OthelloMap(Options{}) {}
  explicit OthelloMap(Options opts) : opts_(opts) {}

  // Rebuilds bucket ownership (rendezvous over the backend names) and
  // the Othello arrays. Off the hot path; lookups against the previous
  // arrays remain valid until this returns (single-owner semantics —
  // concurrent use swaps whole OthelloMap instances instead).
  void rebuild(const std::vector<std::string>& backends) override;

  // Two array reads + XOR. Always a valid index in [0, backendCount).
  [[nodiscard]] std::optional<size_t> pick(uint64_t key) const override {
    if (count_ == 0) {
      return std::nullopt;
    }
    uint64_t bucket = hashCombine(key, kBucketSalt) & bucketMask_;
    uint64_t bk = mix64(bucket + 1);
    uint16_t v = a_[hashCombine(bk, seedA_) & maskA_] ^
                 b_[hashCombine(bk, seedB_) & maskB_];
    // By construction every bucket is a keyset member, so v < count_;
    // the modulo is a never-taken guard against memory corruption
    // turning into an out-of-bounds backend index downstream.
    return v < count_ ? v : v % count_;
  }

  [[nodiscard]] size_t backendCount() const override { return count_; }

  [[nodiscard]] size_t bucketCount() const noexcept { return buckets_; }
  [[nodiscard]] size_t memoryBytes() const noexcept {
    return (a_.size() + b_.size()) * sizeof(uint16_t);
  }
  [[nodiscard]] uint64_t rebuilds() const noexcept { return rebuilds_; }
  // Acyclicity retries across all rebuilds (expected ~0.03/rebuild at
  // the default 4x slot-to-edge ratio).
  [[nodiscard]] uint64_t seedRetries() const noexcept { return seedRetries_; }

 private:
  static constexpr uint64_t kBucketSalt = 0x5bd1e995u;

  // Attempts one acyclic Othello build of bucket→value; returns false
  // when the bipartite edge set contains a cycle under this seed pair.
  bool tryBuild(const std::vector<uint16_t>& values, uint64_t seedA,
                uint64_t seedB);

  Options opts_;
  size_t count_ = 0;
  size_t buckets_ = 0;
  uint64_t bucketMask_ = 0;
  uint64_t seedA_ = 0;
  uint64_t seedB_ = 0;
  uint64_t maskA_ = 0;
  uint64_t maskB_ = 0;
  std::vector<uint16_t> a_;
  std::vector<uint16_t> b_;
  uint64_t rebuilds_ = 0;
  uint64_t seedRetries_ = 0;
};

}  // namespace zdr::l4lb
