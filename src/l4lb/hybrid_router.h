// Stateful/stateless hybrid routing policy (LB-Scalability direction).
//
// The §5.1 remediation pins *every* flow in an LRU table; at millions
// of concurrent flows that is the scaling bottleneck — and most of the
// state is dead weight, because outside churn the stateless mapping
// answers identically. The hybrid policy keeps state only for flows
// that need it:
//
//   * quiescent: route via the Othello stateless structure, zero
//     per-flow bytes;
//   * churn window (backend add/remove, ZDR takeover): live flows are
//     promoted into the per-worker flow-table shard pinned to their
//     pre-churn backend; new flows promote on first packet so a second
//     shuffle inside the window cannot move them either;
//   * quiescence again: a demotion sweep erases every pin that now
//     agrees with the stateless mapping — only genuinely divergent
//     flows (their bucket moved while they lived) stay pinned, and LRU
//     eviction bounds even those.
//
// ZDR_NO_STATELESS_LOOKUP=1 collapses the policy to the pre-PR
// behavior: Maglev (or ring) hashing plus an always-on flow table.
//
// Backends are interned to stable uint16 ids so the flow table stores
// 2 bytes per pin instead of a name, and so pins survive backend-set
// reorderings. The router is single-owner like the tables it wraps:
// one instance per worker loop, shards partitioned by flow-key bits.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "l4lb/consistent_hash.h"
#include "l4lb/flow_table.h"
#include "l4lb/othello_map.h"
#include "metrics/metrics.h"
#include "netcore/event_loop.h"

namespace zdr::l4lb {

class HybridRouter {
 public:
  enum class FallbackHash : uint8_t { kMaglev, kRing };

  struct Options {
    FallbackHash fallback = FallbackHash::kMaglev;
    size_t shards = 1;
    size_t flowCapacityPerShard = 4096;
    // How long after a backend-set change (or explicit takeover
    // notification) first-packet promotion stays on.
    Duration churnWindow = Duration{2000};
    // false: never pin (pure-hash ablation, the old useConnTable=false).
    bool useFlowTable = true;
    OthelloMap::Options othello{};
    // Gauge prefix for per-shard metric export ("l4." → l4.shard0.*).
    std::string metricsPrefix = "l4.";
  };

  explicit HybridRouter(Options opts, MetricsRegistry* metrics = nullptr);

  // Replaces the routing backend set. Rebuilds both lookup structures
  // and opens a churn window. Callers that track live flows should
  // pin() them *before* this call so they ride out the shuffle.
  void setBackends(const std::vector<std::string>& names, TimePoint now);

  // Opens (or extends) a churn window without changing the set — the
  // ZDR takeover hook: routing state is momentarily untrustworthy even
  // though the backend list is identical.
  void openChurnWindow(TimePoint now);
  [[nodiscard]] bool churnWindowOpen(TimePoint now) const {
    return windowArmed_ && now < windowEnd_;
  }

  // Routes a flow key to a stable backend id, applying the hybrid
  // policy (pin hit → stateless → promote-if-window).
  std::optional<uint32_t> route(uint64_t key, TimePoint now);

  // Explicit promotion/demotion, used by owners that know their live
  // flows (e.g. the UDP forwarder's NAT map) at churn-window open.
  void pin(uint64_t key, uint32_t id);
  void unpin(uint64_t key);

  // Demotion sweep + metric export; call periodically (reap tick).
  void maintain(TimePoint now);

  [[nodiscard]] std::optional<uint32_t> idOf(const std::string& name) const;
  [[nodiscard]] const std::string& nameOf(uint32_t id) const {
    return names_[id];
  }
  [[nodiscard]] bool live(uint32_t id) const {
    return id < liveById_.size() && liveById_[id] != 0;
  }
  [[nodiscard]] size_t backendCount() const { return idByIdx_.size(); }

  [[nodiscard]] ShardedFlowTable& flowTable() noexcept { return tables_; }
  [[nodiscard]] const ShardedFlowTable& flowTable() const noexcept {
    return tables_;
  }
  [[nodiscard]] const OthelloMap& othello() const noexcept { return othello_; }

  [[nodiscard]] size_t pinnedFlows() const { return tables_.size(); }
  [[nodiscard]] uint64_t promotions() const noexcept { return promotions_; }
  [[nodiscard]] uint64_t demotions() const noexcept { return demotions_; }
  [[nodiscard]] uint64_t routedStateless() const noexcept {
    return routedStateless_;
  }
  [[nodiscard]] uint64_t routedPinned() const noexcept {
    return routedPinned_;
  }
  [[nodiscard]] uint64_t routedFallback() const noexcept {
    return routedFallback_;
  }
  // Total routing-state footprint: flow-table slots + Othello arrays.
  [[nodiscard]] size_t memoryBytes() const {
    return tables_.memoryBytes() + othello_.memoryBytes();
  }

 private:
  [[nodiscard]] std::optional<uint32_t> statelessPick(uint64_t key) const;
  [[nodiscard]] std::optional<uint32_t> fallbackPick(uint64_t key) const;
  uint32_t intern(const std::string& name);

  Options opts_;
  MetricsRegistry* metrics_;
  ShardedFlowTable tables_;
  OthelloMap othello_;
  std::unique_ptr<ConsistentHash> fallback_;

  // Interning: id = position in names_ (stable forever); idByIdx_ maps
  // the current hash-pick index to an id; liveById_ marks membership in
  // the current set.
  std::vector<std::string> names_;
  std::unordered_map<std::string, uint32_t> idByName_;
  std::vector<uint8_t> liveById_;
  std::vector<uint32_t> idByIdx_;

  bool windowArmed_ = false;
  TimePoint windowEnd_{};
  bool sweepPending_ = false;

  uint64_t promotions_ = 0;
  uint64_t demotions_ = 0;
  uint64_t routedStateless_ = 0;
  uint64_t routedPinned_ = 0;
  uint64_t routedFallback_ = 0;
  uint64_t churnWindows_ = 0;
};

}  // namespace zdr::l4lb
