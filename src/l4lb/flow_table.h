// Compact per-worker flow table: flat open-addressing hash table with
// an intrusive LRU threaded through the slots.
//
// This replaces the string-valued std::list + unordered_map ConnTable
// on the routing hot path. At production scale (§5.1 pins millions of
// flows during a release) the node-based LRU costs ~150+ bytes and two
// pointer chases per flow; a slot here is 24 bytes flat
// (key + 2×32-bit LRU links + interned backend id), the probe sequence
// is cache-linear, and eviction is O(1) off the LRU tail. One shard is
// single-owner (no locks): workers each own a shard, selected by flow
// key bits — see ShardedFlowTable.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "metrics/metrics.h"

namespace zdr::l4lb {

class FlowTable {
 public:
  static constexpr uint32_t kNil = 0xffffffffu;

  struct Entry {
    uint64_t key;
    uint32_t prev;     // LRU links: slot indices, kNil at the ends
    uint32_t next;
    uint16_t backend;  // interned backend id (stable across rebuilds)
    uint8_t state;     // kEmpty | kOccupied | kTombstone
    uint8_t pad;
  };
  static_assert(sizeof(Entry) == 24, "bytes/flow budget: 24B per slot");

  // `capacity` is the flow count the table holds before LRU eviction;
  // the slot array is sized so load factor stays <= ~0.75.
  explicit FlowTable(size_t capacity)
      : capacity_(capacity), slots_(slotCountFor(capacity)) {
    mask_ = slots_.size() - 1;
  }

  // Returns the pinned backend id, refreshing recency.
  std::optional<uint16_t> lookup(uint64_t key) {
    size_t idx = findOccupied(key);
    if (idx == kNotFound) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    moveToFront(static_cast<uint32_t>(idx));
    return slots_[idx].backend;
  }

  // Lookup without touching recency or hit/miss counters.
  [[nodiscard]] std::optional<uint16_t> peek(uint64_t key) const {
    size_t idx = findOccupied(key);
    if (idx == kNotFound) {
      return std::nullopt;
    }
    return slots_[idx].backend;
  }

  void insert(uint64_t key, uint16_t backend) {
    if (capacity_ == 0) {
      return;  // a zero-capacity table pins nothing, ever
    }
    size_t existing = findOccupied(key);
    if (existing != kNotFound) {
      // Update path: never evicts — refreshing a pinned flow must not
      // push another flow out.
      slots_[existing].backend = backend;
      moveToFront(static_cast<uint32_t>(existing));
      return;
    }
    // Miss path: make room *before* placing so size_ never exceeds
    // capacity_ (the while handles the degenerate over-capacity state
    // rather than assuming a single eviction restores the invariant).
    while (size_ >= capacity_ && tail_ != kNil) {
      evictTail();
    }
    placeNew(key, backend);
    // Eviction churn leaves a tombstone per replaced flow; without
    // this the probe chains of a steadily-full table degrade to O(n).
    maybeRehash();
  }

  bool erase(uint64_t key) {
    size_t idx = findOccupied(key);
    if (idx == kNotFound) {
      return false;
    }
    removeAt(static_cast<uint32_t>(idx));
    maybeRehash();
    return true;
  }

  // Removes every entry for which pred(key, backend) is true; returns
  // how many were removed. Used by the hybrid policy's demotion sweep.
  size_t eraseIf(const std::function<bool(uint64_t, uint16_t)>& pred) {
    // Collect first: removal can trigger a tombstone rehash, which
    // relocates slots and would invalidate a live LRU walk.
    std::vector<uint64_t> doomed;
    for (uint32_t i = head_; i != kNil; i = slots_[i].next) {
      if (pred(slots_[i].key, slots_[i].backend)) {
        doomed.push_back(slots_[i].key);
      }
    }
    for (uint64_t key : doomed) {
      erase(key);
    }
    return doomed.size();
  }

  void clear() {
    for (auto& e : slots_) {
      e.state = kEmpty;
    }
    head_ = tail_ = kNil;
    size_ = 0;
    tombstones_ = 0;
  }

  [[nodiscard]] size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] uint64_t evictions() const noexcept { return evictions_; }
  [[nodiscard]] size_t memoryBytes() const noexcept {
    return slots_.size() * sizeof(Entry);
  }

  // LRU order, most-recent first (test introspection).
  [[nodiscard]] std::vector<uint64_t> lruKeys() const {
    std::vector<uint64_t> out;
    out.reserve(size_);
    for (uint32_t i = head_; i != kNil; i = slots_[i].next) {
      out.push_back(slots_[i].key);
    }
    return out;
  }

 private:
  static constexpr uint8_t kEmpty = 0;
  static constexpr uint8_t kOccupied = 1;
  static constexpr uint8_t kTombstone = 2;
  static constexpr size_t kNotFound = static_cast<size_t>(-1);

  static size_t slotCountFor(size_t capacity) {
    // Slots >= capacity / 0.75, rounded to a power of two, floor 8.
    size_t want = capacity + capacity / 3 + 1;
    size_t n = 8;
    while (n < want) {
      n <<= 1;
    }
    return n;
  }

  [[nodiscard]] size_t findOccupied(uint64_t key) const {
    // Callers hash their flow keys (mix64 of the 4-tuple), so the key
    // itself is the probe start. Tombstones are skipped; an empty slot
    // terminates the probe chain.
    size_t i = key & mask_;
    for (size_t probes = 0; probes <= mask_; ++probes) {
      const Entry& e = slots_[i];
      if (e.state == kEmpty) {
        return kNotFound;
      }
      if (e.state == kOccupied && e.key == key) {
        return i;
      }
      i = (i + 1) & mask_;
    }
    return kNotFound;
  }

  void placeNew(uint64_t key, uint16_t backend) {
    size_t i = key & mask_;
    while (slots_[i].state == kOccupied) {
      i = (i + 1) & mask_;
    }
    if (slots_[i].state == kTombstone) {
      --tombstones_;
    }
    Entry& e = slots_[i];
    e.key = key;
    e.backend = backend;
    e.state = kOccupied;
    linkFront(static_cast<uint32_t>(i));
    ++size_;
  }

  void linkFront(uint32_t idx) {
    slots_[idx].prev = kNil;
    slots_[idx].next = head_;
    if (head_ != kNil) {
      slots_[head_].prev = idx;
    }
    head_ = idx;
    if (tail_ == kNil) {
      tail_ = idx;
    }
  }

  void unlink(uint32_t idx) {
    Entry& e = slots_[idx];
    if (e.prev != kNil) {
      slots_[e.prev].next = e.next;
    } else {
      head_ = e.next;
    }
    if (e.next != kNil) {
      slots_[e.next].prev = e.prev;
    } else {
      tail_ = e.prev;
    }
  }

  void moveToFront(uint32_t idx) {
    if (head_ == idx) {
      return;
    }
    unlink(idx);
    linkFront(idx);
  }

  void removeAt(uint32_t idx) {
    unlink(idx);
    slots_[idx].state = kTombstone;
    ++tombstones_;
    --size_;
  }

  void evictTail() {
    removeAt(tail_);  // caller guarantees tail_ != kNil
    ++evictions_;
  }

  void maybeRehash() {
    // Tombstones lengthen every probe chain; past a quarter of the
    // table, rebuild in place (same slot count — occupancy is bounded
    // by capacity, not tombstone debris).
    if (tombstones_ <= slots_.size() / 4) {
      return;
    }
    std::vector<Entry> old = std::move(slots_);
    uint32_t oldHead = head_;
    slots_.assign(old.size(), Entry{});
    head_ = tail_ = kNil;
    size_ = 0;
    tombstones_ = 0;
    // Walk the old list MRU→LRU, appending each entry at the new tail,
    // so recency order survives the rebuild exactly.
    uint32_t prevNew = kNil;
    for (uint32_t i = oldHead; i != kNil; i = old[i].next) {
      size_t j = old[i].key & mask_;
      while (slots_[j].state == kOccupied) {
        j = (j + 1) & mask_;
      }
      Entry& e = slots_[j];
      e.key = old[i].key;
      e.backend = old[i].backend;
      e.state = kOccupied;
      e.prev = prevNew;
      e.next = kNil;
      if (prevNew != kNil) {
        slots_[prevNew].next = static_cast<uint32_t>(j);
      } else {
        head_ = static_cast<uint32_t>(j);
      }
      tail_ = static_cast<uint32_t>(j);
      prevNew = static_cast<uint32_t>(j);
      ++size_;
    }
  }

  size_t capacity_;
  std::vector<Entry> slots_;
  size_t mask_ = 0;
  uint32_t head_ = kNil;  // MRU
  uint32_t tail_ = kNil;  // LRU (eviction victim)
  size_t size_ = 0;
  size_t tombstones_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

// N independent FlowTable shards. Shard choice uses high key bits (the
// low bits drive the probe start and the stateless bucket choice), so
// workers that own disjoint shards never contend — there are no locks
// anywhere in this file by design.
class ShardedFlowTable {
 public:
  ShardedFlowTable(size_t shards, size_t capacityPerShard) {
    shards_.reserve(shards == 0 ? 1 : shards);
    for (size_t i = 0; i < (shards == 0 ? 1 : shards); ++i) {
      shards_.emplace_back(capacityPerShard);
    }
  }

  [[nodiscard]] size_t shardFor(uint64_t key) const noexcept {
    return (key >> 32) % shards_.size();
  }
  [[nodiscard]] FlowTable& shardOf(uint64_t key) {
    return shards_[shardFor(key)];
  }
  [[nodiscard]] FlowTable& shard(size_t i) { return shards_[i]; }
  [[nodiscard]] const FlowTable& shard(size_t i) const { return shards_[i]; }
  [[nodiscard]] size_t shardCount() const noexcept { return shards_.size(); }

  [[nodiscard]] size_t size() const noexcept {
    size_t n = 0;
    for (const auto& s : shards_) {
      n += s.size();
    }
    return n;
  }
  [[nodiscard]] size_t memoryBytes() const noexcept {
    size_t n = 0;
    for (const auto& s : shards_) {
      n += s.memoryBytes();
    }
    return n;
  }

  // Publishes per-shard counters as `<prefix>shard<i>.hits` / `.misses`
  // / `.evictions` / `.size` gauges — the ConnTable counted these but
  // never exported them; every shard now lands in /__stats.
  void exportTo(MetricsRegistry& m, const std::string& prefix) const {
    for (size_t i = 0; i < shards_.size(); ++i) {
      const FlowTable& s = shards_[i];
      std::string base = prefix + "shard" + std::to_string(i);
      m.gauge(base + ".hits").set(static_cast<double>(s.hits()));
      m.gauge(base + ".misses").set(static_cast<double>(s.misses()));
      m.gauge(base + ".evictions").set(static_cast<double>(s.evictions()));
      m.gauge(base + ".size").set(static_cast<double>(s.size()));
    }
  }

 private:
  std::vector<FlowTable> shards_;
};

}  // namespace zdr::l4lb
