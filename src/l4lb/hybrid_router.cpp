#include "l4lb/hybrid_router.h"

#include <algorithm>

namespace zdr::l4lb {

HybridRouter::HybridRouter(Options opts, MetricsRegistry* metrics)
    : opts_(std::move(opts)),
      metrics_(metrics),
      tables_(opts_.shards, opts_.flowCapacityPerShard),
      othello_(opts_.othello) {
  fallback_ = opts_.fallback == FallbackHash::kMaglev
                  ? std::unique_ptr<ConsistentHash>(
                        std::make_unique<MaglevHash>())
                  : std::make_unique<RingHash>();
}

uint32_t HybridRouter::intern(const std::string& name) {
  auto it = idByName_.find(name);
  if (it != idByName_.end()) {
    return it->second;
  }
  if (names_.size() >= 0xffff) {
    // The flow table stores 16-bit ids. A router that has seen 65535
    // distinct backend names over its lifetime restarts interning:
    // flush every pin (they reference recycled ids) and start clean.
    // Churn at that scale means the pins were stale anyway.
    for (size_t i = 0; i < tables_.shardCount(); ++i) {
      tables_.shard(i).clear();
    }
    names_.clear();
    idByName_.clear();
    liveById_.clear();
  }
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.push_back(name);
  idByName_.emplace(name, id);
  liveById_.push_back(0);
  return id;
}

void HybridRouter::setBackends(const std::vector<std::string>& names,
                               TimePoint now) {
  std::fill(liveById_.begin(), liveById_.end(), 0);
  idByIdx_.clear();
  idByIdx_.reserve(names.size());
  for (const auto& n : names) {
    uint32_t id = intern(n);
    idByIdx_.push_back(id);
    liveById_[id] = 1;
  }
  // Rebuild both planes off the hot path, then arm the churn window so
  // first-packet promotion covers flows the owner could not bulk-pin.
  othello_.rebuild(names);
  fallback_->rebuild(names);
  openChurnWindow(now);
}

void HybridRouter::openChurnWindow(TimePoint now) {
  windowArmed_ = true;
  windowEnd_ = now + opts_.churnWindow;
  sweepPending_ = true;
  ++churnWindows_;
}

std::optional<uint32_t> HybridRouter::statelessPick(uint64_t key) const {
  auto idx = othello_.pick(key);
  if (!idx) {
    return std::nullopt;
  }
  return idByIdx_[*idx];
}

std::optional<uint32_t> HybridRouter::fallbackPick(uint64_t key) const {
  auto idx = fallback_->pick(key);
  if (!idx) {
    return std::nullopt;
  }
  return idByIdx_[*idx];
}

std::optional<uint32_t> HybridRouter::route(uint64_t key, TimePoint now) {
  const bool stateless = statelessLookupEnabled();
  if (!opts_.useFlowTable) {
    // Pure-hash ablation: no pinning in either mode.
    ++routedStateless_;
    return stateless ? statelessPick(key) : fallbackPick(key);
  }
  FlowTable& table = tables_.shardOf(key);
  if (!stateless) {
    // Kill switch: Maglev + LRU on every flow, the pre-PR §5.1 path.
    if (auto id = table.lookup(key)) {
      if (live(*id)) {
        ++routedPinned_;
        return *id;
      }
      table.erase(key);  // pinned backend left the set: re-route
    }
    auto id = fallbackPick(key);
    if (id) {
      table.insert(key, static_cast<uint16_t>(*id));
      ++routedFallback_;
    }
    return id;
  }
  // Hybrid: a pin wins while its backend lives; outside churn the
  // shard is empty and this is a single probe to an empty-check.
  if (!table.empty()) {
    if (auto id = table.lookup(key)) {
      if (live(*id)) {
        ++routedPinned_;
        return *id;
      }
      table.erase(key);
    }
  }
  auto id = statelessPick(key);
  ++routedStateless_;
  if (id && churnWindowOpen(now)) {
    table.insert(key, static_cast<uint16_t>(*id));
    ++promotions_;
  }
  return id;
}

void HybridRouter::pin(uint64_t key, uint32_t id) {
  if (!opts_.useFlowTable || id > 0xffff) {
    return;
  }
  tables_.shardOf(key).insert(key, static_cast<uint16_t>(id));
  ++promotions_;
}

void HybridRouter::unpin(uint64_t key) {
  if (!opts_.useFlowTable) {
    return;
  }
  tables_.shardOf(key).erase(key);
}

std::optional<uint32_t> HybridRouter::idOf(const std::string& name) const {
  auto it = idByName_.find(name);
  if (it == idByName_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void HybridRouter::maintain(TimePoint now) {
  // Demote once per window, after it closes, and only while the
  // stateless plane is live (under the kill switch the table IS the
  // routing source — sweeping it would unpin everything).
  if (sweepPending_ && !churnWindowOpen(now) && statelessLookupEnabled() &&
      opts_.useFlowTable) {
    sweepPending_ = false;
    size_t demoted = 0;
    for (size_t i = 0; i < tables_.shardCount(); ++i) {
      demoted += tables_.shard(i).eraseIf([this](uint64_t key, uint16_t id) {
        // A pin that agrees with the stateless mapping (or points at a
        // departed backend) carries no information — drop it. Only
        // genuinely divergent pins survive quiescence.
        if (!live(id)) {
          return true;
        }
        auto fresh = statelessPick(key);
        return fresh && *fresh == id;
      });
    }
    demotions_ += demoted;
  }
  if (metrics_ != nullptr) {
    tables_.exportTo(*metrics_, opts_.metricsPrefix);
    const std::string& p = opts_.metricsPrefix;
    metrics_->gauge(p + "router.pinned_flows")
        .set(static_cast<double>(tables_.size()));
    metrics_->gauge(p + "router.promotions")
        .set(static_cast<double>(promotions_));
    metrics_->gauge(p + "router.demotions")
        .set(static_cast<double>(demotions_));
    metrics_->gauge(p + "router.routed_stateless")
        .set(static_cast<double>(routedStateless_));
    metrics_->gauge(p + "router.routed_pinned")
        .set(static_cast<double>(routedPinned_));
    metrics_->gauge(p + "router.routed_fallback")
        .set(static_cast<double>(routedFallback_));
    metrics_->gauge(p + "router.churn_windows")
        .set(static_cast<double>(churnWindows_));
    metrics_->gauge(p + "router.othello_rebuilds")
        .set(static_cast<double>(othello_.rebuilds()));
    metrics_->gauge(p + "router.memory_bytes")
        .set(static_cast<double>(memoryBytes()));
  }
}

}  // namespace zdr::l4lb
