// Hash primitives shared by the consistent-hash implementations.
#pragma once

#include <cstdint>
#include <string_view>

namespace zdr::l4lb {

// splitmix64: fast, well-distributed 64-bit mixer.
[[nodiscard]] constexpr uint64_t mix64(uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// FNV-1a over bytes, then mixed.
[[nodiscard]] inline uint64_t hashBytes(std::string_view s) noexcept {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

// Combines two hashes (for (name, vnode) or (name, seed) pairs).
[[nodiscard]] constexpr uint64_t hashCombine(uint64_t a, uint64_t b) noexcept {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace zdr::l4lb
