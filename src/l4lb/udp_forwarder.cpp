#include "l4lb/udp_forwarder.h"


#include "l4lb/hashing.h"

namespace zdr::l4lb {

namespace {

HybridRouter::Options routerOptions(const UdpForwarder::Options& opts) {
  HybridRouter::Options ro;
  ro.shards = opts.flowShards;
  ro.flowCapacityPerShard =
      opts.flowShards > 0 ? opts.connTableCapacity / opts.flowShards
                          : opts.connTableCapacity;
  ro.churnWindow = opts.churnWindow;
  ro.useFlowTable = opts.useConnTable;
  ro.metricsPrefix = "l4udp.";
  return ro;
}

}  // namespace

UdpForwarder::UdpForwarder(EventLoop& loop, const SocketAddr& vip,
                           std::vector<Backend> backends, Options opts,
                           MetricsRegistry* metrics)
    : loop_(loop),
      opts_(opts),
      metrics_(metrics),
      backends_(std::move(backends)),
      router_(routerOptions(opts), metrics),
      vipSock_(vip) {
  std::vector<std::string> names;
  names.reserve(backends_.size());
  for (const auto& b : backends_) {
    names.push_back(b.name);
  }
  router_.setBackends(names, Clock::now());
  loop_.addFd(vipSock_.fd(), kEvRead, [this](uint32_t) { onVipReadable(); });
  reapTimer_ = loop_.runEvery(Duration{1000}, [this] { reapIdle(); });
}

UdpForwarder::~UdpForwarder() {
  loop_.cancelTimer(reapTimer_);
  if (vipSock_.valid() && loop_.watching(vipSock_.fd())) {
    loop_.removeFd(vipSock_.fd());
  }
  for (auto& [key, flow] : flows_) {
    if (flow->natSock.valid() && loop_.watching(flow->natSock.fd())) {
      loop_.removeFd(flow->natSock.fd());
    }
  }
}

void UdpForwarder::setBackends(std::vector<Backend> backends) {
  // Bulk-promote every live flow BEFORE the rebuild: the pins record
  // the pre-churn routing, so the new stateless map cannot re-route a
  // datagram stream whose NAT socket is already established.
  for (const auto& [key, flow] : flows_) {
    router_.pin(key, flow->backendId);
  }
  backends_ = std::move(backends);
  std::vector<std::string> names;
  names.reserve(backends_.size());
  for (const auto& b : backends_) {
    names.push_back(b.name);
  }
  router_.setBackends(names, Clock::now());
}

void UdpForwarder::noteTakeover() { router_.openChurnWindow(Clock::now()); }

UdpForwarder::Flow* UdpForwarder::flowFor(const SocketAddr& client) {
  uint64_t key = mix64(client.hashKey());
  auto it = flows_.find(key);
  if (it != flows_.end()) {
    return it->second.get();
  }

  auto id = router_.route(key, Clock::now());
  if (!id) {
    return nullptr;
  }
  const Backend* target = nullptr;
  const std::string& name = router_.nameOf(*id);
  for (const auto& b : backends_) {
    if (b.name == name) {
      target = &b;
      break;
    }
  }
  if (target == nullptr) {
    return nullptr;  // backends_ changed mid-call
  }

  auto flow = std::make_unique<Flow>();
  flow->client = client;
  flow->backend = target->addr;
  flow->backendId = *id;
  flow->natSock = UdpSocket(SocketAddr::loopback(0));
  flow->lastActive = Clock::now();
  loop_.addFd(flow->natSock.fd(), kEvRead,
              [this, key](uint32_t) { onNatReadable(key); });
  Flow* raw = flow.get();
  flows_[key] = std::move(flow);
  if (metrics_) {
    metrics_->counter("l4udp.flows_opened").add();
  }
  return raw;
}

void UdpForwarder::onVipReadable() {
  // Drain a batch per recvmmsg; consecutive datagrams of the same flow
  // (the common case — clients burst) stage into one sendmmsg out of
  // that flow's NAT socket.
  std::error_code ec;
  while (!ec) {
    vipSock_.recvMany(rxBatch_, ec);
    Flow* cur = nullptr;
    for (size_t i = 0; i < rxBatch_.size(); ++i) {
      Flow* flow = flowFor(rxBatch_.from(i));
      if (flow == nullptr) {
        continue;  // no backends
      }
      if (flow != cur) {
        flushToBackend(cur);
        cur = flow;
      }
      flow->lastActive = Clock::now();
      if (txBatch_.full()) {
        flushToBackend(cur);
      }
      txBatch_.push(rxBatch_.data(i), flow->backend);
    }
    flushToBackend(cur);
  }
}

void UdpForwarder::flushToBackend(Flow* flow) {
  if (flow == nullptr || txBatch_.empty()) {
    return;
  }
  std::error_code ec;
  forwarded_ += flow->natSock.sendMany(txBatch_, ec);
}

void UdpForwarder::onNatReadable(uint64_t flowKey) {
  auto it = flows_.find(flowKey);
  if (it == flows_.end()) {
    return;
  }
  Flow* flow = it->second.get();
  std::error_code ec;
  while (!ec) {
    flow->natSock.recvMany(rxBatch_, ec);
    if (rxBatch_.size() > 0) {
      flow->lastActive = Clock::now();
    }
    for (size_t i = 0; i < rxBatch_.size(); ++i) {
      if (txBatch_.full()) {
        flushReturns();
      }
      txBatch_.push(rxBatch_.data(i), flow->client);
    }
    flushReturns();
  }
}

void UdpForwarder::flushReturns() {
  if (txBatch_.empty()) {
    return;
  }
  std::error_code ec;
  returned_ += vipSock_.sendMany(txBatch_, ec);
}

void UdpForwarder::reapIdle() {
  if (metrics_) {
    auto s = pool_.stats();
    metrics_->gauge("l4udp.pool_hits").set(static_cast<double>(s.hits));
    metrics_->gauge("l4udp.pool_misses").set(static_cast<double>(s.misses));
    metrics_->gauge("l4udp.pool_outstanding")
        .set(static_cast<double>(s.outstanding));
  }
  TimePoint now = Clock::now();
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (now - it->second->lastActive > opts_.flowIdleTimeout) {
      if (loop_.watching(it->second->natSock.fd())) {
        loop_.removeFd(it->second->natSock.fd());
      }
      router_.unpin(it->first);
      it = flows_.erase(it);
      if (metrics_) {
        metrics_->counter("l4udp.flows_reaped").add();
      }
    } else {
      ++it;
    }
  }
  router_.maintain(now);
}

}  // namespace zdr::l4lb
