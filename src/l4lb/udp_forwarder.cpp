#include "l4lb/udp_forwarder.h"

#include <sys/epoll.h>

#include <array>

#include "l4lb/hashing.h"

namespace zdr::l4lb {

UdpForwarder::UdpForwarder(EventLoop& loop, const SocketAddr& vip,
                           std::vector<Backend> backends, Options opts,
                           MetricsRegistry* metrics)
    : loop_(loop),
      opts_(opts),
      metrics_(metrics),
      backends_(std::move(backends)),
      table_(opts.connTableCapacity),
      vipSock_(vip) {
  std::vector<std::string> names;
  names.reserve(backends_.size());
  for (const auto& b : backends_) {
    names.push_back(b.name);
  }
  hash_.rebuild(names);
  loop_.addFd(vipSock_.fd(), EPOLLIN, [this](uint32_t) { onVipReadable(); });
  reapTimer_ = loop_.runEvery(Duration{1000}, [this] { reapIdle(); });
}

UdpForwarder::~UdpForwarder() {
  loop_.cancelTimer(reapTimer_);
  if (vipSock_.valid() && loop_.watching(vipSock_.fd())) {
    loop_.removeFd(vipSock_.fd());
  }
  for (auto& [key, flow] : flows_) {
    if (flow->natSock.valid() && loop_.watching(flow->natSock.fd())) {
      loop_.removeFd(flow->natSock.fd());
    }
  }
}

void UdpForwarder::setBackends(std::vector<Backend> backends) {
  backends_ = std::move(backends);
  std::vector<std::string> names;
  names.reserve(backends_.size());
  for (const auto& b : backends_) {
    names.push_back(b.name);
  }
  hash_.rebuild(names);
}

UdpForwarder::Flow* UdpForwarder::flowFor(const SocketAddr& client) {
  uint64_t key = mix64(client.hashKey());
  auto it = flows_.find(key);
  if (it != flows_.end()) {
    return it->second.get();
  }

  // Resolve the backend: LRU pin first, then consistent hash.
  const Backend* target = nullptr;
  if (opts_.useConnTable) {
    if (auto pinned = table_.lookup(key)) {
      for (const auto& b : backends_) {
        if (b.name == *pinned) {
          target = &b;
          break;
        }
      }
    }
  }
  if (target == nullptr) {
    auto idx = hash_.pick(key);
    if (!idx) {
      return nullptr;
    }
    target = &backends_[*idx];
    if (opts_.useConnTable) {
      table_.insert(key, target->name);
    }
  }

  auto flow = std::make_unique<Flow>();
  flow->client = client;
  flow->backend = target->addr;
  flow->natSock = UdpSocket(SocketAddr::loopback(0));
  flow->lastActive = Clock::now();
  loop_.addFd(flow->natSock.fd(), EPOLLIN,
              [this, key](uint32_t) { onNatReadable(key); });
  Flow* raw = flow.get();
  flows_[key] = std::move(flow);
  if (metrics_) {
    metrics_->counter("l4udp.flows_opened").add();
  }
  return raw;
}

void UdpForwarder::onVipReadable() {
  std::array<std::byte, 2048> buf;
  while (true) {
    SocketAddr from;
    std::error_code ec;
    size_t n = vipSock_.recvFrom(buf, from, ec);
    if (ec) {
      return;
    }
    Flow* flow = flowFor(from);
    if (flow == nullptr) {
      continue;  // no backends
    }
    flow->lastActive = Clock::now();
    flow->natSock.sendTo(std::span(buf.data(), n), flow->backend, ec);
    if (!ec) {
      ++forwarded_;
    }
  }
}

void UdpForwarder::onNatReadable(uint64_t flowKey) {
  auto it = flows_.find(flowKey);
  if (it == flows_.end()) {
    return;
  }
  Flow* flow = it->second.get();
  std::array<std::byte, 2048> buf;
  while (true) {
    SocketAddr from;
    std::error_code ec;
    size_t n = flow->natSock.recvFrom(buf, from, ec);
    if (ec) {
      return;
    }
    flow->lastActive = Clock::now();
    vipSock_.sendTo(std::span(buf.data(), n), flow->client, ec);
    if (!ec) {
      ++returned_;
    }
  }
}

void UdpForwarder::reapIdle() {
  TimePoint now = Clock::now();
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (now - it->second->lastActive > opts_.flowIdleTimeout) {
      if (loop_.watching(it->second->natSock.fd())) {
        loop_.removeFd(it->second->natSock.fd());
      }
      table_.erase(it->first);
      it = flows_.erase(it);
      if (metrics_) {
        metrics_->counter("l4udp.flows_reaped").add();
      }
    } else {
      ++it;
    }
  }
}

}  // namespace zdr::l4lb
