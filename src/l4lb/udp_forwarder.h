// Userspace UDP VIP forwarder — the Katran UDP datapath model.
//
// Katran consistently routes UDP packets to L7 backends by hashing the
// 4-tuple (§4.1). This userspace stand-in does the same at datagram
// granularity: client datagrams arriving on the VIP are forwarded to a
// backend chosen by consistent hash of the client address, pinned in
// the LRU connection table; replies flow back through a per-flow NAT
// socket so the client sees a single stable peer.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "l4lb/hybrid_router.h"
#include "metrics/metrics.h"
#include "netcore/buffer_pool.h"
#include "netcore/event_loop.h"
#include "netcore/socket.h"
#include "netcore/udp_batch.h"

namespace zdr::l4lb {

class UdpForwarder {
 public:
  struct Options {
    bool useConnTable = true;
    size_t connTableCapacity = 4096;
    // Flow-table shards (per-worker in a sharded deployment).
    size_t flowShards = 1;
    // Promotion stays armed this long after backend churn/takeover.
    Duration churnWindow = Duration{2000};
    // Idle flows are reaped after this long without traffic.
    Duration flowIdleTimeout = Duration{30000};
  };

  struct Backend {
    std::string name;
    SocketAddr addr;
  };

  UdpForwarder(EventLoop& loop, const SocketAddr& vip,
               std::vector<Backend> backends, Options opts,
               MetricsRegistry* metrics = nullptr);
  ~UdpForwarder();
  UdpForwarder(const UdpForwarder&) = delete;
  UdpForwarder& operator=(const UdpForwarder&) = delete;

  [[nodiscard]] SocketAddr vip() const { return vipSock_.localAddr(); }
  [[nodiscard]] size_t flowCount() const noexcept { return flows_.size(); }
  [[nodiscard]] uint64_t forwarded() const noexcept { return forwarded_; }
  [[nodiscard]] uint64_t returned() const noexcept { return returned_; }
  [[nodiscard]] HybridRouter& router() noexcept { return router_; }

  // Replaces the backend set (health integration point). Live flows
  // are bulk-promoted into the stateful shard first, so the stateless
  // rebuild cannot re-route them mid-connection.
  void setBackends(std::vector<Backend> backends);

  // ZDR takeover hook: arms promotion without changing the set.
  void noteTakeover();

 private:
  struct Flow {
    SocketAddr client;
    SocketAddr backend;
    uint32_t backendId = 0;  // router-interned id, for bulk promotion
    UdpSocket natSock;  // source of forwarded packets; sink of replies
    TimePoint lastActive;
  };

  void onVipReadable();
  void onNatReadable(uint64_t flowKey);
  Flow* flowFor(const SocketAddr& client);
  // Flush the staged run of datagrams out of `flow`'s NAT socket
  // (client → backend direction) in one sendmmsg.
  void flushToBackend(Flow* flow);
  // Flush staged backend replies back out the VIP socket.
  void flushReturns();
  void reapIdle();

  EventLoop& loop_;
  Options opts_;
  MetricsRegistry* metrics_;
  std::vector<Backend> backends_;
  HybridRouter router_;
  // Pool before batches: batch handles release into it on destruction.
  BufferPool pool_;
  RecvBatch rxBatch_{pool_};
  SendBatch txBatch_{pool_};
  UdpSocket vipSock_;
  std::unordered_map<uint64_t, std::unique_ptr<Flow>> flows_;
  EventLoop::TimerId reapTimer_ = 0;
  uint64_t forwarded_ = 0;
  uint64_t returned_ = 0;
};

}  // namespace zdr::l4lb
