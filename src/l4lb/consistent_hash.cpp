#include "l4lb/consistent_hash.h"

#include <algorithm>

#include "l4lb/hashing.h"

namespace zdr::l4lb {

// --------------------------------------------------------------- RingHash

void RingHash::rebuild(const std::vector<std::string>& backends) {
  ring_.clear();
  count_ = backends.size();
  ring_.reserve(backends.size() * vnodes_);
  for (size_t i = 0; i < backends.size(); ++i) {
    uint64_t base = hashBytes(backends[i]);
    for (size_t v = 0; v < vnodes_; ++v) {
      ring_.emplace_back(hashCombine(base, v), i);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::optional<size_t> RingHash::pick(uint64_t key) const {
  if (ring_.empty()) {
    return std::nullopt;
  }
  uint64_t h = mix64(key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(h, size_t{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  if (it == ring_.end()) {
    it = ring_.begin();  // wrap
  }
  return it->second;
}

// -------------------------------------------------------------- MaglevHash

void MaglevHash::rebuild(const std::vector<std::string>& backends) {
  count_ = backends.size();
  table_.assign(tableSize_, -1);
  if (backends.empty()) {
    return;
  }

  // Each backend gets a permutation of table slots derived from two
  // independent hashes (offset, skip) — Maglev §3.4.
  const size_t n = backends.size();
  std::vector<uint64_t> offset(n);
  std::vector<uint64_t> skip(n);
  std::vector<size_t> next(n, 0);
  for (size_t i = 0; i < n; ++i) {
    uint64_t h1 = hashBytes(backends[i]);
    uint64_t h2 = hashCombine(h1, 0x5bd1e995);
    offset[i] = h1 % tableSize_;
    skip[i] = (h2 % (tableSize_ - 1)) + 1;
  }

  size_t filled = 0;
  while (filled < tableSize_) {
    for (size_t i = 0; i < n && filled < tableSize_; ++i) {
      // Find this backend's next preferred empty slot.
      size_t c = (offset[i] + next[i] * skip[i]) % tableSize_;
      while (table_[c] >= 0) {
        ++next[i];
        c = (offset[i] + next[i] * skip[i]) % tableSize_;
      }
      table_[c] = static_cast<int32_t>(i);
      ++next[i];
      ++filled;
    }
  }
}

std::optional<size_t> MaglevHash::pick(uint64_t key) const {
  if (count_ == 0 || table_.empty()) {
    return std::nullopt;
  }
  int32_t idx = table_[mix64(key) % tableSize_];
  if (idx < 0) {
    return std::nullopt;
  }
  return static_cast<size_t>(idx);
}

// ------------------------------------------------------------------ utils

double remapFraction(const ConsistentHash& a, const ConsistentHash& b,
                     size_t samples) {
  if (samples == 0) {
    return 0.0;
  }
  size_t moved = 0;
  for (size_t i = 0; i < samples; ++i) {
    uint64_t key = mix64(i * 0x9e3779b97f4a7c15ULL + 1);
    if (a.pick(key) != b.pick(key)) {
      ++moved;
    }
  }
  return static_cast<double>(moved) / static_cast<double>(samples);
}

}  // namespace zdr::l4lb
