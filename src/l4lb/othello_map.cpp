#include "l4lb/othello_map.h"

#include <algorithm>

namespace zdr::l4lb {

namespace {

size_t nextPow2(size_t want) {
  size_t n = 1;
  while (n < want) {
    n <<= 1;
  }
  return n;
}

// Union-find over the bipartite node set, used for the acyclicity
// check during construction (an Othello build succeeds iff the
// key-edge graph is a forest).
class DisjointSet {
 public:
  explicit DisjointSet(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) {
      parent_[i] = static_cast<uint32_t>(i);
    }
  }
  uint32_t find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }
  // Returns false if x and y were already connected (edge closes a
  // cycle).
  bool unite(uint32_t x, uint32_t y) {
    uint32_t rx = find(x);
    uint32_t ry = find(y);
    if (rx == ry) {
      return false;
    }
    parent_[rx] = ry;
    return true;
  }

 private:
  std::vector<uint32_t> parent_;
};

}  // namespace

void OthelloMap::rebuild(const std::vector<std::string>& backends) {
  ++rebuilds_;
  count_ = backends.size();
  if (count_ == 0) {
    buckets_ = 0;
    a_.clear();
    b_.clear();
    return;
  }

  buckets_ = nextPow2(std::max(opts_.minBuckets,
                               count_ * opts_.bucketsPerBackend));
  if (buckets_ > opts_.maxBuckets) {
    buckets_ = nextPow2(opts_.maxBuckets);
  }
  bucketMask_ = buckets_ - 1;

  // Rendezvous ownership: bucket b belongs to the backend whose
  // (bucket, name) weight is highest. Removing a backend moves only
  // its own buckets; adding one steals ~1/n of everyone's — the same
  // disruption profile the §5.1 ablation demands of Maglev.
  std::vector<uint64_t> nameHash(count_);
  for (size_t i = 0; i < count_; ++i) {
    nameHash[i] = hashBytes(backends[i]);
  }
  std::vector<uint16_t> values(buckets_);
  for (size_t bkt = 0; bkt < buckets_; ++bkt) {
    uint64_t bucketHash = mix64(bkt + 1);
    uint64_t best = 0;
    size_t bestIdx = 0;
    for (size_t i = 0; i < count_; ++i) {
      uint64_t w = hashCombine(bucketHash, nameHash[i]);
      if (w >= best) {
        best = w;
        bestIdx = i;
      }
    }
    values[bkt] = static_cast<uint16_t>(bestIdx);
  }

  // Othello arrays at 2x the edge count per side: the bipartite graph
  // has `buckets_` edges over 4x as many nodes, so a random seed pair
  // is acyclic with probability ~0.97 — retries are rare and cheap.
  size_t side = nextPow2(buckets_ * 2);
  a_.assign(side, 0);
  b_.assign(side, 0);
  maskA_ = a_.size() - 1;
  maskB_ = b_.size() - 1;

  for (uint64_t attempt = 0;; ++attempt) {
    uint64_t sa = mix64(0x07e1105eedULL + attempt * 2);
    uint64_t sb = mix64(0x07e1105eedULL + attempt * 2 + 1);
    if (tryBuild(values, sa, sb)) {
      seedA_ = sa;
      seedB_ = sb;
      return;
    }
    ++seedRetries_;
    if (attempt > 0 && attempt % 32 == 0) {
      // Pathological seed run: grow the arrays and keep going. With
      // 2x slots per side this is effectively unreachable, but a
      // routing structure must not be able to loop forever.
      a_.assign(a_.size() * 2, 0);
      b_.assign(b_.size() * 2, 0);
      maskA_ = a_.size() - 1;
      maskB_ = b_.size() - 1;
    }
  }
}

bool OthelloMap::tryBuild(const std::vector<uint16_t>& values, uint64_t seedA,
                          uint64_t seedB) {
  const size_t na = a_.size();
  const size_t nb = b_.size();
  DisjointSet dsu(na + nb);

  struct Edge {
    uint32_t u;  // index into a_
    uint32_t v;  // index into b_
    uint16_t value;
  };
  std::vector<Edge> edges(buckets_);
  for (size_t bkt = 0; bkt < buckets_; ++bkt) {
    uint64_t bk = mix64(bkt + 1);
    uint32_t u = static_cast<uint32_t>(hashCombine(bk, seedA) & (na - 1));
    uint32_t v = static_cast<uint32_t>(hashCombine(bk, seedB) & (nb - 1));
    if (!dsu.unite(u, static_cast<uint32_t>(na + v))) {
      return false;  // cycle — this seed pair cannot satisfy all XORs
    }
    edges[bkt] = {u, v, values[bkt]};
  }

  // The edge set is a forest: fix each tree by walking from any node,
  // assigning neighbor = node XOR edge-value. Roots keep value 0.
  std::vector<std::vector<std::pair<uint32_t, uint16_t>>> adj(na + nb);
  for (const Edge& e : edges) {
    uint32_t vn = static_cast<uint32_t>(na + e.v);
    adj[e.u].emplace_back(vn, e.value);
    adj[vn].emplace_back(e.u, e.value);
  }
  std::fill(a_.begin(), a_.end(), 0);
  std::fill(b_.begin(), b_.end(), 0);
  std::vector<uint8_t> visited(na + nb, 0);
  std::vector<uint32_t> stack;
  auto slotValue = [&](uint32_t node) -> uint16_t& {
    return node < na ? a_[node] : b_[node - na];
  };
  for (uint32_t root = 0; root < na + nb; ++root) {
    if (visited[root] || adj[root].empty()) {
      continue;
    }
    visited[root] = 1;
    slotValue(root) = 0;
    stack.push_back(root);
    while (!stack.empty()) {
      uint32_t node = stack.back();
      stack.pop_back();
      for (auto [peer, val] : adj[node]) {
        if (visited[peer]) {
          continue;
        }
        visited[peer] = 1;
        slotValue(peer) = slotValue(node) ^ val;
        stack.push_back(peer);
      }
    }
  }
  return true;
}

}  // namespace zdr::l4lb
