// LRU connection table.
//
// §5.1 remediation: "we recommend adopting a connection table cache
// for the most recent flows … a Least Recently Used (LRU) cache in
// Katran to absorb such momentary shuffles and facilitate connections
// to be routed consistently to the same end server."
//
// Keys are flow hashes (4-tuple derived); values are backend names so
// an entry stays valid across consistent-hash rebuilds.
//
// Retained as the reference LRU for the §5.1 ablation and tests; the
// routing hot path now runs on the compact sharded FlowTable behind
// HybridRouter (see flow_table.h) — this node-based version costs
// ~150+ heap bytes per flow against FlowTable's 24-byte flat slots.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "metrics/metrics.h"

namespace zdr::l4lb {

class ConnTable {
 public:
  explicit ConnTable(size_t capacity) : capacity_(capacity) {}

  // Returns the pinned backend, refreshing recency.
  std::optional<std::string> lookup(uint64_t flowKey) {
    auto it = index_.find(flowKey);
    if (it == index_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  // Ordering contract (churn-regression audited): the existing-key
  // check ALWAYS precedes eviction, so refreshing a pinned flow can
  // never push another flow out; eviction runs only on the miss path,
  // and only as long as the table is actually over budget.
  void insert(uint64_t flowKey, std::string backend) {
    auto it = index_.find(flowKey);
    if (it != index_.end()) {
      it->second->second = std::move(backend);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (capacity_ == 0) {
      return;  // a zero-capacity table pins nothing — never evict-thrash
    }
    while (index_.size() >= capacity_ && !order_.empty()) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
    order_.emplace_front(flowKey, std::move(backend));
    index_[flowKey] = order_.begin();
  }

  void erase(uint64_t flowKey) {
    auto it = index_.find(flowKey);
    if (it != index_.end()) {
      order_.erase(it->second);
      index_.erase(it);
    }
  }

  [[nodiscard]] size_t size() const noexcept { return index_.size(); }
  [[nodiscard]] size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] uint64_t evictions() const noexcept { return evictions_; }

  // The hits/misses/evictions counters were recorded but never left
  // the table; publish them like ShardedFlowTable::exportTo does, so
  // either table flavor lands under `<prefix>shard<i>.*` in /__stats.
  void exportTo(MetricsRegistry& m, const std::string& prefix,
                size_t shardIdx = 0) const {
    std::string base = prefix + "shard" + std::to_string(shardIdx);
    m.gauge(base + ".hits").set(static_cast<double>(hits_));
    m.gauge(base + ".misses").set(static_cast<double>(misses_));
    m.gauge(base + ".evictions").set(static_cast<double>(evictions_));
    m.gauge(base + ".size").set(static_cast<double>(index_.size()));
  }

 private:
  size_t capacity_;
  std::list<std::pair<uint64_t, std::string>> order_;  // MRU at front
  std::unordered_map<uint64_t,
                     std::list<std::pair<uint64_t, std::string>>::iterator>
      index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace zdr::l4lb
