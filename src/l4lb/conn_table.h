// LRU connection table.
//
// §5.1 remediation: "we recommend adopting a connection table cache
// for the most recent flows … a Least Recently Used (LRU) cache in
// Katran to absorb such momentary shuffles and facilitate connections
// to be routed consistently to the same end server."
//
// Keys are flow hashes (4-tuple derived); values are backend names so
// an entry stays valid across consistent-hash rebuilds.
//
// Retained as the reference LRU for the §5.1 ablation and tests; the
// routing hot path now runs on the compact sharded FlowTable behind
// HybridRouter (see flow_table.h) — this node-based version costs
// ~150+ heap bytes per flow against FlowTable's 24-byte flat slots.
// Recency mechanics live in the shared LruMap (netcore/lru_map.h).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "metrics/metrics.h"
#include "netcore/lru_map.h"

namespace zdr::l4lb {

class ConnTable {
 public:
  explicit ConnTable(size_t capacity) : capacity_(capacity) {}

  // Returns the pinned backend, refreshing recency.
  std::optional<std::string> lookup(uint64_t flowKey) {
    std::string* backend = lru_.touch(flowKey);
    if (backend == nullptr) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    return *backend;
  }

  // Ordering contract (churn-regression audited): the existing-key
  // check ALWAYS precedes eviction, so refreshing a pinned flow can
  // never push another flow out; eviction runs only on the miss path,
  // and only as long as the table is actually over budget.
  void insert(uint64_t flowKey, std::string backend) {
    if (std::string* existing = lru_.touch(flowKey)) {
      *existing = std::move(backend);
      return;
    }
    if (capacity_ == 0) {
      return;  // a zero-capacity table pins nothing — never evict-thrash
    }
    while (lru_.size() >= capacity_ && lru_.evictOldest()) {
      ++evictions_;
    }
    lru_.insertFront(flowKey, std::move(backend));
  }

  void erase(uint64_t flowKey) { lru_.erase(flowKey); }

  [[nodiscard]] size_t size() const noexcept { return lru_.size(); }
  [[nodiscard]] size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] uint64_t evictions() const noexcept { return evictions_; }

  // The hits/misses/evictions counters were recorded but never left
  // the table; publish them like ShardedFlowTable::exportTo does, so
  // either table flavor lands under `<prefix>shard<i>.*` in /__stats.
  void exportTo(MetricsRegistry& m, const std::string& prefix,
                size_t shardIdx = 0) const {
    std::string base = prefix + "shard" + std::to_string(shardIdx);
    m.gauge(base + ".hits").set(static_cast<double>(hits_));
    m.gauge(base + ".misses").set(static_cast<double>(misses_));
    m.gauge(base + ".evictions").set(static_cast<double>(evictions_));
    m.gauge(base + ".size").set(static_cast<double>(lru_.size()));
  }

 private:
  size_t capacity_;
  LruMap<uint64_t, std::string> lru_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace zdr::l4lb
