#include "l4lb/balancer.h"

#include "l4lb/hashing.h"

namespace zdr::l4lb {

// One spliced client↔backend flow.
struct L4Balancer::Flow : std::enable_shared_from_this<L4Balancer::Flow> {
  ConnectionPtr client;
  ConnectionPtr backend;
  uint64_t flowKey = 0;
  bool established = false;
  Buffer pendingClientData;  // bytes read before the backend connected
};

L4Balancer::L4Balancer(EventLoop& loop, const SocketAddr& vip,
                       std::vector<BackendTarget> backends, Options opts,
                       MetricsRegistry* metrics)
    : loop_(loop),
      opts_(opts),
      metrics_(metrics),
      backends_(std::move(backends)),
      connTable_(opts.connTableCapacity) {
  hash_ = opts_.hash == HashKind::kMaglev
              ? std::unique_ptr<ConsistentHash>(std::make_unique<MaglevHash>())
              : std::make_unique<RingHash>();
  health_ = std::make_unique<HealthChecker>(
      loop_, backends_, opts_.health, [this] { rebuildHealthySet(); },
      metrics_);
  acceptor_ = std::make_unique<Acceptor>(
      loop_, TcpListener(vip),
      [this](TcpSocket sock) { onAccept(std::move(sock)); });
  rebuildHealthySet();
}

L4Balancer::~L4Balancer() = default;

void L4Balancer::bump(const std::string& name) {
  if (metrics_) {
    metrics_->counter(name).add();
  }
}

void L4Balancer::setBackends(std::vector<BackendTarget> backends) {
  backends_ = std::move(backends);
  health_ = std::make_unique<HealthChecker>(
      loop_, backends_, opts_.health, [this] { rebuildHealthySet(); },
      metrics_);
  rebuildHealthySet();
}

void L4Balancer::rebuildHealthySet() {
  healthy_ = health_->healthyTargets();
  std::vector<std::string> names;
  names.reserve(healthy_.size());
  for (const auto& t : healthy_) {
    names.push_back(t.name);
  }
  hash_->rebuild(names);
}

const BackendTarget* L4Balancer::chooseBackend(uint64_t flowKey) {
  // LRU pin first: absorbs momentary shuffles in the healthy set.
  if (opts_.useConnTable) {
    if (auto pinned = connTable_.lookup(flowKey)) {
      for (const auto& t : healthy_) {
        if (t.name == *pinned) {
          return &t;
        }
      }
      // Pinned backend no longer healthy: fall through to re-hash.
      connTable_.erase(flowKey);
    }
  }
  auto idx = hash_->pick(flowKey);
  if (!idx) {
    return nullptr;
  }
  const BackendTarget& target = healthy_[*idx];
  if (opts_.useConnTable) {
    connTable_.insert(flowKey, target.name);
  }
  return &target;
}

void L4Balancer::onAccept(TcpSocket sock) {
  bump("l4.flows_accepted");
  uint64_t flowKey = 0;
  try {
    SocketAddr peer = sock.peerAddr();
    flowKey = mix64(peer.hashKey());
  } catch (const std::system_error&) {
    return;  // client vanished before getpeername
  }

  const BackendTarget* target = chooseBackend(flowKey);
  if (target == nullptr) {
    bump("l4.flows_no_backend");
    return;  // drops the connection — no healthy backend
  }

  auto flow = std::make_shared<Flow>();
  flow->flowKey = flowKey;
  flow->client = Connection::make(loop_, std::move(sock));
  flows_.insert(flow);

  auto self = flow;
  flow->client->setDataCallback([self](Buffer& in) {
    if (self->established && self->backend) {
      self->backend->send(in.readable());
    } else {
      self->pendingClientData.append(in.readable());
    }
    in.clear();
  });
  flow->client->setCloseCallback([this, self](std::error_code) {
    if (self->backend) {
      self->backend->closeAfterFlush();
    }
    removeFlow(self);
  });
  flow->client->start();

  bump("l4.to." + target->name);
  Connector::connect(
      loop_, target->addr, [this, self](TcpSocket bsock, std::error_code ec) {
        if (ec || !self->client || !self->client->open()) {
          bump("l4.backend_connect_failed");
          if (self->client) {
            self->client->close(ec);
          }
          removeFlow(self);
          return;
        }
        self->backend = Connection::make(loop_, std::move(bsock));
        self->backend->setDataCallback([self](Buffer& in) {
          if (self->client) {
            self->client->send(in.readable());
          }
          in.clear();
        });
        self->backend->setCloseCallback([this, self](std::error_code) {
          if (self->client) {
            self->client->closeAfterFlush();
          }
          removeFlow(self);
        });
        self->backend->start();
        self->established = true;
        if (!self->pendingClientData.empty()) {
          self->backend->send(self->pendingClientData.readable());
          self->pendingClientData.clear();
        }
      });
}

void L4Balancer::removeFlow(const std::shared_ptr<Flow>& flow) {
  flows_.erase(flow);
}

}  // namespace zdr::l4lb
