#include "l4lb/balancer.h"

#include "l4lb/hashing.h"

namespace zdr::l4lb {

// One spliced client↔backend flow.
struct L4Balancer::Flow : std::enable_shared_from_this<L4Balancer::Flow> {
  ConnectionPtr client;
  ConnectionPtr backend;
  uint64_t flowKey = 0;
  bool established = false;
  Buffer pendingClientData;  // bytes read before the backend connected
};

namespace {

HybridRouter::Options routerOptions(const L4Balancer::Options& opts) {
  HybridRouter::Options ro;
  ro.fallback = opts.hash == L4Balancer::HashKind::kMaglev
                    ? HybridRouter::FallbackHash::kMaglev
                    : HybridRouter::FallbackHash::kRing;
  ro.shards = opts.flowShards;
  ro.flowCapacityPerShard =
      opts.flowShards > 0 ? opts.connTableCapacity / opts.flowShards
                          : opts.connTableCapacity;
  ro.churnWindow = opts.churnWindow;
  ro.useFlowTable = opts.useConnTable;
  ro.metricsPrefix = "l4.";
  return ro;
}

}  // namespace

L4Balancer::L4Balancer(EventLoop& loop, const SocketAddr& vip,
                       std::vector<BackendTarget> backends, Options opts,
                       MetricsRegistry* metrics)
    : loop_(loop),
      opts_(opts),
      metrics_(metrics),
      backends_(std::move(backends)),
      router_(routerOptions(opts), metrics) {
  health_ = std::make_unique<HealthChecker>(
      loop_, backends_, opts_.health, [this] { rebuildHealthySet(); },
      metrics_);
  acceptor_ = std::make_unique<Acceptor>(
      loop_, TcpListener(vip),
      [this](TcpSocket sock) { onAccept(std::move(sock)); });
  rebuildHealthySet();
  maintainTimer_ = loop_.runEvery(Duration{500},
                                  [this] { router_.maintain(Clock::now()); });
}

L4Balancer::~L4Balancer() {
  loop_.cancelTimer(maintainTimer_);
  // Flows capture `this` in their close callbacks and can outlive the
  // balancer: the Flow⇄Connection shared_ptr cycle only breaks when a
  // connection closes, so a flow whose FIN hasn't been dispatched yet
  // would still be registered with the loop after this destructor —
  // and its close callback would touch a dead balancer. Tear every
  // survivor down now, callbacks detached first.
  auto flows = std::move(flows_);
  for (const auto& f : flows) {
    if (f->client) {
      f->client->setCloseCallback(nullptr);
      f->client->close();
    }
    if (f->backend) {
      f->backend->setCloseCallback(nullptr);
      f->backend->close();
    }
  }
}

void L4Balancer::bump(const std::string& name) {
  if (metrics_) {
    metrics_->counter(name).add();
  }
}

void L4Balancer::setBackends(std::vector<BackendTarget> backends) {
  backends_ = std::move(backends);
  health_ = std::make_unique<HealthChecker>(
      loop_, backends_, opts_.health, [this] { rebuildHealthySet(); },
      metrics_);
  rebuildHealthySet();
}

void L4Balancer::noteTakeover() { router_.openChurnWindow(Clock::now()); }

void L4Balancer::rebuildHealthySet() {
  healthy_ = health_->healthyTargets();
  std::vector<std::string> names;
  names.reserve(healthy_.size());
  for (const auto& t : healthy_) {
    names.push_back(t.name);
  }
  // Every healthy-set change is a churn event: the router rebuilds
  // both lookup planes and arms first-packet promotion so flows that
  // arrive during the flap get pinned (§5.1).
  router_.setBackends(names, Clock::now());
}

const BackendTarget* L4Balancer::chooseBackend(uint64_t flowKey) {
  auto id = router_.route(flowKey, Clock::now());
  if (!id) {
    return nullptr;
  }
  const std::string& name = router_.nameOf(*id);
  for (const auto& t : healthy_) {
    if (t.name == name) {
      return &t;
    }
  }
  // The router only returns live ids, so a miss here means healthy_
  // changed mid-call — treat as no backend rather than misroute.
  return nullptr;
}

void L4Balancer::onAccept(TcpSocket sock) {
  bump("l4.flows_accepted");
  uint64_t flowKey = 0;
  try {
    SocketAddr peer = sock.peerAddr();
    flowKey = mix64(peer.hashKey());
  } catch (const std::system_error&) {
    return;  // client vanished before getpeername
  }

  const BackendTarget* target = chooseBackend(flowKey);
  if (target == nullptr) {
    bump("l4.flows_no_backend");
    return;  // drops the connection — no healthy backend
  }

  auto flow = std::make_shared<Flow>();
  flow->flowKey = flowKey;
  flow->client = Connection::make(loop_, std::move(sock));
  flows_.insert(flow);

  auto self = flow;
  flow->client->setDataCallback([self](Buffer& in) {
    if (self->established && self->backend) {
      self->backend->send(in.readable());
    } else {
      self->pendingClientData.append(in.readable());
    }
    in.clear();
  });
  flow->client->setCloseCallback([this, self](std::error_code) {
    if (self->backend) {
      self->backend->closeAfterFlush();
    }
    removeFlow(self);
  });
  flow->client->start();

  bump("l4.to." + target->name);
  Connector::connect(
      loop_, target->addr, [this, self](TcpSocket bsock, std::error_code ec) {
        if (ec || !self->client || !self->client->open()) {
          bump("l4.backend_connect_failed");
          if (self->client) {
            self->client->close(ec);
          }
          removeFlow(self);
          return;
        }
        self->backend = Connection::make(loop_, std::move(bsock));
        self->backend->setDataCallback([self](Buffer& in) {
          if (self->client) {
            self->client->send(in.readable());
          }
          in.clear();
        });
        self->backend->setCloseCallback([this, self](std::error_code) {
          if (self->client) {
            self->client->closeAfterFlush();
          }
          removeFlow(self);
        });
        self->backend->start();
        self->established = true;
        if (!self->pendingClientData.empty()) {
          self->backend->send(self->pendingClientData.readable());
          self->pendingClientData.clear();
        }
      });
}

void L4Balancer::removeFlow(const std::shared_ptr<Flow>& flow) {
  flows_.erase(flow);
}

}  // namespace zdr::l4lb
