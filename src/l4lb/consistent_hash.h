// Consistent-hash backend selection, as used by Katran to spread flows
// across the L7LB fleet (§2.1). Two implementations:
//
//  * RingHash — classic consistent hashing with virtual nodes, and
//  * MaglevHash — Google's Maglev lookup-table algorithm [26],
//
// ablated against each other for mapping stability when the backend
// set churns (the paper's §5.1 discusses how momentary health flaps
// shuffle the routing topology).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace zdr::l4lb {

class ConsistentHash {
 public:
  virtual ~ConsistentHash() = default;

  // Replaces the backend set. Order defines the indices `pick` returns.
  virtual void rebuild(const std::vector<std::string>& backends) = 0;

  // Maps a flow key to a backend index; nullopt when no backends.
  [[nodiscard]] virtual std::optional<size_t> pick(uint64_t key) const = 0;

  [[nodiscard]] virtual size_t backendCount() const = 0;
};

class RingHash final : public ConsistentHash {
 public:
  explicit RingHash(size_t vnodesPerBackend = 100)
      : vnodes_(vnodesPerBackend) {}

  void rebuild(const std::vector<std::string>& backends) override;
  [[nodiscard]] std::optional<size_t> pick(uint64_t key) const override;
  [[nodiscard]] size_t backendCount() const override { return count_; }

 private:
  size_t vnodes_;
  size_t count_ = 0;
  std::vector<std::pair<uint64_t, size_t>> ring_;  // sorted by hash
};

class MaglevHash final : public ConsistentHash {
 public:
  // `tableSize` must be prime and > ~2× max backends; 2039 suits tests,
  // 65537 matches production-scale tables.
  explicit MaglevHash(size_t tableSize = 2039) : tableSize_(tableSize) {}

  void rebuild(const std::vector<std::string>& backends) override;
  [[nodiscard]] std::optional<size_t> pick(uint64_t key) const override;
  [[nodiscard]] size_t backendCount() const override { return count_; }

 private:
  size_t tableSize_;
  size_t count_ = 0;
  std::vector<int32_t> table_;  // backend index per slot; -1 when empty
};

// Fraction of `samples` keys whose mapping differs between `a` and `b`
// (both already rebuilt). Used to quantify remap disruption.
[[nodiscard]] double remapFraction(const ConsistentHash& a,
                                   const ConsistentHash& b, size_t samples);

}  // namespace zdr::l4lb
