#include "release/release.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace zdr::release {

namespace {
using SteadyClock = std::chrono::steady_clock;
}

RollingReleaseReport runRollingRelease(
    const std::vector<RestartableHost*>& hosts,
    const RollingReleaseOptions& options) {
  RollingReleaseReport report;
  report.hosts = hosts.size();
  if (hosts.empty()) {
    return report;
  }
  auto emit = [&](const std::string& e) {
    if (options.onEvent) {
      options.onEvent(e);
    }
  };

  size_t batchSize = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(options.batchFraction *
                       static_cast<double>(hosts.size()))));
  auto start = SteadyClock::now();

  for (size_t offset = 0; offset < hosts.size(); offset += batchSize) {
    size_t end = std::min(hosts.size(), offset + batchSize);
    ++report.batches;
    emit("batch_start " + std::to_string(report.batches));

    for (size_t i = offset; i < end; ++i) {
      emit("restart_begin " + hosts[i]->hostName());
      hosts[i]->beginRestart(options.strategy);
    }

    auto batchStart = SteadyClock::now();
    while (true) {
      bool allDone = true;
      for (size_t i = offset; i < end; ++i) {
        if (!hosts[i]->restartComplete()) {
          allDone = false;
          break;
        }
      }
      if (allDone) {
        break;
      }
      if (SteadyClock::now() - batchStart > options.perBatchTimeout) {
        report.timedOut = true;
        for (size_t i = offset; i < end; ++i) {
          if (!hosts[i]->restartComplete()) {
            report.stuckHosts.push_back(hosts[i]->hostName());
            emit("host_stuck " + hosts[i]->hostName());
          }
        }
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    emit("batch_done " + std::to_string(report.batches));
    if (report.timedOut) {
      break;
    }
    if (end < hosts.size() && options.interBatchGap.count() > 0) {
      std::this_thread::sleep_for(options.interBatchGap);
    }
  }

  report.totalSeconds =
      std::chrono::duration<double>(SteadyClock::now() - start).count();
  emit("release_done");
  return report;
}

}  // namespace zdr::release
