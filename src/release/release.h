// Rolling-release orchestration (§2.3, §6.1).
//
// Operators roll updates in batches: each batch of instances enters
// draining, and once drained (or after the drain period) restarts with
// the new code. The two strategies compared throughout the paper:
//
//  * HardRestart — the traditional flow: the instance fails health
//    checks, takes no new connections, drains, then terminates; the
//    host contributes nothing until the new instance boots.
//  * Zero Downtime Release — Socket Takeover spins the updated
//    instance in parallel; the host keeps serving throughout.
//
// The controller runs on a driver thread and blocks; hosts expose an
// asynchronous restart that reports completion.
#pragma once

#include <chrono>
#include <functional>
#include <string>
#include <vector>

namespace zdr::release {

enum class Strategy : uint8_t { kHardRestart, kZeroDowntime };

// Anything the rolling release can restart (proxy host, app host).
class RestartableHost {
 public:
  virtual ~RestartableHost() = default;
  [[nodiscard]] virtual std::string hostName() const = 0;
  // Kicks off a restart with the given strategy. Non-blocking.
  virtual void beginRestart(Strategy strategy) = 0;
  // True once the restart has fully completed (old instance gone, new
  // instance serving).
  [[nodiscard]] virtual bool restartComplete() const = 0;
};

struct RollingReleaseOptions {
  Strategy strategy = Strategy::kZeroDowntime;
  // Fraction of hosts restarted per batch (paper tests 5% and 20%).
  double batchFraction = 0.2;
  // Pause between batches (the "minutes 57 and 80–83" gaps of Fig 3a).
  std::chrono::milliseconds interBatchGap{0};
  // Safety valve for a stuck host.
  std::chrono::milliseconds perBatchTimeout{30000};
  // Observer invoked as the release progresses (for timelines).
  std::function<void(const std::string& event)> onEvent;
};

struct RollingReleaseReport {
  size_t hosts = 0;
  size_t batches = 0;
  double totalSeconds = 0;
  bool timedOut = false;
  // Hosts whose restart had not completed when their batch hit
  // perBatchTimeout (each is also reported via onEvent as
  // "host_stuck <name>"). The release stops after a stuck batch —
  // rolling further on top of an unhealthy fleet compounds the damage.
  std::vector<std::string> stuckHosts;
};

// Blocking: rolls the update across `hosts` in batches. Call from a
// driver thread, never from an event-loop thread.
RollingReleaseReport runRollingRelease(
    const std::vector<RestartableHost*>& hosts,
    const RollingReleaseOptions& options);

}  // namespace zdr::release
