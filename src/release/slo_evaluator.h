// SLO evaluation over /__stats scrapes.
//
// §5.1: "degradation in the health of a service being released even at
// a micro level … can escalate to a system wide availability risk."
// The release controller therefore judges every stage purely from the
// outside: scrape the serving fleet's introspection endpoint, extract
// the health signals the paper's operators watch (client-visible error
// rate, tail latency, load shed, drain stragglers, breaker trips,
// tunnel drops), compare them against a baseline captured at stage
// entry, and grade the result Ok / soft breach / hard breach.
//
// All counter signals are *deltas* against the stage baseline — the
// scrape documents are cumulative, and a stage must be judged on what
// changed on its watch, not on history. The latency signal is the
// client-side p99 relative to its stage-entry value (cumulative
// histograms move slowly, so thresholds are calibrated for sustained
// regressions — exactly the kind a bad binary produces).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/stats_scrape.h"

namespace zdr::release {

enum class SloLevel : uint8_t { kOk, kSoft, kHard };

[[nodiscard]] const char* sloLevelName(SloLevel level);

struct SloThresholds {
  // Client-visible failure rate over the stage window: (err_http +
  // err_timeout) / completed, summed over the configured client
  // prefixes. Transport resets are excluded — graceful drains close
  // idle keep-alive connections, and that race is retryable, not a
  // failed response. Soft pauses, hard rolls back.
  double errRateSoft = 0.002;
  double errRateHard = 0.01;
  // Rates are meaningless over a handful of requests; below this many
  // completed-or-failed requests since baseline, rate checks abstain.
  double minRequestsForRate = 20;

  // Client p99 latency inflation vs the stage baseline (ratio), only
  // consulted once the current p99 clears the absolute floor — a 2 ms
  // p99 doubling to 4 ms is noise, not a regression.
  double p99InflationSoft = 2.0;
  double p99InflationHard = 4.0;
  double p99FloorMs = 20.0;

  // Edge fast-503 sheds per completed request.
  double shedRateSoft = 0.01;
  double shedRateHard = 0.05;

  // Absolute counts over the stage window.
  double breakerTripsSoft = 3;
  double breakerTripsHard = 10;
  double drainStragglersSoft = 1;
  double drainStragglersHard = 4;
  double mqttDropsSoft = 1;
  double mqttDropsHard = 8;
};

// Where in the scrape the signals live. Client prefixes name the
// workload generators whose counters define the user-visible view;
// the rest are the serving-side names registered by the proxy tiers.
struct SloSignals {
  std::vector<std::string> clientPrefixes;  // e.g. {"load", "up", "mq"}
  // Exact histogram whose ".p99" drives the latency SLO.
  std::string latencyHist = "load.latency_ms";
  std::string shedCounter = "edge.err.shed";
  std::string breakerCounter = "pool.breaker_open";
  std::string stragglerCounter = "release.drain_deadline_exceeded";
  std::string mqttDropSuffix = ".drops";  // summed over clientPrefixes
};

// One scrape reduced to the stage-relative numbers a decision (and the
// release report's machine check) needs.
struct SloSample {
  double tNs = 0;
  double okDelta = 0;
  double errDelta = 0;
  double shedDelta = 0;
  double breakerDelta = 0;
  double stragglerDelta = 0;
  double mqttDropDelta = 0;
  double p99Ms = 0;
  double baselineP99Ms = 0;

  [[nodiscard]] double requests() const { return okDelta + errDelta; }
  [[nodiscard]] double errRate() const {
    return requests() > 0 ? errDelta / requests() : 0.0;
  }
  [[nodiscard]] double shedRate() const {
    return requests() > 0 ? shedDelta / requests() : 0.0;
  }
};

struct SloVerdict {
  SloLevel level = SloLevel::kOk;
  // Machine-readable-ish: "err_rate 0.031 > hard 0.01". Empty when Ok.
  std::string reason;
};

class SloEvaluator {
 public:
  SloEvaluator(SloSignals signals, SloThresholds thresholds)
      : signals_(std::move(signals)), thresholds_(thresholds) {}

  // Stage entry: every subsequent sample is measured from here.
  void setBaseline(const stats::StatsSnapshot& snap);

  [[nodiscard]] SloSample extract(const stats::StatsSnapshot& snap) const;
  [[nodiscard]] SloVerdict judge(const SloSample& sample) const;

  [[nodiscard]] const SloThresholds& thresholds() const noexcept {
    return thresholds_;
  }
  [[nodiscard]] const SloSignals& signals() const noexcept {
    return signals_;
  }

  // Absolute signal values of one scrape (stage baselines are recorded
  // into the release report so every delta is reconstructible).
  struct Absolutes {
    double ok = 0;
    double err = 0;
    double shed = 0;
    double breakerTrips = 0;
    double drainStragglers = 0;
    double mqttDrops = 0;
    double p99Ms = 0;
  };
  [[nodiscard]] Absolutes absolutes(const stats::StatsSnapshot& snap) const;
  [[nodiscard]] const Absolutes& baseline() const noexcept {
    return baseline_;
  }

 private:
  SloSignals signals_;
  SloThresholds thresholds_;
  Absolutes baseline_{};
};

}  // namespace zdr::release
