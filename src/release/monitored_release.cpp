#include "release/monitored_release.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace zdr::release {

namespace {

using SteadyClock = std::chrono::steady_clock;

// Restarts `hosts` and waits for completion; returns false on timeout.
bool restartAndWait(const std::vector<RestartableHost*>& hosts,
                    Strategy strategy,
                    std::chrono::milliseconds timeout) {
  for (auto* h : hosts) {
    h->beginRestart(strategy);
  }
  auto start = SteadyClock::now();
  while (true) {
    bool allDone = true;
    for (auto* h : hosts) {
      if (!h->restartComplete()) {
        allDone = false;
        break;
      }
    }
    if (allDone) {
      return true;
    }
    if (SteadyClock::now() - start > timeout) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

}  // namespace

MonitoredReleaseReport runMonitoredRelease(
    const std::vector<RestartableHost*>& hosts,
    const MonitoredReleaseOptions& options) {
  MonitoredReleaseReport report;
  if (hosts.empty()) {
    return report;
  }
  auto emit = [&](const std::string& e) {
    if (options.onEvent) {
      options.onEvent(e);
    }
  };
  auto checkHealth = [&]() -> HealthVerdict {
    return options.healthGate ? options.healthGate() : HealthVerdict{};
  };
  auto start = SteadyClock::now();
  auto finish = [&](ReleaseOutcome outcome) {
    report.outcome = outcome;
    report.totalSeconds =
        std::chrono::duration<double>(SteadyClock::now() - start).count();
    return report;
  };

  size_t batchSize = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(
             options.batchFraction * static_cast<double>(hosts.size()))));

  std::vector<RestartableHost*> released;
  for (size_t offset = 0; offset < hosts.size(); offset += batchSize) {
    size_t end = std::min(hosts.size(), offset + batchSize);
    std::vector<RestartableHost*> batch(hosts.begin() + offset,
                                        hosts.begin() + end);
    bool canary = offset == 0;
    emit(std::string(canary ? "canary_start" : "batch_start") + " " +
         std::to_string(report.batchesCompleted + 1));

    if (!restartAndWait(batch, options.strategy, options.perBatchTimeout)) {
      report.haltedBatch = report.batchesCompleted + 1;
      report.haltReason = "batch restart timed out";
      emit("batch_timeout " + std::to_string(report.haltedBatch));
      return finish(ReleaseOutcome::kAborted);
    }
    released.insert(released.end(), batch.begin(), batch.end());
    ++report.batchesCompleted;
    report.hostsReleased += batch.size();

    std::this_thread::sleep_for(options.canarySoak);
    HealthVerdict verdict = checkHealth();
    if (!verdict.healthy) {
      // Regression: roll every released host back to the known-good
      // binary (modelled as one more restart). The halting batch and
      // the gate's reason travel with the report.
      report.haltedBatch = report.batchesCompleted;
      report.haltReason = verdict.reason;
      emit("health_regression_rollback batch=" +
           std::to_string(report.haltedBatch) + " reason=" + verdict.reason);
      if (!restartAndWait(released, options.strategy,
                          options.perBatchTimeout)) {
        report.haltReason += "; rollback restart timed out";
        return finish(ReleaseOutcome::kAborted);
      }
      report.hostsRolledBack = released.size();
      return finish(ReleaseOutcome::kRolledBack);
    }
    emit("batch_healthy " + std::to_string(report.batchesCompleted));

    if (end < hosts.size() && options.interBatchGap.count() > 0) {
      std::this_thread::sleep_for(options.interBatchGap);
    }
  }
  emit("release_done");
  return finish(ReleaseOutcome::kCompleted);
}

}  // namespace zdr::release
