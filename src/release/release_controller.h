// Fleet-scale release controller: SLO-gated staged rollouts.
//
// MonitoredRelease gates batches on an in-process callback; real
// release tooling sits *outside* the fleet and decides from scraped
// signals alone (§5.1's "health of the service … monitored during the
// release phase"). This controller drives a staged, multi-tier,
// multi-PoP rollout — one stage per (tier, PoP), edge tier before
// origin tier — where every continue / pause / rollback decision comes
// from /__stats scrapes evaluated by an SloEvaluator against a
// baseline captured at stage entry.
//
// Stage state machine:
//
//        ┌────────── releasing ◄──────────┐ resume (confirmed Ok)
//        │               │ soft breach    │
//   batch loop           ▼ (confirmed)    │
//        │            paused ─────────────┘
//        │               │ hard breach, budget burn,
//        ▼               │ grace exhausted, or blind
//     soaking            ▼
//        │ ok         rolling back ──► rolled_back (rollout stops)
//        ▼               │ restart timeout
//    completed           └─────────────► aborted
//
// Debounce: a breach must hold for `confirmScrapes` consecutive
// scrapes before the controller acts (a single hot sample must not
// flap a fleet-wide release); recovery similarly needs `confirmScrapes`
// consecutive Ok scrapes. A hard breach rolls back *the offending
// stage only* — hosts already released by completed stages keep the
// new binary; undoing a verified-healthy stage is its own risk.
//
// Every decision (including each observation) is recorded with the
// sample it was made from, and the whole run serializes into
// RELEASE_report.json with per-stage disruption budgets — the report
// is machine-checked in CI by scripts/check_release_report.py.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "metrics/metrics.h"
#include "netcore/event_loop.h"
#include "netcore/socket_addr.h"
#include "release/release.h"
#include "release/slo_evaluator.h"

namespace zdr::http {
class Client;
}

namespace zdr::release {

// One scrape of a PoP's /__stats endpoint. The controller never reads
// in-process state: everything it knows arrives through this.
class StatsSource {
 public:
  virtual ~StatsSource() = default;
  // False ⇒ `err` says why. Failures count against the controller's
  // flying-blind tolerance, not as an SLO breach.
  virtual bool scrape(stats::StatsSnapshot& out, std::string& err) = 0;
  [[nodiscard]] virtual std::string describe() const = 0;
};

// Blocking scraper over one or more live HTTP entries of a PoP (any
// edge serves /__stats; extra entries are failover targets so one
// restarting edge cannot blind the controller).
class HttpStatsSource final : public StatsSource {
 public:
  explicit HttpStatsSource(std::vector<SocketAddr> entries,
                           Duration timeout = Duration{3000});
  ~HttpStatsSource() override;
  bool scrape(stats::StatsSnapshot& out, std::string& err) override;
  [[nodiscard]] std::string describe() const override;

 private:
  bool scrapeOne(const SocketAddr& entry, stats::StatsSnapshot& out,
                 std::string& err);

  std::vector<SocketAddr> entries_;
  Duration timeout_;
  size_t preferred_ = 0;  // last entry that answered
  EventLoopThread thread_;
  std::shared_ptr<http::Client> client_;
  SocketAddr clientEntry_{};
};

// What one stage is allowed to burn. Client-visible errors default to
// zero: the paper's bar is *disruption-free*, and the machine check
// holds the report to it.
struct DisruptionBudget {
  double maxClientErrors = 0;
  double maxShedRequests = 0;
  double maxMqttDrops = 0;
  double maxDrainStragglers = 2;
};

struct StageSpec {
  std::string name;  // e.g. "edge/pop0"
  std::string tier;  // "edge" | "origin" | "app"
  std::string pop;
  std::vector<RestartableHost*> hosts;
  StatsSource* stats = nullptr;
  SloSignals signals;
  double batchFraction = 0.5;
  DisruptionBudget budget;
};

enum class StageOutcome : uint8_t {
  kNotStarted,
  kCompleted,
  kRolledBack,
  kAborted,   // rollback itself failed to converge
  kSkipped,   // an earlier stage failed; never started
};

[[nodiscard]] const char* stageOutcomeName(StageOutcome o);

enum class RolloutOutcome : uint8_t { kCompleted, kRolledBack, kAborted };

[[nodiscard]] const char* rolloutOutcomeName(RolloutOutcome o);

// One controller decision (observations included — the report must let
// a reader re-derive every action from the samples alone).
struct StageDecision {
  double tMs = 0;  // since controller start
  // observe | baseline | batch_start | batch_done | pause | resume |
  // rollback | rollback_done | complete | scrape_failure | abort
  std::string action;
  SloLevel level = SloLevel::kOk;
  std::string reason;
  SloSample sample;
  bool hasSample = false;
};

struct StageReport {
  std::string name;
  std::string tier;
  std::string pop;
  std::vector<std::string> hosts;
  StageOutcome outcome = StageOutcome::kNotStarted;
  size_t batchesCompleted = 0;
  size_t hostsReleased = 0;
  size_t hostsRolledBack = 0;
  size_t pauses = 0;
  double seconds = 0;
  SloEvaluator::Absolutes baseline{};
  DisruptionBudget budget;
  struct Consumed {
    double clientErrors = 0;
    double shedRequests = 0;
    double mqttDrops = 0;
    double drainStragglers = 0;
  } consumed;
  bool withinBudget = true;
  std::vector<StageDecision> decisions;
};

struct ReleaseControllerReport {
  RolloutOutcome outcome = RolloutOutcome::kCompleted;
  Strategy strategy = Strategy::kZeroDowntime;
  double totalSeconds = 0;
  size_t hostsReleased = 0;
  size_t hostsRolledBack = 0;
  uint64_t scrapes = 0;
  uint64_t scrapeFailures = 0;
  SloThresholds slo;
  std::vector<StageReport> stages;

  [[nodiscard]] std::string toJson() const;
  // Returns false on I/O failure.
  bool writeJson(const std::string& path) const;
};

struct ReleaseControllerOptions {
  Strategy strategy = Strategy::kZeroDowntime;
  SloThresholds slo;
  // Scrape cadence while a stage is active.
  Duration scrapeInterval{100};
  Duration perBatchTimeout{30000};
  // Consecutive breaching scrapes before the controller acts, and
  // consecutive Ok scrapes before a paused stage resumes.
  int confirmScrapes = 2;
  // Ok scrapes required after the last batch before the stage
  // completes (the canary-soak analogue, measured not slept).
  int stageSoakScrapes = 3;
  // Scrapes a paused stage waits for recovery before escalating the
  // soft breach to a rollback.
  int pauseGraceScrapes = 20;
  // Consecutive Ok scrapes required between batches before the next
  // batch launches. The data plane needs time to re-converge around a
  // just-restarted batch (trunks re-dialed, pools refilled); launching
  // the next batch on restartComplete alone can drain the last healthy
  // path to a tier while its peers are still re-establishing. 0
  // disables the gate (batches launch back-to-back).
  int interBatchScrapes = 2;
  // Consecutive scrape failures before the controller declares itself
  // blind and rolls the stage back (never continue unobserved).
  int maxScrapeFailures = 10;
  std::function<void(const std::string& event)> onEvent;
  // Test/scenario hooks around stage boundaries.
  std::function<void(const StageSpec&, size_t stageIdx)> onStageStart;
  std::function<void(const StageSpec&, size_t stageIdx)> onStageRollback;
  // Controller-side instruments (release.controller.* / slo.*);
  // nullptr ⇒ unmetered.
  MetricsRegistry* metrics = nullptr;
};

class ReleaseController {
 public:
  ReleaseController(std::vector<StageSpec> stages,
                    ReleaseControllerOptions options);

  // Blocking: drives the whole rollout on the caller's thread (never
  // an event-loop thread). One controller, one run.
  ReleaseControllerReport run();

 private:
  struct StageRun;
  void runStage(StageSpec& spec, size_t idx, StageReport& out);
  // One scrape → sample → verdict → recorded decision; updates the
  // stage's debounce counters, budget consumption and pending flags.
  void observe(StageSpec& spec, StageRun& run, StageReport& out);
  // Restarts `batch` and observes until every host reports complete.
  // False ⇒ perBatchTimeout expired (stage must abort).
  bool restartBatchAndWait(StageSpec& spec,
                           const std::vector<RestartableHost*>& batch,
                           StageRun& run, StageReport& out);
  // Paused stage waiting for recovery. True ⇒ resumed; false ⇒ the
  // breach persisted (or hardened) and the stage must roll back.
  bool pauseAndAwaitRecovery(StageSpec& spec, StageRun& run,
                             StageReport& out);
  void rollbackStage(StageSpec& spec, size_t idx, StageRun& run,
                     StageReport& out);
  void record(StageReport& out, const std::string& action, SloLevel level,
              const std::string& reason, const SloSample* sample = nullptr);
  void emit(const std::string& event);
  void bump(const std::string& name, uint64_t n = 1);

  std::vector<StageSpec> stages_;
  ReleaseControllerOptions opts_;
  ReleaseControllerReport report_;
  Stopwatch clock_;
  bool stopRollout_ = false;
};

}  // namespace zdr::release
