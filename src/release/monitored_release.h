// Canary-gated rolling release with automatic rollback.
//
// §5.1: "It is a common practice to roll back the newly released
// software to a last known version to mitigate ongoing issues" and
// "degradation in the health of a service being released even at a
// micro level … can escalate to a system wide availability risk".
// Production releases therefore canary the first batch and watch
// health signals before (and while) proceeding.
//
// MonitoredRelease wraps the plain rolling release with:
//  * a canary phase: the first batch restarts alone, then a health
//    probe decides whether the rollout continues;
//  * per-batch health gates: any regression halts the release and
//    triggers rollback (restarting the affected hosts again, which in
//    this model reverts them to the known-good binary).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "release/release.h"

namespace zdr::release {

enum class ReleaseOutcome : uint8_t {
  kCompleted,       // all batches rolled out, health stayed green
  kRolledBack,      // regression detected; affected hosts re-restarted
  kAborted,         // regression detected; rollback itself failed
};

// Gate result: healthy or not, and if not, why. Implicitly
// constructible from bool so existing boolean gates keep working.
struct HealthVerdict {
  bool healthy = true;
  std::string reason;

  HealthVerdict() = default;
  HealthVerdict(bool h)  // NOLINT(google-explicit-constructor)
      : healthy(h), reason(h ? "" : "health gate returned false") {}
  HealthVerdict(bool h, std::string r) : healthy(h), reason(std::move(r)) {}
};

struct MonitoredReleaseOptions {
  Strategy strategy = Strategy::kZeroDowntime;
  double batchFraction = 0.2;
  std::chrono::milliseconds interBatchGap{0};
  std::chrono::milliseconds perBatchTimeout{30000};
  // Settle time between a batch finishing and its health evaluation
  // (metrics need a beat to reflect the new binary).
  std::chrono::milliseconds canarySoak{100};
  // Health gate: an unhealthy verdict declares the release regressing
  // and its reason lands in the report. Called after the canary batch
  // and after every subsequent batch. Boolean lambdas still convert.
  std::function<HealthVerdict()> healthGate;
  std::function<void(const std::string& event)> onEvent;
};

struct MonitoredReleaseReport {
  ReleaseOutcome outcome = ReleaseOutcome::kCompleted;
  size_t batchesCompleted = 0;
  size_t hostsReleased = 0;
  size_t hostsRolledBack = 0;
  double totalSeconds = 0;
  // Which batch (1-based, matching the onEvent numbering) halted the
  // release and why; 0 / empty when the release completed. A report
  // that says only "kRolledBack" is useless at the postmortem — the
  // cause must travel with the outcome.
  size_t haltedBatch = 0;
  std::string haltReason;
};

// Blocking; call from a driver thread.
MonitoredReleaseReport runMonitoredRelease(
    const std::vector<RestartableHost*>& hosts,
    const MonitoredReleaseOptions& options);

}  // namespace zdr::release
