#include "release/slo_evaluator.h"

#include <cstdio>

namespace zdr::release {

const char* sloLevelName(SloLevel level) {
  switch (level) {
    case SloLevel::kOk:
      return "ok";
    case SloLevel::kSoft:
      return "soft";
    case SloLevel::kHard:
      return "hard";
  }
  return "unknown";
}

namespace {

std::string fmtReason(const char* metric, double value, const char* band,
                      double limit) {
  char buf[128];
  std::snprintf(buf, sizeof buf, "%s %.4g > %s %.4g", metric, value, band,
                limit);
  return buf;
}

}  // namespace

SloEvaluator::Absolutes SloEvaluator::absolutes(
    const stats::StatsSnapshot& snap) const {
  Absolutes a;
  for (const auto& prefix : signals_.clientPrefixes) {
    a.ok += snap.counter(prefix + ".ok");
    // err_transport is deliberately excluded: a graceful drain may
    // close an idle keep-alive connection mid-race, which surfaces as
    // a retryable reset — the tier-1 ZDR bar (and this SLO) counts
    // failed responses and hangs, not retryable connection churn.
    a.err += snap.counter(prefix + ".err_http") +
             snap.counter(prefix + ".err_timeout");
    a.mqttDrops += snap.counter(prefix + signals_.mqttDropSuffix);
  }
  a.shed = snap.counter(signals_.shedCounter);
  a.breakerTrips = snap.counter(signals_.breakerCounter);
  a.drainStragglers = snap.counter(signals_.stragglerCounter);
  a.p99Ms = snap.histValue(signals_.latencyHist + ".p99");
  return a;
}

void SloEvaluator::setBaseline(const stats::StatsSnapshot& snap) {
  baseline_ = absolutes(snap);
}

SloSample SloEvaluator::extract(const stats::StatsSnapshot& snap) const {
  Absolutes cur = absolutes(snap);
  SloSample s;
  s.tNs = snap.tNs;
  // Counters are monotonic; a negative delta would mean the instance
  // was reset under us — clamp rather than reward it.
  auto delta = [](double now, double base) {
    return now > base ? now - base : 0.0;
  };
  s.okDelta = delta(cur.ok, baseline_.ok);
  s.errDelta = delta(cur.err, baseline_.err);
  s.shedDelta = delta(cur.shed, baseline_.shed);
  s.breakerDelta = delta(cur.breakerTrips, baseline_.breakerTrips);
  s.stragglerDelta = delta(cur.drainStragglers, baseline_.drainStragglers);
  s.mqttDropDelta = delta(cur.mqttDrops, baseline_.mqttDrops);
  s.p99Ms = cur.p99Ms;
  s.baselineP99Ms = baseline_.p99Ms;
  return s;
}

SloVerdict SloEvaluator::judge(const SloSample& s) const {
  const SloThresholds& t = thresholds_;
  SloVerdict v;
  auto breach = [&](SloLevel level, std::string reason) {
    // Keep the worst breach; the first hard reason wins over any soft.
    if (static_cast<int>(level) > static_cast<int>(v.level)) {
      v.level = level;
      v.reason = std::move(reason);
    }
  };

  if (s.requests() >= t.minRequestsForRate) {
    double er = s.errRate();
    if (er > t.errRateHard) {
      breach(SloLevel::kHard, fmtReason("err_rate", er, "hard", t.errRateHard));
    } else if (er > t.errRateSoft) {
      breach(SloLevel::kSoft, fmtReason("err_rate", er, "soft", t.errRateSoft));
    }
    double sr = s.shedRate();
    if (sr > t.shedRateHard) {
      breach(SloLevel::kHard,
             fmtReason("shed_rate", sr, "hard", t.shedRateHard));
    } else if (sr > t.shedRateSoft) {
      breach(SloLevel::kSoft,
             fmtReason("shed_rate", sr, "soft", t.shedRateSoft));
    }
  }

  if (s.p99Ms > t.p99FloorMs) {
    // A silent baseline (no traffic before the stage) grades against
    // the floor instead, so a cold stage cannot divide by zero its way
    // past the latency SLO.
    double base = s.baselineP99Ms > 0 ? s.baselineP99Ms : t.p99FloorMs;
    double inflation = s.p99Ms / base;
    if (inflation > t.p99InflationHard) {
      breach(SloLevel::kHard,
             fmtReason("p99_inflation", inflation, "hard", t.p99InflationHard));
    } else if (inflation > t.p99InflationSoft) {
      breach(SloLevel::kSoft,
             fmtReason("p99_inflation", inflation, "soft", t.p99InflationSoft));
    }
  }

  if (s.breakerDelta > t.breakerTripsHard) {
    breach(SloLevel::kHard,
           fmtReason("breaker_trips", s.breakerDelta, "hard",
                     t.breakerTripsHard));
  } else if (s.breakerDelta > t.breakerTripsSoft) {
    breach(SloLevel::kSoft,
           fmtReason("breaker_trips", s.breakerDelta, "soft",
                     t.breakerTripsSoft));
  }

  if (s.stragglerDelta > t.drainStragglersHard) {
    breach(SloLevel::kHard,
           fmtReason("drain_stragglers", s.stragglerDelta, "hard",
                     t.drainStragglersHard));
  } else if (s.stragglerDelta > t.drainStragglersSoft) {
    breach(SloLevel::kSoft,
           fmtReason("drain_stragglers", s.stragglerDelta, "soft",
                     t.drainStragglersSoft));
  }

  if (s.mqttDropDelta > t.mqttDropsHard) {
    breach(SloLevel::kHard,
           fmtReason("mqtt_drops", s.mqttDropDelta, "hard", t.mqttDropsHard));
  } else if (s.mqttDropDelta > t.mqttDropsSoft) {
    breach(SloLevel::kSoft,
           fmtReason("mqtt_drops", s.mqttDropDelta, "soft", t.mqttDropsSoft));
  }

  return v;
}

}  // namespace zdr::release
