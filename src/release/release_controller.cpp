#include "release/release_controller.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "http/client.h"
#include "metrics/json_lite.h"

namespace zdr::release {

// ---------------------------------------------------------------------------
// HttpStatsSource

HttpStatsSource::HttpStatsSource(std::vector<SocketAddr> entries,
                                 Duration timeout)
    : entries_(std::move(entries)), timeout_(timeout), thread_("scraper") {}

HttpStatsSource::~HttpStatsSource() {
  if (client_) {
    auto client = client_;
    thread_.runSync([client] { client->close(); });
  }
}

std::string HttpStatsSource::describe() const {
  std::string out = "http:";
  for (size_t i = 0; i < entries_.size(); ++i) {
    out += (i ? "," : "") + entries_[i].str();
  }
  return out;
}

bool HttpStatsSource::scrapeOne(const SocketAddr& entry,
                                stats::StatsSnapshot& out, std::string& err) {
  // The callback may outlive this frame if the loop is slow to cancel
  // the request; shared state keeps the rendezvous safe either way.
  struct Rendezvous {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    http::Client::Result result;
  };
  auto rv = std::make_shared<Rendezvous>();

  // Keep-alive: reuse the cached client while the entry is unchanged;
  // a scrape every ~100 ms must not open a fresh connection each time.
  if (!client_ || !(clientEntry_ == entry)) {
    auto old = client_;
    thread_.runSync([&, old] {
      if (old) {
        old->close();
      }
      client_ = http::Client::make(thread_.loop(), entry);
    });
    clientEntry_ = entry;
  }
  auto client = client_;
  thread_.runSync([client, rv, this] {
    http::Request req;
    req.method = "GET";
    req.path = "/__stats";
    client->request(
        std::move(req),
        [rv](http::Client::Result r) {
          std::lock_guard<std::mutex> lock(rv->m);
          rv->result = std::move(r);
          rv->done = true;
          rv->cv.notify_all();
        },
        timeout_);
  });
  {
    std::unique_lock<std::mutex> lock(rv->m);
    // The client's own timer bounds the request; the extra slack only
    // guards against a wedged loop thread.
    rv->cv.wait_for(lock, timeout_ + Duration{2000},
                    [&] { return rv->done; });
    if (!rv->done) {
      err = "scrape rendezvous timed out (" + entry.str() + ")";
      return false;
    }
  }
  const auto& r = rv->result;
  if (!r.ok) {
    if (r.timedOut) {
      err = "scrape timed out (" + entry.str() + ")";
    } else if (r.transportError) {
      err = "scrape transport error (" + entry.str() +
            "): " + r.transportError.message();
    } else {
      err = "scrape HTTP " + std::to_string(r.response.status) + " (" +
            entry.str() + ")";
    }
    // Whatever state the connection is in, don't trust it again.
    auto stale = client_;
    thread_.runSync([stale] { stale->close(); });
    client_.reset();
    return false;
  }
  try {
    out = stats::parseStatsSnapshot(r.response.body);
  } catch (const std::exception& e) {
    err = std::string("scrape parse error: ") + e.what();
    return false;
  }
  return true;
}

bool HttpStatsSource::scrape(stats::StatsSnapshot& out, std::string& err) {
  // Start from whoever answered last; a restarting edge should cost at
  // most one failover hop, not a failure.
  std::string firstErr;
  for (size_t i = 0; i < entries_.size(); ++i) {
    size_t idx = (preferred_ + i) % entries_.size();
    std::string thisErr;
    if (scrapeOne(entries_[idx], out, thisErr)) {
      preferred_ = idx;
      return true;
    }
    if (firstErr.empty()) {
      firstErr = thisErr;
    }
  }
  err = firstErr.empty() ? "no stats entries configured" : firstErr;
  return false;
}

// ---------------------------------------------------------------------------
// Names + report serialization

const char* stageOutcomeName(StageOutcome o) {
  switch (o) {
    case StageOutcome::kNotStarted:
      return "not_started";
    case StageOutcome::kCompleted:
      return "completed";
    case StageOutcome::kRolledBack:
      return "rolled_back";
    case StageOutcome::kAborted:
      return "aborted";
    case StageOutcome::kSkipped:
      return "skipped";
  }
  return "unknown";
}

const char* rolloutOutcomeName(RolloutOutcome o) {
  switch (o) {
    case RolloutOutcome::kCompleted:
      return "completed";
    case RolloutOutcome::kRolledBack:
      return "rolled_back";
    case RolloutOutcome::kAborted:
      return "aborted";
  }
  return "unknown";
}

namespace {

void field(std::ostream& os, bool& first, const char* name) {
  if (!first) {
    os << ",";
  }
  first = false;
  jsonlite::writeString(os, name);
  os << ":";
}

void numField(std::ostream& os, bool& first, const char* name, double v) {
  field(os, first, name);
  jsonlite::writeNumber(os, v);
}

void strField(std::ostream& os, bool& first, const char* name,
              const std::string& v) {
  field(os, first, name);
  jsonlite::writeString(os, v);
}

void writeSample(std::ostream& os, const SloSample& s) {
  bool f = true;
  os << "{";
  numField(os, f, "t_ns", s.tNs);
  numField(os, f, "ok_delta", s.okDelta);
  numField(os, f, "err_delta", s.errDelta);
  numField(os, f, "shed_delta", s.shedDelta);
  numField(os, f, "breaker_delta", s.breakerDelta);
  numField(os, f, "straggler_delta", s.stragglerDelta);
  numField(os, f, "mqtt_drop_delta", s.mqttDropDelta);
  numField(os, f, "p99_ms", s.p99Ms);
  numField(os, f, "baseline_p99_ms", s.baselineP99Ms);
  os << "}";
}

void writeThresholds(std::ostream& os, const SloThresholds& t) {
  bool f = true;
  os << "{";
  numField(os, f, "err_rate_soft", t.errRateSoft);
  numField(os, f, "err_rate_hard", t.errRateHard);
  numField(os, f, "min_requests_for_rate", t.minRequestsForRate);
  numField(os, f, "p99_inflation_soft", t.p99InflationSoft);
  numField(os, f, "p99_inflation_hard", t.p99InflationHard);
  numField(os, f, "p99_floor_ms", t.p99FloorMs);
  numField(os, f, "shed_rate_soft", t.shedRateSoft);
  numField(os, f, "shed_rate_hard", t.shedRateHard);
  numField(os, f, "breaker_trips_soft", t.breakerTripsSoft);
  numField(os, f, "breaker_trips_hard", t.breakerTripsHard);
  numField(os, f, "drain_stragglers_soft", t.drainStragglersSoft);
  numField(os, f, "drain_stragglers_hard", t.drainStragglersHard);
  numField(os, f, "mqtt_drops_soft", t.mqttDropsSoft);
  numField(os, f, "mqtt_drops_hard", t.mqttDropsHard);
  os << "}";
}

void writeStage(std::ostream& os, const StageReport& st) {
  bool f = true;
  os << "{";
  strField(os, f, "name", st.name);
  strField(os, f, "tier", st.tier);
  strField(os, f, "pop", st.pop);
  field(os, f, "hosts");
  os << "[";
  for (size_t i = 0; i < st.hosts.size(); ++i) {
    if (i) {
      os << ",";
    }
    jsonlite::writeString(os, st.hosts[i]);
  }
  os << "]";
  strField(os, f, "outcome", stageOutcomeName(st.outcome));
  numField(os, f, "batches_completed",
           static_cast<double>(st.batchesCompleted));
  numField(os, f, "hosts_released", static_cast<double>(st.hostsReleased));
  numField(os, f, "hosts_rolled_back",
           static_cast<double>(st.hostsRolledBack));
  numField(os, f, "pauses", static_cast<double>(st.pauses));
  numField(os, f, "seconds", st.seconds);
  field(os, f, "baseline");
  {
    bool g = true;
    os << "{";
    numField(os, g, "ok", st.baseline.ok);
    numField(os, g, "err", st.baseline.err);
    numField(os, g, "shed", st.baseline.shed);
    numField(os, g, "breaker_trips", st.baseline.breakerTrips);
    numField(os, g, "drain_stragglers", st.baseline.drainStragglers);
    numField(os, g, "mqtt_drops", st.baseline.mqttDrops);
    numField(os, g, "p99_ms", st.baseline.p99Ms);
    os << "}";
  }
  field(os, f, "budget");
  {
    bool g = true;
    os << "{";
    numField(os, g, "max_client_errors", st.budget.maxClientErrors);
    numField(os, g, "max_shed_requests", st.budget.maxShedRequests);
    numField(os, g, "max_mqtt_drops", st.budget.maxMqttDrops);
    numField(os, g, "max_drain_stragglers", st.budget.maxDrainStragglers);
    os << "}";
  }
  field(os, f, "consumed");
  {
    bool g = true;
    os << "{";
    numField(os, g, "client_errors", st.consumed.clientErrors);
    numField(os, g, "shed_requests", st.consumed.shedRequests);
    numField(os, g, "mqtt_drops", st.consumed.mqttDrops);
    numField(os, g, "drain_stragglers", st.consumed.drainStragglers);
    os << "}";
  }
  field(os, f, "within_budget");
  os << (st.withinBudget ? "true" : "false");
  field(os, f, "decisions");
  os << "[";
  for (size_t i = 0; i < st.decisions.size(); ++i) {
    const StageDecision& d = st.decisions[i];
    if (i) {
      os << ",";
    }
    bool g = true;
    os << "{";
    numField(os, g, "t_ms", d.tMs);
    strField(os, g, "action", d.action);
    strField(os, g, "level", sloLevelName(d.level));
    strField(os, g, "reason", d.reason);
    if (d.hasSample) {
      field(os, g, "sample");
      writeSample(os, d.sample);
    }
    os << "}";
  }
  os << "]";
  os << "}";
}

}  // namespace

std::string ReleaseControllerReport::toJson() const {
  std::ostringstream os;
  bool f = true;
  os << "{";
  strField(os, f, "schema", "zdr.release_report.v1");
  strField(os, f, "outcome", rolloutOutcomeName(outcome));
  strField(os, f, "strategy",
           strategy == Strategy::kZeroDowntime ? "zero_downtime"
                                               : "hard_restart");
  numField(os, f, "total_seconds", totalSeconds);
  numField(os, f, "hosts_released", static_cast<double>(hostsReleased));
  numField(os, f, "hosts_rolled_back", static_cast<double>(hostsRolledBack));
  numField(os, f, "scrapes", static_cast<double>(scrapes));
  numField(os, f, "scrape_failures", static_cast<double>(scrapeFailures));
  field(os, f, "slo");
  writeThresholds(os, slo);
  field(os, f, "stages");
  os << "[";
  for (size_t i = 0; i < stages.size(); ++i) {
    if (i) {
      os << ",";
    }
    writeStage(os, stages[i]);
  }
  os << "]";
  os << "}";
  return os.str();
}

bool ReleaseControllerReport::writeJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << toJson() << "\n";
  return static_cast<bool>(out);
}

// ---------------------------------------------------------------------------
// ReleaseController

struct ReleaseController::StageRun {
  explicit StageRun(SloEvaluator ev) : evaluator(std::move(ev)) {}
  SloEvaluator evaluator;
  std::vector<RestartableHost*> released;
  int consecutiveSoft = 0;
  int consecutiveHard = 0;
  int consecutiveOk = 0;
  int consecutiveScrapeFailures = 0;
  // Confirmed breaches awaiting action: hard ⇒ roll back at the next
  // safe point (the in-flight batch is never interrupted); soft ⇒
  // pause after the current batch.
  bool hardPending = false;
  bool softPending = false;
  std::string breachReason;
  SloLevel lastLevel = SloLevel::kOk;
};

ReleaseController::ReleaseController(std::vector<StageSpec> stages,
                                     ReleaseControllerOptions options)
    : stages_(std::move(stages)), opts_(std::move(options)) {
  report_.strategy = opts_.strategy;
  report_.slo = opts_.slo;
}

void ReleaseController::emit(const std::string& event) {
  if (opts_.onEvent) {
    opts_.onEvent(event);
  }
}

void ReleaseController::bump(const std::string& name, uint64_t n) {
  if (opts_.metrics) {
    opts_.metrics->counter(name).add(n);
  }
}

void ReleaseController::record(StageReport& out, const std::string& action,
                               SloLevel level, const std::string& reason,
                               const SloSample* sample) {
  StageDecision d;
  d.tMs = clock_.seconds() * 1000.0;
  d.action = action;
  d.level = level;
  d.reason = reason;
  if (sample != nullptr) {
    d.sample = *sample;
    d.hasSample = true;
  }
  out.decisions.push_back(std::move(d));
}

namespace {

// First budget dimension the sample exceeds, or "" if within budget.
// Budget burn is not debounced: the underlying counters are monotonic,
// so an exceeded budget can never recover on its own.
std::string budgetBreach(const DisruptionBudget& b, const SloSample& s) {
  char buf[96];
  if (s.errDelta > b.maxClientErrors) {
    std::snprintf(buf, sizeof buf, "budget client_errors %.0f > %.0f",
                  s.errDelta, b.maxClientErrors);
    return buf;
  }
  if (s.shedDelta > b.maxShedRequests) {
    std::snprintf(buf, sizeof buf, "budget shed_requests %.0f > %.0f",
                  s.shedDelta, b.maxShedRequests);
    return buf;
  }
  if (s.mqttDropDelta > b.maxMqttDrops) {
    std::snprintf(buf, sizeof buf, "budget mqtt_drops %.0f > %.0f",
                  s.mqttDropDelta, b.maxMqttDrops);
    return buf;
  }
  if (s.stragglerDelta > b.maxDrainStragglers) {
    std::snprintf(buf, sizeof buf, "budget drain_stragglers %.0f > %.0f",
                  s.stragglerDelta, b.maxDrainStragglers);
    return buf;
  }
  return "";
}

}  // namespace

void ReleaseController::observe(StageSpec& spec, StageRun& run,
                                StageReport& out) {
  stats::StatsSnapshot snap;
  std::string err;
  report_.scrapes++;
  bump("release.controller.scrapes");
  if (!spec.stats->scrape(snap, err)) {
    report_.scrapeFailures++;
    bump("release.controller.scrape_failures");
    run.consecutiveScrapeFailures++;
    record(out, "scrape_failure", SloLevel::kOk, err);
    if (run.consecutiveScrapeFailures >= opts_.maxScrapeFailures &&
        !run.hardPending) {
      // Flying blind is a hard condition: the controller may not keep
      // mutating a fleet it cannot observe.
      run.hardPending = true;
      run.breachReason = "stats unreachable: " + err;
      bump("slo.hard_breach");
    }
    return;
  }
  run.consecutiveScrapeFailures = 0;

  SloSample s = run.evaluator.extract(snap);
  // Deltas are cumulative since the stage baseline, so the latest
  // sample IS the stage's consumption; max() guards the reset clamp.
  out.consumed.clientErrors = std::max(out.consumed.clientErrors, s.errDelta);
  out.consumed.shedRequests = std::max(out.consumed.shedRequests, s.shedDelta);
  out.consumed.mqttDrops = std::max(out.consumed.mqttDrops, s.mqttDropDelta);
  out.consumed.drainStragglers =
      std::max(out.consumed.drainStragglers, s.stragglerDelta);

  SloVerdict v = run.evaluator.judge(s);
  std::string burn = budgetBreach(spec.budget, s);
  if (!burn.empty()) {
    v.level = SloLevel::kHard;
    v.reason = burn;
  }
  record(out, "observe", v.level, v.reason, &s);
  run.lastLevel = v.level;

  switch (v.level) {
    case SloLevel::kOk:
      bump("slo.ok");
      run.consecutiveOk++;
      run.consecutiveSoft = 0;
      run.consecutiveHard = 0;
      return;
    case SloLevel::kSoft:
      bump("slo.soft_breach");
      run.consecutiveOk = 0;
      run.consecutiveSoft++;
      run.consecutiveHard = 0;
      break;
    case SloLevel::kHard:
      bump("slo.hard_breach");
      run.consecutiveOk = 0;
      run.consecutiveSoft++;  // hard also counts toward soft debounce
      run.consecutiveHard++;
      break;
  }
  if (!burn.empty() && !run.hardPending) {
    run.hardPending = true;
    run.breachReason = v.reason;
    return;
  }
  if (run.consecutiveHard >= opts_.confirmScrapes && !run.hardPending) {
    run.hardPending = true;
    run.breachReason = v.reason;
  } else if (run.consecutiveSoft >= opts_.confirmScrapes &&
             !run.softPending && !run.hardPending) {
    run.softPending = true;
    run.breachReason = v.reason;
  }
}

bool ReleaseController::restartBatchAndWait(
    StageSpec& spec, const std::vector<RestartableHost*>& batch,
    StageRun& run, StageReport& out) {
  for (auto* h : batch) {
    emit("controller_restart " + h->hostName());
    h->beginRestart(opts_.strategy);
  }
  Stopwatch sw;
  const double limit =
      std::chrono::duration<double>(opts_.perBatchTimeout).count();
  while (true) {
    std::this_thread::sleep_for(opts_.scrapeInterval);
    observe(spec, run, out);
    bool all = true;
    for (auto* h : batch) {
      if (!h->restartComplete()) {
        all = false;
        break;
      }
    }
    if (all) {
      return true;
    }
    if (sw.seconds() > limit) {
      return false;
    }
  }
}

bool ReleaseController::pauseAndAwaitRecovery(StageSpec& spec, StageRun& run,
                                              StageReport& out) {
  record(out, "pause", SloLevel::kSoft, run.breachReason);
  emit("controller_pause " + spec.name + ": " + run.breachReason);
  bump("release.controller.pauses");
  out.pauses++;
  run.softPending = false;
  run.consecutiveOk = 0;
  for (int i = 0; i < opts_.pauseGraceScrapes; ++i) {
    std::this_thread::sleep_for(opts_.scrapeInterval);
    observe(spec, run, out);
    if (run.hardPending) {
      return false;
    }
    // A fresh soft confirmation while already paused doesn't re-pause;
    // it just keeps the grace clock running.
    run.softPending = false;
    if (run.consecutiveOk >= opts_.confirmScrapes) {
      record(out, "resume", SloLevel::kOk, "");
      emit("controller_resume " + spec.name);
      bump("release.controller.resumes");
      return true;
    }
  }
  run.hardPending = true;
  run.breachReason = "pause grace exhausted: " + run.breachReason;
  return false;
}

void ReleaseController::rollbackStage(StageSpec& spec, size_t idx,
                                      StageRun& run, StageReport& out) {
  record(out, "rollback", SloLevel::kHard, run.breachReason);
  emit("controller_rollback " + spec.name + ": " + run.breachReason);
  bump("release.controller.rollbacks");
  if (opts_.onStageRollback) {
    opts_.onStageRollback(spec, idx);
  }
  // Re-restart only the hosts this stage touched; completed stages
  // stay on the new version (they soaked clean).
  for (auto* h : run.released) {
    emit("controller_rollback_restart " + h->hostName());
    h->beginRestart(opts_.strategy);
  }
  Stopwatch sw;
  const double limit =
      std::chrono::duration<double>(opts_.perBatchTimeout).count();
  bool converged = run.released.empty();
  while (!converged) {
    std::this_thread::sleep_for(Duration{10});
    converged = true;
    for (auto* h : run.released) {
      if (!h->restartComplete()) {
        converged = false;
        break;
      }
    }
    if (!converged && sw.seconds() > limit) {
      break;
    }
  }
  stopRollout_ = true;
  if (converged) {
    out.outcome = StageOutcome::kRolledBack;
    out.hostsRolledBack = run.released.size();
    report_.hostsRolledBack += run.released.size();
    bump("release.controller.hosts_rolled_back", run.released.size());
    record(out, "rollback_done", SloLevel::kOk, "");
    emit("controller_rollback_done " + spec.name);
    report_.outcome = RolloutOutcome::kRolledBack;
  } else {
    out.outcome = StageOutcome::kAborted;
    record(out, "abort", SloLevel::kHard, "rollback restart timed out");
    emit("controller_abort " + spec.name);
    bump("release.controller.aborts");
    report_.outcome = RolloutOutcome::kAborted;
  }
}

void ReleaseController::runStage(StageSpec& spec, size_t idx,
                                 StageReport& out) {
  Stopwatch stageClock;
  out.name = spec.name;
  out.tier = spec.tier;
  out.pop = spec.pop;
  for (auto* h : spec.hosts) {
    out.hosts.push_back(h->hostName());
  }
  out.budget = spec.budget;
  emit("controller_stage_start " + spec.name);
  bump("release.controller.stages_started");
  if (opts_.onStageStart) {
    opts_.onStageStart(spec, idx);
  }

  StageRun run{SloEvaluator(spec.signals, opts_.slo)};

  // Baseline: every later sample is a delta against this scrape.
  stats::StatsSnapshot snap;
  bool haveBaseline = false;
  for (int i = 0; i < opts_.maxScrapeFailures && !haveBaseline; ++i) {
    std::string err;
    report_.scrapes++;
    bump("release.controller.scrapes");
    if (spec.stats->scrape(snap, err)) {
      haveBaseline = true;
    } else {
      report_.scrapeFailures++;
      bump("release.controller.scrape_failures");
      record(out, "scrape_failure", SloLevel::kOk, err);
      std::this_thread::sleep_for(opts_.scrapeInterval);
    }
  }
  if (!haveBaseline) {
    // Nothing was restarted yet, so there is nothing to roll back —
    // but continuing blind is not an option either.
    out.outcome = StageOutcome::kAborted;
    record(out, "abort", SloLevel::kHard, "baseline scrape unreachable");
    emit("controller_abort " + spec.name);
    bump("release.controller.aborts");
    report_.outcome = RolloutOutcome::kAborted;
    stopRollout_ = true;
    out.seconds = stageClock.seconds();
    return;
  }
  run.evaluator.setBaseline(snap);
  out.baseline = run.evaluator.baseline();
  record(out, "baseline", SloLevel::kOk, "");

  const size_t batchSize = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(static_cast<double>(spec.hosts.size()) *
                       std::clamp(spec.batchFraction, 0.01, 1.0))));
  size_t next = 0;
  while (next < spec.hosts.size()) {
    size_t end = std::min(next + batchSize, spec.hosts.size());
    std::vector<RestartableHost*> batch(spec.hosts.begin() + next,
                                        spec.hosts.begin() + end);
    record(out, "batch_start", SloLevel::kOk,
           "hosts " + std::to_string(next) + ".." + std::to_string(end - 1));
    bump("release.controller.batches");
    if (!restartBatchAndWait(spec, batch, run, out)) {
      out.outcome = StageOutcome::kAborted;
      record(out, "abort", SloLevel::kHard, "batch restart timed out");
      emit("controller_abort " + spec.name);
      bump("release.controller.aborts");
      report_.outcome = RolloutOutcome::kAborted;
      stopRollout_ = true;
      out.seconds = stageClock.seconds();
      return;
    }
    run.released.insert(run.released.end(), batch.begin(), batch.end());
    out.hostsReleased += batch.size();
    out.batchesCompleted++;
    report_.hostsReleased += batch.size();
    bump("release.controller.hosts_released", batch.size());
    record(out, "batch_done", SloLevel::kOk, "");
    next = end;

    if (run.hardPending) {
      rollbackStage(spec, idx, run, out);
      out.seconds = stageClock.seconds();
      return;
    }
    if (run.softPending && !pauseAndAwaitRecovery(spec, run, out)) {
      rollbackStage(spec, idx, run, out);
      out.seconds = stageClock.seconds();
      return;
    }

    // Inter-batch gate: hold here until the fleet has re-converged
    // around the batch just restarted. restartComplete() only proves
    // the hosts came back; their peers still need to re-dial trunks and
    // refill pools, and launching the next batch during that window can
    // drain the last healthy path to a tier. The gate demands fresh
    // consecutive Ok scrapes — a breach instead takes the normal
    // pause/rollback path, and a fleet that flaps without ever
    // confirming either way is escalated rather than waited on forever.
    if (next < spec.hosts.size() && opts_.interBatchScrapes > 0) {
      run.consecutiveOk = 0;
      int gateScrapes = 0;
      const int gateLimit =
          std::max(opts_.pauseGraceScrapes, 4 * opts_.interBatchScrapes);
      while (run.consecutiveOk < opts_.interBatchScrapes) {
        std::this_thread::sleep_for(opts_.scrapeInterval);
        observe(spec, run, out);
        gateScrapes++;
        if (run.hardPending) {
          rollbackStage(spec, idx, run, out);
          out.seconds = stageClock.seconds();
          return;
        }
        if (!run.softPending && gateScrapes > gateLimit) {
          run.softPending = true;
          run.breachReason = "inter-batch gate not converging";
        }
        if (run.softPending) {
          if (!pauseAndAwaitRecovery(spec, run, out)) {
            rollbackStage(spec, idx, run, out);
            out.seconds = stageClock.seconds();
            return;
          }
          // A resume required confirmScrapes consecutive Ok samples —
          // the fleet is demonstrably converged; the gate is satisfied.
          break;
        }
      }
      record(out, "batch_gate_ok", SloLevel::kOk, "");
    }
  }

  // Soak: the stage completes only after stageSoakScrapes consecutive
  // clean samples with the whole stage on the new version.
  int okStreak = 0;
  while (okStreak < opts_.stageSoakScrapes) {
    std::this_thread::sleep_for(opts_.scrapeInterval);
    observe(spec, run, out);
    if (run.hardPending) {
      rollbackStage(spec, idx, run, out);
      out.seconds = stageClock.seconds();
      return;
    }
    if (run.softPending) {
      if (!pauseAndAwaitRecovery(spec, run, out)) {
        rollbackStage(spec, idx, run, out);
        out.seconds = stageClock.seconds();
        return;
      }
      okStreak = 0;
      continue;
    }
    okStreak = run.lastLevel == SloLevel::kOk ? okStreak + 1 : 0;
  }

  out.outcome = StageOutcome::kCompleted;
  record(out, "complete", SloLevel::kOk, "");
  emit("controller_stage_complete " + spec.name);
  bump("release.controller.stages_completed");
  out.seconds = stageClock.seconds();
}

ReleaseControllerReport ReleaseController::run() {
  clock_.restart();
  report_.stages.clear();
  report_.stages.resize(stages_.size());
  emit("controller_start");
  for (size_t i = 0; i < stages_.size(); ++i) {
    StageReport& out = report_.stages[i];
    if (stopRollout_) {
      out.name = stages_[i].name;
      out.tier = stages_[i].tier;
      out.pop = stages_[i].pop;
      out.budget = stages_[i].budget;
      out.outcome = StageOutcome::kSkipped;
      continue;
    }
    runStage(stages_[i], i, out);
  }
  for (StageReport& st : report_.stages) {
    st.withinBudget = st.consumed.clientErrors <= st.budget.maxClientErrors &&
                      st.consumed.shedRequests <= st.budget.maxShedRequests &&
                      st.consumed.mqttDrops <= st.budget.maxMqttDrops &&
                      st.consumed.drainStragglers <=
                          st.budget.maxDrainStragglers;
  }
  report_.totalSeconds = clock_.seconds();
  emit(std::string("controller_done ") +
       rolloutOutcomeName(report_.outcome));
  return report_;
}

}  // namespace zdr::release
