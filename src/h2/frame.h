// Frame layer of the Edge↔Origin trunk protocol.
//
// A simplified HTTP/2-style framing: length-prefixed typed frames
// multiplexing many streams over one TCP connection, with GOAWAY for
// graceful drain. Header compression (HPACK) is replaced by plain
// length-prefixed key/value pairs — compression is irrelevant to the
// release mechanics this project reproduces.
//
// The trunk also carries the Downstream Connection Reuse control
// messages (§4.2): reconnect_solicitation, re_connect, connect_ack and
// connect_refuse, as first-class frame types.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "netcore/buffer.h"

namespace zdr::h2 {

enum class FrameType : uint8_t {
  kData = 0x0,
  kHeaders = 0x1,
  kRstStream = 0x3,
  kSettings = 0x4,
  kPing = 0x6,
  kGoaway = 0x7,
  kWindowUpdate = 0x8,
  // --- Zero Downtime Release extensions (DCR §4.2) ---
  kReconnectSolicitation = 0x10,  // restarting Origin → Edge
  kReconnect = 0x11,              // Edge → healthy Origin (user-id)
  kConnectAck = 0x12,             // broker accepted the re-attach
  kConnectRefuse = 0x13,          // no context; client must reconnect
};

[[nodiscard]] std::string_view frameTypeName(FrameType t) noexcept;

// Frame flags.
inline constexpr uint8_t kFlagEndStream = 0x1;
inline constexpr uint8_t kFlagAck = 0x1;  // PING/SETTINGS ack

struct Frame {
  FrameType type = FrameType::kData;
  uint8_t flags = 0;
  uint32_t streamId = 0;
  std::string payload;

  [[nodiscard]] bool endStream() const noexcept {
    return (type == FrameType::kData || type == FrameType::kHeaders) &&
           (flags & kFlagEndStream);
  }
};

// Maximum payload accepted from a peer (1 MiB); larger frames indicate
// corruption and kill the session.
inline constexpr uint32_t kMaxFramePayload = 1 << 20;

// Wire format: u32 payloadLen | u8 type | u8 flags | u32 streamId | payload.
void encodeFrame(const Frame& f, Buffer& out);

// Decodes one frame if fully buffered; consumes it and returns it.
// Returns nullopt if incomplete. Sets `malformed` on protocol error.
std::optional<Frame> decodeFrame(Buffer& in, bool& malformed);

// ---- header-block payload ----
using HeaderList = std::vector<std::pair<std::string, std::string>>;

std::string encodeHeaderBlock(const HeaderList& headers);
// Returns nullopt on malformed input.
std::optional<HeaderList> decodeHeaderBlock(std::string_view payload);

// ---- GOAWAY payload ----
struct GoawayInfo {
  uint32_t lastStreamId = 0;
  std::string debug;
};
std::string encodeGoaway(const GoawayInfo& info);
std::optional<GoawayInfo> decodeGoaway(std::string_view payload);

}  // namespace zdr::h2
