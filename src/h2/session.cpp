#include "h2/session.h"

namespace zdr::h2 {

Session::Session(ConnectionPtr conn, Role role)
    : conn_(std::move(conn)),
      role_(role),
      nextStreamId_(role == Role::kClient ? 1 : 2) {}

void Session::start() {
  auto self = shared_from_this();
  conn_->setDataCallback([self](Buffer& in) { self->handleInput(in); });
  conn_->setCloseCallback([self](std::error_code ec) {
    if (self->cbs_.onClose) {
      self->cbs_.onClose(ec);
    }
  });
  if (!conn_->started()) {
    conn_->start();
  }
}

uint32_t Session::openStream() {
  if (goawayReceived_ || !open()) {
    return 0;
  }
  uint32_t id = nextStreamId_;
  nextStreamId_ += 2;
  streams_.emplace(id, StreamState{});
  return id;
}

Session::StreamState& Session::streamFor(uint32_t streamId) {
  return streams_[streamId];  // creates on first reference
}

void Session::writeFrame(const Frame& f) {
  if (!open()) {
    return;
  }
  Buffer out;
  encodeFrame(f, out);
  conn_->send(out.readable());
}

void Session::sendHeaders(uint32_t streamId, const HeaderList& headers,
                          bool endStream) {
  Frame f;
  f.type = FrameType::kHeaders;
  f.flags = endStream ? kFlagEndStream : 0;
  f.streamId = streamId;
  f.payload = encodeHeaderBlock(headers);
  auto& st = streamFor(streamId);
  writeFrame(f);
  if (endStream) {
    st.localEnded = true;
    endStreamIfDone(streamId, st);
  }
}

void Session::sendData(uint32_t streamId, std::string_view data,
                       bool endStream) {
  Frame f;
  f.type = FrameType::kData;
  f.flags = endStream ? kFlagEndStream : 0;
  f.streamId = streamId;
  f.payload.assign(data);
  auto& st = streamFor(streamId);
  writeFrame(f);
  if (endStream) {
    st.localEnded = true;
    endStreamIfDone(streamId, st);
  }
}

void Session::sendReset(uint32_t streamId) {
  Frame f;
  f.type = FrameType::kRstStream;
  f.streamId = streamId;
  writeFrame(f);
  streams_.erase(streamId);
  maybeFinishDrain();
}

void Session::sendPing() {
  Frame f;
  f.type = FrameType::kPing;
  writeFrame(f);
}

void Session::sendGoaway(std::string debug) {
  if (goawaySent_) {
    return;
  }
  goawaySent_ = true;
  Frame f;
  f.type = FrameType::kGoaway;
  f.payload = encodeGoaway({nextStreamId_, std::move(debug)});
  writeFrame(f);
}

void Session::sendControl(FrameType type, std::string payload,
                          uint32_t streamId) {
  Frame f;
  f.type = type;
  f.streamId = streamId;
  f.payload = std::move(payload);
  writeFrame(f);
}

void Session::drainAndClose(std::string debug) {
  drainRequested_ = true;
  sendGoaway(std::move(debug));
  maybeFinishDrain();
}

void Session::closeNow(std::error_code reason) {
  if (conn_) {
    conn_->close(reason);
  }
}

void Session::maybeFinishDrain() {
  if (drainRequested_ && streams_.empty() && conn_ && conn_->open()) {
    conn_->closeAfterFlush();
  }
}

void Session::handleInput(Buffer& in) {
  while (true) {
    bool malformed = false;
    auto frame = decodeFrame(in, malformed);
    if (malformed) {
      closeNow(std::make_error_code(std::errc::protocol_error));
      return;
    }
    if (!frame) {
      return;
    }
    handleFrame(*frame);
    if (!open()) {
      return;  // a handler closed us
    }
  }
}

void Session::endStreamIfDone(uint32_t streamId, StreamState& st) {
  if (st.localEnded && st.remoteEnded) {
    streams_.erase(streamId);
    maybeFinishDrain();
  }
}

void Session::handleFrame(const Frame& f) {
  switch (f.type) {
    case FrameType::kHeaders: {
      auto headers = decodeHeaderBlock(f.payload);
      if (!headers) {
        closeNow(std::make_error_code(std::errc::protocol_error));
        return;
      }
      auto& st = streamFor(f.streamId);
      if (f.endStream()) {
        st.remoteEnded = true;
      }
      if (cbs_.onHeaders) {
        cbs_.onHeaders(f.streamId, *headers, f.endStream());
      }
      // find(), not streamFor(): the callback may have completed and
      // erased the stream — operator[] would resurrect it.
      if (auto it = streams_.find(f.streamId); it != streams_.end()) {
        endStreamIfDone(f.streamId, it->second);
      }
      break;
    }
    case FrameType::kData: {
      auto& st = streamFor(f.streamId);
      if (f.endStream()) {
        st.remoteEnded = true;
      }
      if (cbs_.onData) {
        cbs_.onData(f.streamId, f.payload, f.endStream());
      }
      if (auto it = streams_.find(f.streamId); it != streams_.end()) {
        endStreamIfDone(f.streamId, it->second);  // see kHeaders note
      }
      break;
    }
    case FrameType::kRstStream: {
      streams_.erase(f.streamId);
      if (cbs_.onReset) {
        cbs_.onReset(f.streamId);
      }
      maybeFinishDrain();
      break;
    }
    case FrameType::kPing: {
      if (!(f.flags & kFlagAck)) {
        Frame ack;
        ack.type = FrameType::kPing;
        ack.flags = kFlagAck;
        writeFrame(ack);
      }
      break;
    }
    case FrameType::kGoaway: {
      goawayReceived_ = true;
      auto info = decodeGoaway(f.payload);
      if (cbs_.onGoaway && info) {
        cbs_.onGoaway(*info);
      }
      break;
    }
    case FrameType::kSettings:
    case FrameType::kWindowUpdate:
      break;  // accepted, unused by this reproduction
    case FrameType::kReconnectSolicitation:
    case FrameType::kReconnect:
    case FrameType::kConnectAck:
    case FrameType::kConnectRefuse: {
      if (cbs_.onControl) {
        cbs_.onControl(f);
      }
      break;
    }
  }
}

}  // namespace zdr::h2
