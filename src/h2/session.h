// Stream-multiplexing session over one trunk connection.
//
// Edge and Origin Proxygen keep a small number of long-lived trunk
// sessions between them (§2.2); every user request or MQTT tunnel maps
// to one stream. GOAWAY drains the session gracefully during a restart
// (§4.1 "Connections between Edge and Origin").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string_view>

#include "h2/frame.h"
#include "netcore/connection.h"

namespace zdr::h2 {

class Session;
using SessionPtr = std::shared_ptr<Session>;

class Session : public std::enable_shared_from_this<Session> {
 public:
  enum class Role : uint8_t { kClient, kServer };

  struct Callbacks {
    // A peer-initiated stream received HEADERS.
    std::function<void(uint32_t streamId, const HeaderList&, bool endStream)>
        onHeaders;
    std::function<void(uint32_t streamId, std::string_view data,
                       bool endStream)>
        onData;
    std::function<void(uint32_t streamId)> onReset;
    // Peer sent GOAWAY: stop opening streams; existing ones continue.
    std::function<void(const GoawayInfo&)> onGoaway;
    // DCR extension frames (stream 0).
    std::function<void(const Frame&)> onControl;
    // Transport closed (after this, the session is dead).
    std::function<void(std::error_code)> onClose;
  };

  static SessionPtr make(ConnectionPtr conn, Role role) {
    return SessionPtr(new Session(std::move(conn), role));
  }

  // Attaches to the connection and starts processing frames.
  void start();

  // Feeds bytes that were read from the connection before this session
  // attached (a listener that sniffs a preface to pick a protocol reads
  // ahead, then replays the non-matching bytes here). Consumes what
  // parses; partial trailing frames stay in `in` for the data callback
  // installed by start().
  void injectInput(Buffer& in) { handleInput(in); }

  // Allocates the next locally-initiated stream id (client: odd,
  // server: even). Returns 0 if the session can no longer open streams
  // (GOAWAY received or transport closed).
  uint32_t openStream();

  void sendHeaders(uint32_t streamId, const HeaderList& headers,
                   bool endStream);
  void sendData(uint32_t streamId, std::string_view data, bool endStream);
  void sendReset(uint32_t streamId);
  void sendPing();
  // Announces drain: peer must not open new streams.
  void sendGoaway(std::string debug = {});
  // Extension/control frame on stream 0.
  void sendControl(FrameType type, std::string payload = {},
                   uint32_t streamId = 0);

  // Sends GOAWAY and closes the transport once all streams finish.
  void drainAndClose(std::string debug = "draining");
  void closeNow(std::error_code reason = {});

  void setCallbacks(Callbacks cbs) { cbs_ = std::move(cbs); }

  [[nodiscard]] size_t activeStreams() const noexcept {
    return streams_.size();
  }
  [[nodiscard]] bool goawayReceived() const noexcept {
    return goawayReceived_;
  }
  [[nodiscard]] bool goawaySent() const noexcept { return goawaySent_; }
  [[nodiscard]] bool open() const noexcept { return conn_ && conn_->open(); }
  [[nodiscard]] Role role() const noexcept { return role_; }

 private:
  Session(ConnectionPtr conn, Role role);

  struct StreamState {
    bool localEnded = false;
    bool remoteEnded = false;
  };

  void handleInput(Buffer& in);
  void handleFrame(const Frame& f);
  void endStreamIfDone(uint32_t streamId, StreamState& st);
  void maybeFinishDrain();
  void writeFrame(const Frame& f);
  StreamState& streamFor(uint32_t streamId);

  ConnectionPtr conn_;
  Role role_;
  Callbacks cbs_;
  std::map<uint32_t, StreamState> streams_;
  uint32_t nextStreamId_;
  bool goawayReceived_ = false;
  bool goawaySent_ = false;
  bool drainRequested_ = false;
};

}  // namespace zdr::h2
