#include "h2/frame.h"

namespace zdr::h2 {

std::string_view frameTypeName(FrameType t) noexcept {
  switch (t) {
    case FrameType::kData: return "DATA";
    case FrameType::kHeaders: return "HEADERS";
    case FrameType::kRstStream: return "RST_STREAM";
    case FrameType::kSettings: return "SETTINGS";
    case FrameType::kPing: return "PING";
    case FrameType::kGoaway: return "GOAWAY";
    case FrameType::kWindowUpdate: return "WINDOW_UPDATE";
    case FrameType::kReconnectSolicitation: return "RECONNECT_SOLICITATION";
    case FrameType::kReconnect: return "RECONNECT";
    case FrameType::kConnectAck: return "CONNECT_ACK";
    case FrameType::kConnectRefuse: return "CONNECT_REFUSE";
  }
  return "UNKNOWN";
}

void encodeFrame(const Frame& f, Buffer& out) {
  out.appendU32(static_cast<uint32_t>(f.payload.size()));
  out.appendU8(static_cast<uint8_t>(f.type));
  out.appendU8(f.flags);
  out.appendU32(f.streamId);
  out.append(f.payload);
}

std::optional<Frame> decodeFrame(Buffer& in, bool& malformed) {
  malformed = false;
  constexpr size_t kHeaderLen = 10;
  if (in.size() < kHeaderLen) {
    return std::nullopt;
  }
  uint32_t len = in.peekU32(0);
  if (len > kMaxFramePayload) {
    malformed = true;
    return std::nullopt;
  }
  if (in.size() < kHeaderLen + len) {
    return std::nullopt;
  }
  Frame f;
  f.type = static_cast<FrameType>(in.peekU8(4));
  f.flags = in.peekU8(5);
  f.streamId = in.peekU32(6);
  in.consume(kHeaderLen);
  f.payload = in.toString(len);
  in.consume(len);
  return f;
}

std::string encodeHeaderBlock(const HeaderList& headers) {
  Buffer buf;
  buf.appendU16(static_cast<uint16_t>(headers.size()));
  for (const auto& [name, value] : headers) {
    buf.appendU16(static_cast<uint16_t>(name.size()));
    buf.append(name);
    buf.appendU16(static_cast<uint16_t>(value.size()));
    buf.append(value);
  }
  return std::string(buf.view());
}

std::optional<HeaderList> decodeHeaderBlock(std::string_view payload) {
  HeaderList out;
  size_t pos = 0;
  auto readU16 = [&](uint16_t& v) {
    if (pos + 2 > payload.size()) {
      return false;
    }
    v = static_cast<uint16_t>(
        (static_cast<uint8_t>(payload[pos]) << 8) |
        static_cast<uint8_t>(payload[pos + 1]));
    pos += 2;
    return true;
  };
  auto readStr = [&](std::string& s) {
    uint16_t len = 0;
    if (!readU16(len) || pos + len > payload.size()) {
      return false;
    }
    s.assign(payload.substr(pos, len));
    pos += len;
    return true;
  };
  uint16_t count = 0;
  if (!readU16(count)) {
    return std::nullopt;
  }
  out.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    std::string name;
    std::string value;
    if (!readStr(name) || !readStr(value)) {
      return std::nullopt;
    }
    out.emplace_back(std::move(name), std::move(value));
  }
  return out;
}

std::string encodeGoaway(const GoawayInfo& info) {
  Buffer buf;
  buf.appendU32(info.lastStreamId);
  buf.append(info.debug);
  return std::string(buf.view());
}

std::optional<GoawayInfo> decodeGoaway(std::string_view payload) {
  if (payload.size() < 4) {
    return std::nullopt;
  }
  GoawayInfo info;
  info.lastStreamId =
      (static_cast<uint32_t>(static_cast<uint8_t>(payload[0])) << 24) |
      (static_cast<uint32_t>(static_cast<uint8_t>(payload[1])) << 16) |
      (static_cast<uint32_t>(static_cast<uint8_t>(payload[2])) << 8) |
      static_cast<uint32_t>(static_cast<uint8_t>(payload[3]));
  info.debug.assign(payload.substr(4));
  return info;
}

}  // namespace zdr::h2
