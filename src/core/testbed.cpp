#include "core/testbed.h"

#include <stdexcept>

namespace zdr::core {

Testbed::Testbed(TestbedOptions opts) : opts_(opts) {
  // Build bottom-up: brokers and app servers, then origins that point
  // at them, then edges that trunk to the origins, then L4 in front.
  for (size_t i = 0; i < opts_.brokers; ++i) {
    brokers_.push_back(std::make_unique<BrokerHost>(
        opts_.namePrefix + "broker" + std::to_string(i), &metrics_));
  }

  for (size_t i = 0; i < opts_.appServers; ++i) {
    AppHost::Options ao;
    ao.server = opts_.appOptions;
    ao.server.pprEnabled = opts_.appPprOverride.value_or(opts_.pprEnabled);
    ao.server.spanSinkCapacity = opts_.spanSinkCapacity;
    ao.drainPeriod = opts_.appDrainPeriod;
    apps_.push_back(std::make_unique<AppHost>(
        opts_.namePrefix + "app" + std::to_string(i), SocketAddr::loopback(0),
        &metrics_, ao));
  }

  std::vector<proxygen::BackendRef> appRefs;
  for (const auto& a : apps_) {
    appRefs.push_back({a->hostName(), a->addr()});
  }
  std::vector<proxygen::BackendRef> brokerRefs;
  for (const auto& b : brokers_) {
    brokerRefs.push_back({b->hostName(), b->addr()});
  }

  for (size_t i = 0; i < opts_.origins; ++i) {
    proxygen::Proxy::Config cfg;
    cfg.role = proxygen::Proxy::Role::kOrigin;
    cfg.instanceId = static_cast<uint32_t>(100 + i);
    cfg.trunkAddr = SocketAddr::loopback(0);
    cfg.appServers = appRefs;
    cfg.brokers = brokerRefs;
    cfg.drainPeriod = opts_.proxyDrainPeriod;
    cfg.requestTimeout = opts_.requestTimeout;
    cfg.pprEnabled = opts_.pprEnabled;
    cfg.dcrEnabled = opts_.dcrEnabled;
    cfg.trunkWorkers = opts_.trunkWorkers;
    cfg.spanSinkCapacity = opts_.spanSinkCapacity;
    if (opts_.proxyConfigHook) {
      opts_.proxyConfigHook(cfg);
    }
    origins_.push_back(std::make_unique<ProxyHost>(
        opts_.namePrefix + "origin" + std::to_string(i), cfg, &metrics_));
  }

  std::vector<proxygen::BackendRef> originRefs;
  for (const auto& o : origins_) {
    originRefs.push_back({o->hostName(), o->trunkAddr()});
  }

  for (size_t i = 0; i < opts_.edges; ++i) {
    proxygen::Proxy::Config cfg;
    cfg.role = proxygen::Proxy::Role::kEdge;
    cfg.instanceId = static_cast<uint32_t>(i);
    cfg.httpVip = SocketAddr::loopback(0);
    cfg.enableHttpVip = true;
    cfg.enableMqttVip = opts_.enableMqtt;
    cfg.mqttVip = SocketAddr::loopback(0);
    cfg.enableQuicVip = opts_.enableQuic;
    cfg.quicVip = SocketAddr::loopback(0);
    cfg.origins = originRefs;
    cfg.drainPeriod = opts_.proxyDrainPeriod;
    cfg.requestTimeout = opts_.requestTimeout;
    cfg.dcrEnabled = opts_.dcrEnabled;
    cfg.udpUserSpaceRouting = opts_.udpUserSpaceRouting;
    cfg.httpWorkers = opts_.httpWorkers;
    cfg.spanSinkCapacity = opts_.spanSinkCapacity;
    if (opts_.proxyConfigHook) {
      opts_.proxyConfigHook(cfg);
    }
    edges_.push_back(std::make_unique<ProxyHost>(
        opts_.namePrefix + "edge" + std::to_string(i), cfg, &metrics_));
  }

  if (opts_.enableL4) {
    l4_ = std::make_unique<L4Host>(opts_.namePrefix + "l4", &metrics_);
    std::vector<l4lb::BackendTarget> httpBackends;
    std::vector<l4lb::BackendTarget> mqttBackends;
    for (const auto& e : edges_) {
      httpBackends.push_back({e->hostName(), e->httpVip()});
      if (opts_.enableMqtt) {
        mqttBackends.push_back({e->hostName() + "-mqtt", e->mqttVip()});
      }
    }
    l4HttpVip_ = l4_->addVip("http", std::move(httpBackends), opts_.l4Options);
    if (opts_.enableMqtt) {
      // MQTT VIP health-checks the edge's HTTP endpoint is not
      // available on the MQTT port; probe connectivity via the HTTP
      // checker against the same hosts instead.
      l4lb::L4Balancer::Options mo = opts_.l4Options;
      l4MqttVip_ = l4_->addVip("mqtt", std::move(mqttBackends), mo);
    }
  }

  waitForTrunks();
}

Testbed::~Testbed() {
  // Edges first (they hold trunks into origins), then origins, apps,
  // brokers — reverse dependency order.
  edges_.clear();
  l4_.reset();
  origins_.clear();
  apps_.clear();
  brokers_.clear();
}

SocketAddr Testbed::httpEntry() const {
  if (l4_) {
    return l4HttpVip_;
  }
  return edges_.front()->httpVip();
}

SocketAddr Testbed::mqttEntry() const {
  if (l4_ && opts_.enableMqtt) {
    return l4MqttVip_;
  }
  return edges_.front()->mqttVip();
}

SocketAddr Testbed::httpEntry(size_t edgeIdx) const {
  return edges_.at(edgeIdx)->httpVip();
}

SocketAddr Testbed::mqttEntry(size_t edgeIdx) const {
  return edges_.at(edgeIdx)->mqttVip();
}

std::vector<release::RestartableHost*> Testbed::edgeHosts() {
  std::vector<release::RestartableHost*> out;
  for (auto& e : edges_) {
    out.push_back(e.get());
  }
  return out;
}

std::vector<release::RestartableHost*> Testbed::originHosts() {
  std::vector<release::RestartableHost*> out;
  for (auto& o : origins_) {
    out.push_back(o.get());
  }
  return out;
}

std::vector<release::RestartableHost*> Testbed::appHosts() {
  std::vector<release::RestartableHost*> out;
  for (auto& a : apps_) {
    out.push_back(a.get());
  }
  return out;
}

void Testbed::waitForTrunks(Duration timeout) {
  Stopwatch sw;
  while (sw.seconds() * 1000 < static_cast<double>(timeout.count())) {
    bool allUp = true;
    for (auto& e : edges_) {
      size_t originsUp = 0;
      for (auto& o : origins_) {
        bool up = false;
        o->withActiveProxy([&](proxygen::Proxy* p) {
          up = p != nullptr && p->trunkSessionCount() > 0;
        });
        if (up) {
          ++originsUp;
        }
      }
      if (originsUp < origins_.size()) {
        allUp = false;
      }
      (void)e;
    }
    if (allUp && !origins_.empty()) {
      // Each origin sees at least one trunk; give the remaining
      // handshakes one more tick.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  throw std::runtime_error("Testbed: trunks failed to establish");
}

}  // namespace zdr::core
