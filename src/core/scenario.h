// Scenario matrix: the mixed-protocol workload a release must survive.
//
// A realistic rollout is not judged against one traffic class but a
// blend (§2.2): short HTTP/1.1 API calls riding multiplexed trunks,
// heavy-tailed POST uploads that straddle restarts, an MQTT device
// fleet with live fanout, long-lived quicish flows — and, on top,
// flash-crowd load steps. ScenarioMatrix bundles those generators
// against one testbed (one PoP) under a single metric-prefix family so
// the release controller's SLO evaluator can treat "the client view of
// this PoP" as one set of counters.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/testbed.h"
#include "core/workload.h"

namespace zdr::core {

struct ScenarioOptions {
  // Metric prefix root; generators report under "<prefix>.http",
  // "<prefix>.up_s/_m/_l", "<prefix>.mq", "<prefix>.quic",
  // "<prefix>.burst".
  std::string prefix = "sc";

  bool http = true;
  size_t httpConcurrency = 6;
  Duration httpThinkTime = Duration{3};
  Duration httpTimeout = Duration{3000};

  // Heavy-tailed uploads: many small, some medium, few large. Sizes
  // are per-chunk; a large upload straddles several hundred ms.
  bool uploads = true;
  size_t uploadSmallConcurrency = 2;
  size_t uploadMediumConcurrency = 1;
  size_t uploadLargeConcurrency = 1;

  bool mqtt = true;
  size_t mqttClients = 8;
  Duration mqttPublishInterval = Duration{10};
  // Client-side liveness probe: a tunnel is declared dead (and
  // re-dialed, counting one ".drops") after two unanswered pings. On a
  // densely packed testbed the pong round-trip rides the box's
  // scheduling tail, so high-host-count runs must widen this or count
  // false tunnel deaths against the release's disruption budget.
  Duration mqttKeepAlive = Duration{100};

  bool quic = false;  // needs TestbedOptions.enableQuic
  size_t quicFlows = 8;

  // Flash crowd: an extra HTTP generator started on demand. Sized to
  // stay under the edge admission caps — a load step, not an overload
  // attack (overload shedding is its own scenario).
  size_t flashCrowdConcurrency = 8;
  Duration flashCrowdThinkTime = Duration{1};
};

class ScenarioMatrix {
 public:
  ScenarioMatrix(Testbed& bed, ScenarioOptions opts);
  ~ScenarioMatrix();
  ScenarioMatrix(const ScenarioMatrix&) = delete;
  ScenarioMatrix& operator=(const ScenarioMatrix&) = delete;

  void start();
  void stop();

  // Load step up / back down (idempotent).
  void flashCrowdBegin();
  void flashCrowdEnd();

  // Completed requests across every HTTP-shaped generator.
  [[nodiscard]] uint64_t completed() const;
  // Client-visible failures: err_http + err_timeout summed over every
  // HTTP-shaped generator — the zero-disruption bar (transport resets
  // from keep-alive drain races are retryable and excluded, matching
  // the SLO evaluator).
  [[nodiscard]] uint64_t clientVisibleErrors() const;
  [[nodiscard]] uint64_t mqttDrops() const;
  [[nodiscard]] size_t mqttConnected() const;

  // Prefixes for SloSignals.clientPrefixes (includes the MQTT prefix:
  // its ".drops" rides the same suffix convention).
  [[nodiscard]] std::vector<std::string> clientPrefixes() const;
  // The histogram driving the latency SLO: "<prefix>.http.latency_ms".
  [[nodiscard]] std::string latencyHist() const;

 private:
  Testbed& bed_;
  ScenarioOptions opts_;
  MetricsRegistry& metrics_;
  std::unique_ptr<HttpLoadGen> http_;
  std::unique_ptr<HttpLoadGen> burst_;
  std::vector<std::unique_ptr<UploadGen>> uploads_;
  std::unique_ptr<MqttFleet> mqttFleet_;
  std::unique_ptr<MqttPublisher> mqttPublisher_;
  std::unique_ptr<QuicFlowGen> quic_;
  bool running_ = false;
  bool bursting_ = false;
};

}  // namespace zdr::core
