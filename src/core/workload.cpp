#include "core/workload.h"

namespace zdr::core {

// ------------------------------------------------------------ HttpLoadGen

HttpLoadGen::HttpLoadGen(const SocketAddr& target, Options opts,
                         MetricsRegistry& metrics, std::string prefix)
    : target_(target),
      opts_(opts),
      metrics_(metrics),
      prefix_(std::move(prefix)),
      thread_(prefix_) {}

HttpLoadGen::~HttpLoadGen() { stop(); }

void HttpLoadGen::start() {
  if (running_.exchange(true)) {
    return;
  }
  thread_.runSync([this] {
    for (size_t i = 0; i < opts_.concurrency; ++i) {
      clients_.push_back(http::Client::make(thread_.loop(), target_));
      launchOne(i);
    }
  });
}

void HttpLoadGen::launchOne(size_t idx) {
  if (!running_.load(std::memory_order_relaxed)) {
    return;
  }
  auto client = clients_[idx];
  http::Request req;
  req.method = opts_.method;
  req.path = opts_.path;
  if (opts_.postBytes > 0) {
    req.method = "POST";
    req.body.assign(opts_.postBytes, 'p');
  }
  client->request(
      std::move(req),
      [this, idx](http::Client::Result r) {
        if (!running_.load(std::memory_order_relaxed)) {
          return;  // shutdown artifact, not a measured disruption
        }
        if (r.timedOut) {
          metrics_.counter(prefix_ + ".err_timeout").add();
        } else if (r.transportError) {
          metrics_.counter(prefix_ + ".err_transport").add();
        } else if (r.response.status >= 500) {
          metrics_.counter(prefix_ + ".err_http").add();
        } else {
          metrics_.counter(prefix_ + ".ok").add();
          completed_.fetch_add(1, std::memory_order_relaxed);
          metrics_.histogram(prefix_ + ".latency_ms")
              .record(r.latencySec * 1000.0);
        }
        if (running_.load(std::memory_order_relaxed)) {
          thread_.loop().runAfter(opts_.thinkTime,
                                  [this, idx] { launchOne(idx); });
        }
      },
      opts_.timeout);
}

void HttpLoadGen::stop() {
  if (!running_.exchange(false)) {
    return;
  }
  thread_.runSync([this] {
    for (auto& c : clients_) {
      c->close();
    }
    clients_.clear();
  });
}

// -------------------------------------------------------------- UploadGen

UploadGen::UploadGen(const SocketAddr& target, Options opts,
                     MetricsRegistry& metrics, std::string prefix)
    : target_(target),
      opts_(opts),
      metrics_(metrics),
      prefix_(std::move(prefix)),
      thread_(prefix_) {}

UploadGen::~UploadGen() { stop(); }

void UploadGen::start() {
  if (running_.exchange(true)) {
    return;
  }
  thread_.runSync([this] {
    for (size_t i = 0; i < opts_.concurrency; ++i) {
      clients_.push_back(http::Client::make(thread_.loop(), target_));
      launchOne(i);
    }
  });
}

void UploadGen::launchOne(size_t idx) {
  if (!running_.load(std::memory_order_relaxed)) {
    return;
  }
  auto client = clients_[idx];
  client->pacedPost(
      opts_.path, opts_.chunks, opts_.chunkBytes, opts_.chunkInterval,
      [this, idx](http::Client::Result r) {
        if (!running_.load(std::memory_order_relaxed)) {
          return;  // shutdown artifact, not a measured disruption
        }
        if (r.timedOut) {
          metrics_.counter(prefix_ + ".err_timeout").add();
        } else if (r.transportError) {
          metrics_.counter(prefix_ + ".err_transport").add();
        } else if (r.response.status >= 500) {
          // The disruption class PPR exists to prevent (§4.3).
          metrics_.counter(prefix_ + ".err_http").add();
        } else {
          metrics_.counter(prefix_ + ".ok").add();
          completed_.fetch_add(1, std::memory_order_relaxed);
        }
        if (running_.load(std::memory_order_relaxed)) {
          thread_.loop().runAfter(opts_.pauseBetween,
                                  [this, idx] { launchOne(idx); });
        }
      },
      opts_.timeout);
}

void UploadGen::stop() {
  if (!running_.exchange(false)) {
    return;
  }
  thread_.runSync([this] {
    for (auto& c : clients_) {
      c->close();
    }
    clients_.clear();
  });
}

// -------------------------------------------------------------- MqttFleet

MqttFleet::MqttFleet(const SocketAddr& entry, Options opts,
                     MetricsRegistry& metrics, std::string prefix)
    : entry_(entry),
      opts_(opts),
      metrics_(metrics),
      prefix_(std::move(prefix)),
      thread_(prefix_) {
  clients_.resize(opts_.clients);
}

MqttFleet::~MqttFleet() { stop(); }

void MqttFleet::start() {
  if (running_.exchange(true)) {
    return;
  }
  thread_.runSync([this] {
    for (size_t i = 0; i < opts_.clients; ++i) {
      connectOne(i);
    }
  });
}

void MqttFleet::connectOne(size_t idx) {
  if (!running_.load(std::memory_order_relaxed)) {
    return;
  }
  std::string userId = opts_.userIdPrefix + std::to_string(idx);
  auto client = mqtt::Client::make(thread_.loop(), userId);
  clients_[idx] = client;

  client->setPublishCallback(
      [this](const std::string&, const std::string&) {
        publishes_.fetch_add(1, std::memory_order_relaxed);
        metrics_.counter(prefix_ + ".publish_received").add();
      });
  client->setCloseCallback([this, idx](std::error_code) {
    connected_.fetch_sub(1, std::memory_order_relaxed);
    metrics_.counter(prefix_ + ".drops").add();
    if (running_.load(std::memory_order_relaxed)) {
      // Client-side retry: re-initiate "the normal way" — a fresh
      // session, which shows up at the broker as a new-connection ACK
      // storm when DCR is off (Fig 9).
      metrics_.counter(prefix_ + ".reconnects").add();
      thread_.loop().runAfter(opts_.reconnectDelay,
                              [this, idx] { connectOne(idx); });
    }
  });
  std::string topic = opts_.topicPrefix + userId;
  client->connect(entry_, /*cleanSession=*/true,
                  [this, client, topic](bool sessionPresent, uint8_t rc) {
                    if (rc == mqtt::kConnAccepted) {
                      connected_.fetch_add(1, std::memory_order_relaxed);
                      metrics_.counter(prefix_ + ".connack").add();
                      if (sessionPresent) {
                        metrics_.counter(prefix_ + ".session_resumed").add();
                      }
                      client->subscribe({topic});
                      if (opts_.keepAliveInterval.count() > 0) {
                        client->enableKeepAlive(opts_.keepAliveInterval);
                      }
                    }
                  });
}

void MqttFleet::stop() {
  if (!running_.exchange(false)) {
    return;
  }
  thread_.runSync([this] {
    for (auto& c : clients_) {
      if (c) {
        c->abort();
      }
    }
    clients_.clear();
  });
}

// ---------------------------------------------------------- MqttPublisher

MqttPublisher::MqttPublisher(const SocketAddr& brokerAddr, Options opts,
                             MetricsRegistry& metrics, std::string prefix)
    : broker_(brokerAddr),
      opts_(opts),
      metrics_(metrics),
      prefix_(std::move(prefix)),
      thread_(prefix_) {}

MqttPublisher::~MqttPublisher() { stop(); }

void MqttPublisher::start() {
  if (running_.exchange(true)) {
    return;
  }
  thread_.runSync([this] {
    client_ = mqtt::Client::make(thread_.loop(), "publisher");
    client_->connect(broker_, true, [this](bool, uint8_t rc) {
      if (rc != mqtt::kConnAccepted) {
        return;
      }
      timer_ = thread_.loop().runEvery(opts_.interval, [this] {
        if (!running_.load(std::memory_order_relaxed)) {
          return;
        }
        std::string user =
            opts_.userIdPrefix + std::to_string(next_ % opts_.fleetSize);
        ++next_;
        client_->publish(opts_.topicPrefix + user, "notification");
        metrics_.counter(prefix_ + ".publish_sent").add();
      });
    });
  });
}

void MqttPublisher::stop() {
  if (!running_.exchange(false)) {
    return;
  }
  thread_.runSync([this] {
    thread_.loop().cancelTimer(timer_);
    if (client_) {
      client_->abort();
      client_ = nullptr;
    }
  });
}

// ------------------------------------------------------------ QuicFlowGen

QuicFlowGen::QuicFlowGen(const SocketAddr& vip, Options opts,
                         MetricsRegistry& metrics, std::string prefix)
    : vip_(vip),
      opts_(opts),
      metrics_(metrics),
      prefix_(std::move(prefix)),
      thread_(prefix_) {}

QuicFlowGen::~QuicFlowGen() { stop(); }

void QuicFlowGen::start() {
  if (running_.exchange(true)) {
    return;
  }
  thread_.runSync([this] {
    for (size_t i = 0; i < opts_.flows; ++i) {
      flows_.push_back(std::make_unique<quicish::ClientFlow>(
          thread_.loop(), vip_, 0x1000 + i));
      flows_.back()->sendInitial();
    }
    timer_ = thread_.loop().runEvery(opts_.sendInterval, [this] {
      if (!running_.load(std::memory_order_relaxed)) {
        return;
      }
      for (auto& f : flows_) {
        f->sendData(opts_.payloadBytes);
      }
      metrics_.counter(prefix_ + ".datagrams_sent").add(flows_.size());
    });
  });
}

void QuicFlowGen::stop() {
  if (!running_.exchange(false)) {
    return;
  }
  thread_.runSync([this] {
    thread_.loop().cancelTimer(timer_);
    flows_.clear();
  });
}

uint64_t QuicFlowGen::totalAcks() const {
  uint64_t total = 0;
  const_cast<QuicFlowGen*>(this)->thread_.runSync([this, &total] {
    for (const auto& f : flows_) {
      total += f->acks();
    }
  });
  return total;
}

uint64_t QuicFlowGen::totalResets() const {
  uint64_t total = 0;
  const_cast<QuicFlowGen*>(this)->thread_.runSync([this, &total] {
    for (const auto& f : flows_) {
      total += f->resets();
    }
  });
  return total;
}

}  // namespace zdr::core
