// Host wrappers: one event-loop thread per simulated machine, plus the
// restart choreography for each tier.
//
//  * ProxyHost — runs a Proxygen instance; restarts either via Socket
//    Takeover (two instances overlap on the host, §4.1) or the
//    traditional HardRestart (drain, die, boot).
//  * AppHost — runs an App. Server; always restarts the traditional
//    way because the tier cannot afford two parallel instances
//    (§4.4); Partial Post Replay covers its in-flight POSTs.
//  * BrokerHost — runs an MQTT broker (not restarted in experiments).
//  * L4Host — runs Katran-model balancers fronting the edge.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "appserver/app_server.h"
#include "l4lb/balancer.h"
#include "l4lb/udp_forwarder.h"
#include "metrics/metrics.h"
#include "mqtt/broker.h"
#include "netcore/event_loop.h"
#include "proxygen/proxy.h"
#include "release/release.h"

namespace zdr::core {

class ProxyHost final : public release::RestartableHost {
 public:
  struct Options {
    // Wall-clock delay modelling the new binary's boot (HardRestart
    // leaves the host dark for drain + boot).
    Duration bootDelay = Duration{100};
  };

  ProxyHost(std::string name, proxygen::Proxy::Config config,
            MetricsRegistry* metrics, Options opts);
  ProxyHost(std::string name, proxygen::Proxy::Config config,
            MetricsRegistry* metrics)
      : ProxyHost(std::move(name), std::move(config), metrics, Options{}) {}
  ~ProxyHost() override;

  [[nodiscard]] std::string hostName() const override { return name_; }
  void beginRestart(release::Strategy strategy) override;
  [[nodiscard]] bool restartComplete() const override {
    return !restartInProgress_.load(std::memory_order_acquire);
  }
  // Blocks until an in-progress restart finishes.
  void waitRestart();

  // Resolved addresses (stable across restarts).
  [[nodiscard]] SocketAddr httpVip() const { return httpVip_; }
  [[nodiscard]] SocketAddr mqttVip() const { return mqttVip_; }
  [[nodiscard]] SocketAddr quicVip() const { return quicVip_; }
  [[nodiscard]] SocketAddr trunkAddr() const { return trunkAddr_; }

  [[nodiscard]] EventLoop& loop() { return thread_.loop(); }
  // Runs `fn` on the host's loop with the active proxy (may be null
  // mid-HardRestart).
  void withActiveProxy(const std::function<void(proxygen::Proxy*)>& fn);
  // Mutates the config the *next* restart boots with — the running
  // instance is untouched. Models a release that ships a config change
  // (e.g. a different worker count) alongside the new binary.
  void updateConfig(const std::function<void(proxygen::Proxy::Config&)>& fn);
  // CPU seconds consumed by this host's loop thread.
  [[nodiscard]] double hostCpuSeconds();
  [[nodiscard]] bool serving();

 private:
  void runZdrRestart();
  void runHardRestart();
  void joinRestartThread();

  std::string name_;
  proxygen::Proxy::Config config_;
  MetricsRegistry* metrics_;
  Options opts_;
  EventLoopThread thread_;

  mutable std::mutex mutex_;
  std::unique_ptr<proxygen::Proxy> active_;
  std::unique_ptr<proxygen::Proxy> draining_;

  std::atomic<bool> restartInProgress_{false};
  std::thread restartThread_;

  SocketAddr httpVip_{};
  SocketAddr mqttVip_{};
  SocketAddr quicVip_{};
  SocketAddr trunkAddr_{};
};

class AppHost final : public release::RestartableHost {
 public:
  struct Options {
    appserver::AppServer::Options server{};
    Duration drainPeriod = Duration{300};  // 10–15 s in production
    Duration bootDelay = Duration{50};
  };

  AppHost(std::string name, const SocketAddr& addr, MetricsRegistry* metrics,
          Options opts);
  ~AppHost() override;

  [[nodiscard]] std::string hostName() const override { return name_; }
  // App servers restart the traditional way regardless of strategy;
  // disruption avoidance comes from PPR, not Socket Takeover (§4.4).
  void beginRestart(release::Strategy strategy) override;
  [[nodiscard]] bool restartComplete() const override {
    return !restartInProgress_.load(std::memory_order_acquire);
  }
  void waitRestart();

  [[nodiscard]] SocketAddr addr() const { return addr_; }
  [[nodiscard]] EventLoop& loop() { return thread_.loop(); }
  void withServer(const std::function<void(appserver::AppServer*)>& fn);

 private:
  void runRestart();
  void joinRestartThread();

  std::string name_;
  MetricsRegistry* metrics_;
  Options opts_;
  EventLoopThread thread_;
  mutable std::mutex mutex_;
  std::unique_ptr<appserver::AppServer> server_;
  std::atomic<bool> restartInProgress_{false};
  std::thread restartThread_;
  SocketAddr addr_{};
};

class BrokerHost {
 public:
  BrokerHost(std::string name, MetricsRegistry* metrics,
             mqtt::Broker::Options opts = {});
  ~BrokerHost();
  [[nodiscard]] SocketAddr addr() const { return addr_; }
  [[nodiscard]] const std::string& hostName() const { return name_; }
  void withBroker(const std::function<void(mqtt::Broker&)>& fn);

 private:
  std::string name_;
  EventLoopThread thread_;
  std::unique_ptr<mqtt::Broker> broker_;
  SocketAddr addr_{};
};

class L4Host {
 public:
  // One balancer per fronted VIP (e.g. "http", "mqtt").
  L4Host(std::string name, MetricsRegistry* metrics);
  ~L4Host();
  // Adds a balanced TCP VIP over `backends`; returns the VIP address.
  SocketAddr addVip(const std::string& vipName,
                    std::vector<l4lb::BackendTarget> backends,
                    l4lb::L4Balancer::Options opts);
  // Adds a UDP VIP forwarded Katran-style (4-tuple consistent hash).
  SocketAddr addUdpVip(const std::string& vipName,
                       std::vector<l4lb::UdpForwarder::Backend> backends,
                       l4lb::UdpForwarder::Options opts);
  void withBalancer(const std::string& vipName,
                    const std::function<void(l4lb::L4Balancer&)>& fn);
  void withUdpForwarder(const std::string& vipName,
                        const std::function<void(l4lb::UdpForwarder&)>& fn);

 private:
  std::string name_;
  MetricsRegistry* metrics_;
  EventLoopThread thread_;
  std::map<std::string, std::unique_ptr<l4lb::L4Balancer>> balancers_;
  std::map<std::string, std::unique_ptr<l4lb::UdpForwarder>> forwarders_;
};

}  // namespace zdr::core
