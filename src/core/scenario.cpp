#include "core/scenario.h"

namespace zdr::core {

ScenarioMatrix::ScenarioMatrix(Testbed& bed, ScenarioOptions opts)
    : bed_(bed), opts_(std::move(opts)), metrics_(bed.metrics()) {
  const std::string& p = opts_.prefix;

  if (opts_.http) {
    HttpLoadGen::Options ho;
    ho.concurrency = opts_.httpConcurrency;
    ho.thinkTime = opts_.httpThinkTime;
    ho.timeout = opts_.httpTimeout;
    http_ = std::make_unique<HttpLoadGen>(bed_.httpEntry(), ho, metrics_,
                                          p + ".http");
  }

  if (opts_.uploads) {
    // Heavy tail: 1 KiB × 8 chunks, 8 KiB × 12, 32 KiB × 20 — the last
    // class straddles restarts by construction (≈ chunks × interval).
    struct Tier {
      const char* suffix;
      size_t concurrency;
      size_t chunks;
      size_t chunkBytes;
    };
    const Tier tiers[] = {
        {".up_s", opts_.uploadSmallConcurrency, 8, 1024},
        {".up_m", opts_.uploadMediumConcurrency, 12, 8192},
        {".up_l", opts_.uploadLargeConcurrency, 20, 32768},
    };
    for (const Tier& t : tiers) {
      if (t.concurrency == 0) {
        continue;
      }
      UploadGen::Options uo;
      uo.concurrency = t.concurrency;
      uo.chunks = t.chunks;
      uo.chunkBytes = t.chunkBytes;
      uo.chunkInterval = Duration{15};
      uploads_.push_back(std::make_unique<UploadGen>(
          bed_.httpEntry(), uo, metrics_, p + t.suffix));
    }
  }

  if (opts_.mqtt && bed_.options().enableMqtt) {
    MqttFleet::Options fo;
    fo.clients = opts_.mqttClients;
    fo.keepAliveInterval = opts_.mqttKeepAlive;
    // Per-scenario topic/user namespace so multiple PoPs' fleets don't
    // collide at their (per-PoP) brokers.
    fo.topicPrefix = p + "/t/";
    fo.userIdPrefix = p + "-user";
    mqttFleet_ = std::make_unique<MqttFleet>(bed_.mqttEntry(), fo, metrics_,
                                             p + ".mq");
    MqttPublisher::Options po;
    po.fleetSize = opts_.mqttClients;
    po.interval = opts_.mqttPublishInterval;
    po.topicPrefix = fo.topicPrefix;
    po.userIdPrefix = fo.userIdPrefix;
    mqttPublisher_ = std::make_unique<MqttPublisher>(
        bed_.broker(0).addr(), po, metrics_, p + ".pub");
  }

  if (opts_.quic && bed_.options().enableQuic) {
    QuicFlowGen::Options qo;
    qo.flows = opts_.quicFlows;
    quic_ = std::make_unique<QuicFlowGen>(bed_.edge(0).quicVip(), qo,
                                          metrics_, p + ".quic");
  }
}

ScenarioMatrix::~ScenarioMatrix() { stop(); }

void ScenarioMatrix::start() {
  if (running_) {
    return;
  }
  running_ = true;
  if (http_) {
    http_->start();
  }
  for (auto& u : uploads_) {
    u->start();
  }
  if (mqttFleet_) {
    mqttFleet_->start();
  }
  if (mqttPublisher_) {
    mqttPublisher_->start();
  }
  if (quic_) {
    quic_->start();
  }
}

void ScenarioMatrix::stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  flashCrowdEnd();
  if (quic_) {
    quic_->stop();
  }
  if (mqttPublisher_) {
    mqttPublisher_->stop();
  }
  if (mqttFleet_) {
    mqttFleet_->stop();
  }
  for (auto& u : uploads_) {
    u->stop();
  }
  if (http_) {
    http_->stop();
  }
}

void ScenarioMatrix::flashCrowdBegin() {
  if (bursting_ || !running_) {
    return;
  }
  bursting_ = true;
  HttpLoadGen::Options bo;
  bo.concurrency = opts_.flashCrowdConcurrency;
  bo.thinkTime = opts_.flashCrowdThinkTime;
  bo.timeout = opts_.httpTimeout;
  burst_ = std::make_unique<HttpLoadGen>(bed_.httpEntry(), bo, metrics_,
                                         opts_.prefix + ".burst");
  burst_->start();
}

void ScenarioMatrix::flashCrowdEnd() {
  if (!bursting_) {
    return;
  }
  bursting_ = false;
  burst_->stop();
  burst_.reset();
}

uint64_t ScenarioMatrix::completed() const {
  uint64_t total = 0;
  for (const auto& prefix : clientPrefixes()) {
    total += metrics_.counter(prefix + ".ok").value();
  }
  return total;
}

uint64_t ScenarioMatrix::clientVisibleErrors() const {
  uint64_t total = 0;
  for (const auto& prefix : clientPrefixes()) {
    // Matches the SLO evaluator's bar: failed responses and hangs;
    // transport resets from drain races are retryable, not disruption.
    for (const char* kind : {".err_http", ".err_timeout"}) {
      total += metrics_.counter(prefix + kind).value();
    }
  }
  return total;
}

uint64_t ScenarioMatrix::mqttDrops() const {
  return mqttFleet_ ? metrics_.counter(opts_.prefix + ".mq.drops").value()
                    : 0;
}

size_t ScenarioMatrix::mqttConnected() const {
  return mqttFleet_ ? mqttFleet_->connectedCount() : 0;
}

std::vector<std::string> ScenarioMatrix::clientPrefixes() const {
  std::vector<std::string> out;
  const std::string& p = opts_.prefix;
  if (http_) {
    out.push_back(p + ".http");
  }
  if (opts_.uploads) {
    if (opts_.uploadSmallConcurrency > 0) {
      out.push_back(p + ".up_s");
    }
    if (opts_.uploadMediumConcurrency > 0) {
      out.push_back(p + ".up_m");
    }
    if (opts_.uploadLargeConcurrency > 0) {
      out.push_back(p + ".up_l");
    }
  }
  // The burst generator counts as client traffic whether or not it is
  // currently active — its counters persist in the registry.
  out.push_back(p + ".burst");
  if (mqttFleet_) {
    out.push_back(p + ".mq");
  }
  return out;
}

std::string ScenarioMatrix::latencyHist() const {
  return opts_.prefix + ".http.latency_ms";
}

}  // namespace zdr::core
