#include "core/hosts.h"

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <fstream>

#include "metrics/trace_export.h"
#include "takeover/takeover.h"

namespace zdr::core {

namespace {

void sleepMs(long ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

std::string takeoverPathFor(const std::string& hostName) {
  return "/tmp/zdr_takeover_" + hostName + "_" +
         std::to_string(::getpid()) + ".sock";
}

// When ZDR_TRACE_ARCHIVE_DIR is set, archive a flight-recorder capture
// of the whole restart window (spans, events, release timeline) as
// <dir>/<host>_trace.json — the handoff-dir analog of a production
// host shipping its black box off-machine before the old instance
// exits. Failures are silent by design: archival must never be able to
// turn a clean release into a failed one.
void archiveTraceCapture(MetricsRegistry* metrics, const std::string& host) {
  const char* dir = std::getenv("ZDR_TRACE_ARCHIVE_DIR");
  if (dir == nullptr || *dir == '\0' || metrics == nullptr) {
    return;
  }
  fr::TraceCaptureOptions opts;
  opts.instance = host;
  std::ofstream out(std::string(dir) + "/" + host + "_trace.json");
  if (out) {
    out << fr::renderTraceCapture(*metrics, opts);
    metrics->counter(host + ".recorder.archived").add();
  }
}

}  // namespace

// ------------------------------------------------------------- ProxyHost

ProxyHost::ProxyHost(std::string name, proxygen::Proxy::Config config,
                     MetricsRegistry* metrics, Options opts)
    : name_(std::move(name)),
      config_(std::move(config)),
      metrics_(metrics),
      opts_(opts),
      thread_(name_) {
  config_.name = name_;
  if (config_.takeoverPath.empty()) {
    config_.takeoverPath = takeoverPathFor(name_);
  }
  thread_.runSync([this] {
    active_ = std::make_unique<proxygen::Proxy>(thread_.loop(), config_,
                                                metrics_);
    // Pin kernel-assigned ports so every future instance binds (or
    // adopts) the same addresses.
    httpVip_ = active_->httpVip();
    mqttVip_ = active_->mqttVip();
    quicVip_ = active_->quicVip();
    trunkAddr_ = active_->trunkAddr();
    config_.httpVip = httpVip_;
    config_.mqttVip = mqttVip_;
    config_.quicVip = quicVip_;
    config_.trunkAddr = trunkAddr_;
  });
}

ProxyHost::~ProxyHost() {
  joinRestartThread();
  thread_.runSync([this] {
    draining_.reset();
    active_.reset();
  });
}

void ProxyHost::joinRestartThread() {
  if (restartThread_.joinable()) {
    restartThread_.join();
  }
}

void ProxyHost::waitRestart() {
  while (restartInProgress_.load(std::memory_order_acquire)) {
    sleepMs(5);
  }
  joinRestartThread();
}

void ProxyHost::withActiveProxy(
    const std::function<void(proxygen::Proxy*)>& fn) {
  thread_.runSync([this, &fn] {
    std::lock_guard<std::mutex> lock(mutex_);
    fn(active_.get());
  });
}

void ProxyHost::updateConfig(
    const std::function<void(proxygen::Proxy::Config&)>& fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  fn(config_);
}

double ProxyHost::hostCpuSeconds() {
  double cpu = 0;
  thread_.runSync([&cpu] { cpu = threadCpuSeconds(); });
  return cpu;
}

bool ProxyHost::serving() {
  bool ok = false;
  thread_.runSync([this, &ok] {
    std::lock_guard<std::mutex> lock(mutex_);
    ok = active_ != nullptr && !active_->terminated();
  });
  return ok;
}

void ProxyHost::beginRestart(release::Strategy strategy) {
  bool expected = false;
  if (!restartInProgress_.compare_exchange_strong(expected, true)) {
    return;  // restart already running
  }
  joinRestartThread();
  restartThread_ = std::thread([this, strategy] {
    if (strategy == release::Strategy::kZeroDowntime) {
      runZdrRestart();
    } else {
      runHardRestart();
    }
    restartInProgress_.store(false, std::memory_order_release);
  });
}

void ProxyHost::runZdrRestart() {
  if (metrics_) {
    metrics_->timeline().begin(name_, "restart", "zdr");
  }
  // Fig 5 workflow. Step A: the old instance spawns the takeover
  // server bound to the pre-specified path.
  thread_.runSync([this] {
    std::lock_guard<std::mutex> lock(mutex_);
    if (active_) {
      active_->armTakeoverServer();
    }
  });

  // Step B–D: the new instance connects, receives the fds, ACKs. This
  // exchange is blocking and runs on the restart thread — exactly like
  // the new process performing its startup sequence.
  std::error_code ec;
  auto handoff =
      takeover::TakeoverClient::takeover(config_.takeoverPath, ec);
  if (!handoff) {
    // Takeover failed; the old instance keeps serving (availability
    // must not regress just because a release failed, §5.1).
    if (metrics_) {
      metrics_->counter(name_ + ".takeover_failed").add();
      metrics_->timeline().end(name_, "restart", "takeover_failed");
    }
    return;
  }

  // Spin up the updated instance with the adopted sockets; it starts
  // answering new connections and health checks immediately.
  thread_.runSync([this, &handoff] {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = std::move(active_);
    active_ = std::make_unique<proxygen::Proxy>(
        thread_.loop(), config_, metrics_, std::move(*handoff));
  });

  // Step E already fired inside the loop when the ACK arrived (the
  // takeover server calls enterDrain). Wait out the drain.
  while (true) {
    bool done = false;
    thread_.runSync([this, &done] {
      std::lock_guard<std::mutex> lock(mutex_);
      done = !draining_ || draining_->terminated();
    });
    if (done) {
      break;
    }
    sleepMs(5);
  }
  thread_.runSync([this] {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_.reset();
  });
  if (metrics_) {
    metrics_->counter(name_ + ".zdr_restarts").add();
    metrics_->timeline().end(name_, "restart", "zdr");
  }
  archiveTraceCapture(metrics_, name_);
}

void ProxyHost::runHardRestart() {
  if (metrics_) {
    metrics_->timeline().begin(name_, "restart", "hard");
  }
  // Traditional release: drain (failing health checks), terminate,
  // boot the new binary. The host serves nothing during boot.
  thread_.runSync([this] {
    std::lock_guard<std::mutex> lock(mutex_);
    if (active_) {
      active_->startHardDrain();
    }
  });
  while (true) {
    bool done = false;
    thread_.runSync([this, &done] {
      std::lock_guard<std::mutex> lock(mutex_);
      done = !active_ || active_->terminated();
    });
    if (done) {
      break;
    }
    sleepMs(5);
  }
  thread_.runSync([this] {
    std::lock_guard<std::mutex> lock(mutex_);
    active_.reset();
  });

  sleepMs(opts_.bootDelay.count());  // new binary boots

  thread_.runSync([this] {
    std::lock_guard<std::mutex> lock(mutex_);
    active_ = std::make_unique<proxygen::Proxy>(thread_.loop(), config_,
                                                metrics_);
  });
  if (metrics_) {
    metrics_->counter(name_ + ".hard_restarts").add();
    metrics_->timeline().end(name_, "restart", "hard");
  }
}

// --------------------------------------------------------------- AppHost

AppHost::AppHost(std::string name, const SocketAddr& addr,
                 MetricsRegistry* metrics, Options opts)
    : name_(std::move(name)),
      metrics_(metrics),
      opts_(opts),
      thread_(name_) {
  opts_.server.name = name_;
  thread_.runSync([this, &addr] {
    server_ = std::make_unique<appserver::AppServer>(
        thread_.loop(), addr, opts_.server, metrics_);
    addr_ = server_->localAddr();
  });
}

AppHost::~AppHost() {
  joinRestartThread();
  thread_.runSync([this] { server_.reset(); });
}

void AppHost::joinRestartThread() {
  if (restartThread_.joinable()) {
    restartThread_.join();
  }
}

void AppHost::waitRestart() {
  while (restartInProgress_.load(std::memory_order_acquire)) {
    sleepMs(5);
  }
  joinRestartThread();
}

void AppHost::withServer(
    const std::function<void(appserver::AppServer*)>& fn) {
  thread_.runSync([this, &fn] {
    std::lock_guard<std::mutex> lock(mutex_);
    fn(server_.get());
  });
}

void AppHost::beginRestart(release::Strategy) {
  bool expected = false;
  if (!restartInProgress_.compare_exchange_strong(expected, true)) {
    return;
  }
  joinRestartThread();
  restartThread_ = std::thread([this] {
    runRestart();
    restartInProgress_.store(false, std::memory_order_release);
  });
}

void AppHost::runRestart() {
  if (metrics_) {
    metrics_->timeline().begin(name_, "restart", "app");
  }
  thread_.runSync([this] {
    std::lock_guard<std::mutex> lock(mutex_);
    if (server_) {
      server_->startDrain();
    }
  });
  // Wait out the drain period, but leave early once every connection
  // is gone — a tier that drained in 50 ms should not sit dark for the
  // full worst-case window (the paper's point about drain cost scaling
  // with the slowest straggler, not the average).
  auto waited = Duration{0};
  const auto slice = Duration{10};
  while (waited < opts_.drainPeriod) {
    bool idle = false;
    thread_.runSync([this, &idle] {
      std::lock_guard<std::mutex> lock(mutex_);
      idle = !server_ || server_->activeConnections() == 0;
    });
    if (idle) {
      if (metrics_) {
        metrics_->counter(name_ + ".drain_early_exit").add();
      }
      break;
    }
    sleepMs(static_cast<uint64_t>(slice.count()));
    waited += slice;
  }
  thread_.runSync([this] {
    std::lock_guard<std::mutex> lock(mutex_);
    if (server_) {
      server_->terminate();
    }
    server_.reset();
  });
  sleepMs(opts_.bootDelay.count());
  thread_.runSync([this] {
    std::lock_guard<std::mutex> lock(mutex_);
    server_ = std::make_unique<appserver::AppServer>(
        thread_.loop(), addr_, opts_.server, metrics_);
  });
  if (metrics_) {
    metrics_->counter(name_ + ".restarts").add();
    metrics_->timeline().end(name_, "restart", "app");
  }
}

// ------------------------------------------------------------- BrokerHost

BrokerHost::BrokerHost(std::string name, MetricsRegistry* metrics,
                       mqtt::Broker::Options opts)
    : name_(std::move(name)), thread_(name_) {
  thread_.runSync([this, metrics, &opts] {
    broker_ = std::make_unique<mqtt::Broker>(
        thread_.loop(), SocketAddr::loopback(0), opts, metrics);
    addr_ = broker_->localAddr();
  });
}

BrokerHost::~BrokerHost() {
  // Loop-confined members must die on the loop thread.
  thread_.runSync([this] { broker_.reset(); });
}

void BrokerHost::withBroker(const std::function<void(mqtt::Broker&)>& fn) {
  thread_.runSync([this, &fn] { fn(*broker_); });
}

// ---------------------------------------------------------------- L4Host

L4Host::L4Host(std::string name, MetricsRegistry* metrics)
    : name_(std::move(name)), metrics_(metrics), thread_(name_) {}

L4Host::~L4Host() {
  thread_.runSync([this] {
    forwarders_.clear();
    balancers_.clear();
  });
}

SocketAddr L4Host::addUdpVip(const std::string& vipName,
                             std::vector<l4lb::UdpForwarder::Backend> backends,
                             l4lb::UdpForwarder::Options opts) {
  SocketAddr vip;
  thread_.runSync([this, &vipName, &backends, &opts, &vip] {
    auto fwd = std::make_unique<l4lb::UdpForwarder>(
        thread_.loop(), SocketAddr::loopback(0), std::move(backends), opts,
        metrics_);
    vip = fwd->vip();
    forwarders_[vipName] = std::move(fwd);
  });
  return vip;
}

void L4Host::withUdpForwarder(
    const std::string& vipName,
    const std::function<void(l4lb::UdpForwarder&)>& fn) {
  thread_.runSync([this, &vipName, &fn] {
    auto it = forwarders_.find(vipName);
    if (it != forwarders_.end()) {
      fn(*it->second);
    }
  });
}

SocketAddr L4Host::addVip(const std::string& vipName,
                          std::vector<l4lb::BackendTarget> backends,
                          l4lb::L4Balancer::Options opts) {
  SocketAddr vip;
  thread_.runSync([this, &vipName, &backends, &opts, &vip] {
    auto balancer = std::make_unique<l4lb::L4Balancer>(
        thread_.loop(), SocketAddr::loopback(0), std::move(backends), opts,
        metrics_);
    vip = balancer->vip();
    balancers_[vipName] = std::move(balancer);
  });
  return vip;
}

void L4Host::withBalancer(const std::string& vipName,
                          const std::function<void(l4lb::L4Balancer&)>& fn) {
  thread_.runSync([this, &vipName, &fn] {
    auto it = balancers_.find(vipName);
    if (it != balancers_.end()) {
      fn(*it->second);
    }
  });
}

}  // namespace zdr::core
