// Testbed: a miniature of Figure 1's end-to-end infrastructure, built
// from real sockets on loopback — L4LB → Edge Proxygen → trunks →
// Origin Proxygen → { App. Servers, MQTT brokers }.
//
// This is the main entry point of the library: experiments construct a
// Testbed, attach workload generators, then drive releases against
// individual tiers and read the metrics registry.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/hosts.h"

namespace zdr::core {

struct TestbedOptions {
  size_t edges = 2;
  size_t origins = 2;
  size_t appServers = 3;
  size_t brokers = 1;

  // Prepended to every host name ("pop0." → "pop0.edge0"). Multi-PoP
  // experiments run one Testbed per PoP; the prefix keeps host names,
  // metric instances, span sinks and fault tags disjoint across PoPs.
  std::string namePrefix;

  bool enableMqtt = true;
  bool enableQuic = false;
  bool enableL4 = false;

  // SO_REUSEPORT worker counts per proxy (1 = single-threaded, the
  // historical behaviour). Edges use httpWorkers, origins trunkWorkers.
  size_t httpWorkers = 1;
  size_t trunkWorkers = 1;

  // Scaled-down drain periods (production: 20 min proxy, 10–15 s app).
  Duration proxyDrainPeriod = Duration{800};
  Duration appDrainPeriod = Duration{300};
  Duration requestTimeout = Duration{3000};

  // Per-worker span-ring capacity for every tier (proxy shards and app
  // servers). E2E tests that scrape full span trees raise this so the
  // ring never wraps mid-release.
  size_t spanSinkCapacity = 8192;

  bool pprEnabled = true;
  // Overrides the app tier's PPR support independently of the proxy's
  // (for testing the §5.2 expectation gate: proxy-off + server-on).
  std::optional<bool> appPprOverride;
  bool dcrEnabled = true;
  bool udpUserSpaceRouting = true;

  appserver::AppServer::Options appOptions{};
  l4lb::L4Balancer::Options l4Options{};

  // Applied to every proxy config (edges and origins) after the
  // testbed fills in the standard fields — the escape hatch for tests
  // tuning containment knobs (breaker thresholds, retry budgets, shed
  // caps, drain deadlines) without widening TestbedOptions per knob.
  std::function<void(proxygen::Proxy::Config&)> proxyConfigHook;
};

class Testbed {
 public:
  explicit Testbed(TestbedOptions opts);
  ~Testbed();
  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const TestbedOptions& options() const noexcept {
    return opts_;
  }

  [[nodiscard]] ProxyHost& edge(size_t i) { return *edges_.at(i); }
  [[nodiscard]] ProxyHost& origin(size_t i) { return *origins_.at(i); }
  [[nodiscard]] AppHost& app(size_t i) { return *apps_.at(i); }
  [[nodiscard]] BrokerHost& broker(size_t i) { return *brokers_.at(i); }
  [[nodiscard]] size_t edgeCount() const { return edges_.size(); }
  [[nodiscard]] size_t originCount() const { return origins_.size(); }
  [[nodiscard]] size_t appCount() const { return apps_.size(); }

  // Where clients connect (L4 VIP when enabled, else edge 0).
  [[nodiscard]] SocketAddr httpEntry() const;
  [[nodiscard]] SocketAddr mqttEntry() const;
  [[nodiscard]] SocketAddr httpEntry(size_t edgeIdx) const;
  [[nodiscard]] SocketAddr mqttEntry(size_t edgeIdx) const;

  [[nodiscard]] std::vector<release::RestartableHost*> edgeHosts();
  [[nodiscard]] std::vector<release::RestartableHost*> originHosts();
  [[nodiscard]] std::vector<release::RestartableHost*> appHosts();

  // Blocks until every edge has live trunks to every origin.
  void waitForTrunks(Duration timeout = Duration{5000});

 private:
  TestbedOptions opts_;
  MetricsRegistry metrics_;
  std::vector<std::unique_ptr<BrokerHost>> brokers_;
  std::vector<std::unique_ptr<AppHost>> apps_;
  std::vector<std::unique_ptr<ProxyHost>> origins_;
  std::vector<std::unique_ptr<ProxyHost>> edges_;
  std::unique_ptr<L4Host> l4_;
  SocketAddr l4HttpVip_{};
  SocketAddr l4MqttVip_{};
};

}  // namespace zdr::core
