// Workload generators playing the paper's traffic classes (§2.2):
//  * HttpLoadGen  — short-lived API requests (and cacheable GETs);
//  * UploadGen    — long POST uploads that straddle restarts (§4.3);
//  * MqttFleet    — persistent pub/sub clients with live publishes and
//                   reconnect-on-drop behaviour (§4.2, Fig 9);
//  * QuicFlowGen  — conn-ID datagram flows (Fig 2d / Fig 10).
//
// Every generator runs on its own event-loop thread and reports into a
// MetricsRegistry under a caller-chosen prefix.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "http/client.h"
#include "metrics/metrics.h"
#include "mqtt/client.h"
#include "netcore/event_loop.h"
#include "quicish/client.h"

namespace zdr::core {

class HttpLoadGen {
 public:
  struct Options {
    size_t concurrency = 8;
    Duration thinkTime = Duration{5};  // between a response and the next req
    std::string path = "/api/object";
    std::string method = "GET";
    size_t postBytes = 0;      // >0 ⇒ POST with this body size
    Duration timeout = Duration{3000};
  };

  // Counters: <prefix>.ok, .err_http (5xx), .err_transport, .err_timeout;
  // histogram <prefix>.latency_ms; series <prefix>.rps is derived by
  // callers from .ok deltas.
  HttpLoadGen(const SocketAddr& target, Options opts,
              MetricsRegistry& metrics, std::string prefix);
  ~HttpLoadGen();

  void start();
  void stop();
  [[nodiscard]] uint64_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }

 private:
  void launchOne(size_t idx);

  SocketAddr target_;
  Options opts_;
  MetricsRegistry& metrics_;
  std::string prefix_;
  EventLoopThread thread_;
  std::vector<std::shared_ptr<http::Client>> clients_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> completed_{0};
};

class UploadGen {
 public:
  struct Options {
    size_t concurrency = 4;
    size_t chunks = 20;          // upload duration ≈ chunks × interval
    size_t chunkBytes = 2048;
    Duration chunkInterval = Duration{25};
    Duration pauseBetween = Duration{10};
    Duration timeout = Duration{30000};
    std::string path = "/upload";
  };

  // Counters: <prefix>.ok (upload completed, possibly after a PPR
  // replay), .err_http (500 — the disruption PPR prevents),
  // .err_transport, .err_timeout.
  UploadGen(const SocketAddr& target, Options opts, MetricsRegistry& metrics,
            std::string prefix);
  ~UploadGen();

  void start();
  void stop();
  [[nodiscard]] uint64_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }

 private:
  void launchOne(size_t idx);

  SocketAddr target_;
  Options opts_;
  MetricsRegistry& metrics_;
  std::string prefix_;
  EventLoopThread thread_;
  std::vector<std::shared_ptr<http::Client>> clients_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> completed_{0};
};

class MqttFleet {
 public:
  struct Options {
    size_t clients = 20;
    // Reconnect delay after an unexpected drop (the client-side retry
    // storm the paper measures without DCR).
    Duration reconnectDelay = Duration{50};
    // PINGREQ keepalive (0 ⇒ disabled); dead transports are detected
    // and reconnected like production MQTT clients (§4.2).
    Duration keepAliveInterval = Duration{0};
    std::string topicPrefix = "t/";
    std::string userIdPrefix = "user";
  };

  // Counters: <prefix>.publish_received, .connack, .session_resumed,
  // .drops, .reconnects.
  MqttFleet(const SocketAddr& entry, Options opts, MetricsRegistry& metrics,
            std::string prefix);
  ~MqttFleet();

  void start();
  void stop();
  [[nodiscard]] size_t connectedCount() const {
    return connected_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t publishesReceived() const {
    return publishes_.load(std::memory_order_relaxed);
  }

 private:
  void connectOne(size_t idx);

  SocketAddr entry_;
  Options opts_;
  MetricsRegistry& metrics_;
  std::string prefix_;
  EventLoopThread thread_;
  std::vector<std::shared_ptr<mqtt::Client>> clients_;
  std::atomic<bool> running_{false};
  std::atomic<size_t> connected_{0};
  std::atomic<uint64_t> publishes_{0};
};

// Publishes to each fleet member's topic in a round-robin at a fixed
// rate — the "Publish messages routed through the tunnel" of Fig 9.
class MqttPublisher {
 public:
  struct Options {
    size_t fleetSize = 20;
    Duration interval = Duration{5};  // between publishes
    std::string topicPrefix = "t/";
    std::string userIdPrefix = "user";
  };

  MqttPublisher(const SocketAddr& brokerAddr, Options opts,
                MetricsRegistry& metrics, std::string prefix);
  ~MqttPublisher();

  void start();
  void stop();

 private:
  SocketAddr broker_;
  Options opts_;
  MetricsRegistry& metrics_;
  std::string prefix_;
  EventLoopThread thread_;
  std::shared_ptr<mqtt::Client> client_;
  std::atomic<bool> running_{false};
  size_t next_ = 0;
  EventLoop::TimerId timer_ = 0;
};

// Long-lived quicish flows sending data at a fixed rate.
class QuicFlowGen {
 public:
  struct Options {
    size_t flows = 32;
    Duration sendInterval = Duration{5};
    size_t payloadBytes = 64;
  };

  QuicFlowGen(const SocketAddr& vip, Options opts, MetricsRegistry& metrics,
              std::string prefix);
  ~QuicFlowGen();

  void start();
  void stop();
  [[nodiscard]] uint64_t totalAcks() const;
  [[nodiscard]] uint64_t totalResets() const;

 private:
  SocketAddr vip_;
  Options opts_;
  MetricsRegistry& metrics_;
  std::string prefix_;
  EventLoopThread thread_;
  std::vector<std::unique_ptr<quicish::ClientFlow>> flows_;
  std::atomic<bool> running_{false};
  EventLoop::TimerId timer_ = 0;
};

}  // namespace zdr::core
