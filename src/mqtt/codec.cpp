#include "mqtt/codec.h"

namespace zdr::mqtt {

namespace {

constexpr size_t kMaxRemainingLength = 1 << 20;

void appendString(Buffer& out, const std::string& s) {
  out.appendU16(static_cast<uint16_t>(s.size()));
  out.append(s);
}

// Variable-length "remaining length" (§2.2.3 of the MQTT spec).
void appendRemainingLength(Buffer& out, size_t len) {
  do {
    auto digit = static_cast<uint8_t>(len % 128);
    len /= 128;
    if (len > 0) {
      digit |= 0x80;
    }
    out.appendU8(digit);
  } while (len > 0);
}

struct Cursor {
  std::string_view data;
  size_t pos = 0;

  [[nodiscard]] bool readU8(uint8_t& v) {
    if (pos + 1 > data.size()) {
      return false;
    }
    v = static_cast<uint8_t>(data[pos++]);
    return true;
  }
  [[nodiscard]] bool readU16(uint16_t& v) {
    if (pos + 2 > data.size()) {
      return false;
    }
    v = static_cast<uint16_t>((static_cast<uint8_t>(data[pos]) << 8) |
                              static_cast<uint8_t>(data[pos + 1]));
    pos += 2;
    return true;
  }
  [[nodiscard]] bool readString(std::string& s) {
    uint16_t len = 0;
    if (!readU16(len) || pos + len > data.size()) {
      return false;
    }
    s.assign(data.substr(pos, len));
    pos += len;
    return true;
  }
  [[nodiscard]] std::string rest() const {
    return std::string(data.substr(pos));
  }
};

}  // namespace

void encode(const Packet& p, Buffer& out) {
  Buffer body;
  uint8_t flags = 0;
  switch (p.type) {
    case PacketType::kConnect: {
      appendString(body, "MQTT");
      body.appendU8(4);  // protocol level 3.1.1
      body.appendU8(p.cleanSession ? 0x02 : 0x00);
      body.appendU16(p.keepAliveSec);
      appendString(body, p.clientId);
      break;
    }
    case PacketType::kConnack: {
      body.appendU8(p.sessionPresent ? 1 : 0);
      body.appendU8(p.returnCode);
      break;
    }
    case PacketType::kPublish: {
      appendString(body, p.topic);
      body.append(p.payload);
      break;
    }
    case PacketType::kSubscribe: {
      flags = 0x2;  // reserved bits mandated by the spec
      body.appendU16(p.packetId);
      for (const auto& t : p.topics) {
        appendString(body, t);
        body.appendU8(0);  // requested QoS 0
      }
      break;
    }
    case PacketType::kSuback: {
      body.appendU16(p.packetId);
      for (size_t i = 0; i < p.topics.size(); ++i) {
        body.appendU8(0);  // granted QoS 0
      }
      break;
    }
    case PacketType::kPingreq:
    case PacketType::kPingresp:
    case PacketType::kDisconnect:
      break;
  }
  out.appendU8(static_cast<uint8_t>((static_cast<uint8_t>(p.type) << 4) |
                                    flags));
  appendRemainingLength(out, body.size());
  out.append(body.readable());
}

std::optional<Packet> decode(Buffer& in, bool& malformed) {
  malformed = false;
  if (in.size() < 2) {
    return std::nullopt;
  }
  uint8_t first = in.peekU8(0);
  auto type = static_cast<PacketType>(first >> 4);

  // Decode the variable-length remaining length.
  size_t remaining = 0;
  size_t multiplier = 1;
  size_t lenBytes = 0;
  while (true) {
    if (1 + lenBytes >= in.size()) {
      return std::nullopt;  // length itself incomplete
    }
    uint8_t digit = in.peekU8(1 + lenBytes);
    remaining += static_cast<size_t>(digit & 0x7F) * multiplier;
    multiplier *= 128;
    ++lenBytes;
    if ((digit & 0x80) == 0) {
      break;
    }
    if (lenBytes > 4) {
      malformed = true;
      return std::nullopt;
    }
  }
  if (remaining > kMaxRemainingLength) {
    malformed = true;
    return std::nullopt;
  }
  size_t total = 1 + lenBytes + remaining;
  if (in.size() < total) {
    return std::nullopt;
  }

  std::string body = in.toString(total).substr(1 + lenBytes);
  in.consume(total);

  Packet p;
  p.type = type;
  Cursor cur{body};
  switch (type) {
    case PacketType::kConnect: {
      std::string protoName;
      uint8_t level = 0;
      uint8_t connectFlags = 0;
      if (!cur.readString(protoName) || !cur.readU8(level) ||
          !cur.readU8(connectFlags) || !cur.readU16(p.keepAliveSec) ||
          !cur.readString(p.clientId) || protoName != "MQTT") {
        malformed = true;
        return std::nullopt;
      }
      p.cleanSession = (connectFlags & 0x02) != 0;
      break;
    }
    case PacketType::kConnack: {
      uint8_t sp = 0;
      if (!cur.readU8(sp) || !cur.readU8(p.returnCode)) {
        malformed = true;
        return std::nullopt;
      }
      p.sessionPresent = (sp & 1) != 0;
      break;
    }
    case PacketType::kPublish: {
      if (!cur.readString(p.topic)) {
        malformed = true;
        return std::nullopt;
      }
      p.payload = cur.rest();
      break;
    }
    case PacketType::kSubscribe: {
      if (!cur.readU16(p.packetId)) {
        malformed = true;
        return std::nullopt;
      }
      while (cur.pos < body.size()) {
        std::string topic;
        uint8_t qos = 0;
        if (!cur.readString(topic) || !cur.readU8(qos)) {
          malformed = true;
          return std::nullopt;
        }
        p.topics.push_back(std::move(topic));
      }
      break;
    }
    case PacketType::kSuback: {
      if (!cur.readU16(p.packetId)) {
        malformed = true;
        return std::nullopt;
      }
      break;
    }
    case PacketType::kPingreq:
    case PacketType::kPingresp:
    case PacketType::kDisconnect:
      break;
    default:
      malformed = true;
      return std::nullopt;
  }
  return p;
}

}  // namespace zdr::mqtt
