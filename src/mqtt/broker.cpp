#include "mqtt/broker.h"

#include "netcore/fault_injection.h"

namespace zdr::mqtt {

// One accepted transport (either a direct client or a tunnel relayed by
// an Origin proxy — the broker cannot and need not tell the difference).
struct Broker::Session : std::enable_shared_from_this<Broker::Session> {
  ConnectionPtr conn;
  std::string userId;   // empty until CONNECT
  bool connected = false;

  void send(const Packet& p) {
    Buffer out;
    encode(p, out);
    conn->send(out.readable());
  }
};

Broker::Broker(EventLoop& loop, const SocketAddr& addr, Options opts,
               MetricsRegistry* metrics)
    : loop_(loop), opts_(opts), metrics_(metrics) {
  acceptor_ = std::make_unique<Acceptor>(
      loop, TcpListener(addr), [this](TcpSocket sock) {
        onAccept(std::move(sock));
      });
  reapTimer_ =
      loop_.runEvery(opts_.reapInterval, [this] { reapExpiredContexts(); });
}

Broker::~Broker() {
  loop_.cancelTimer(reapTimer_);
  for (const auto& sess : std::set<std::shared_ptr<Session>>(sessions_)) {
    sess->conn->close({});
  }
}

size_t Broker::attachedCount() const noexcept {
  size_t n = 0;
  for (const auto& [id, ctx] : contexts_) {
    if (ctx.attached) {
      ++n;
    }
  }
  return n;
}

void Broker::bumpCounter(const std::string& name) {
  if (metrics_) {
    metrics_->counter(name).add();
  }
}

void Broker::onAccept(TcpSocket sock) {
  fault::tagFd(sock.fd(), "broker.session");
  auto sess = std::make_shared<Session>();
  sess->conn = Connection::make(loop_, std::move(sock));
  sessions_.insert(sess);

  auto self = sess;
  sess->conn->setDataCallback([this, self](Buffer& in) {
    while (true) {
      bool malformed = false;
      auto pkt = decode(in, malformed);
      if (malformed) {
        self->conn->close(std::make_error_code(std::errc::protocol_error));
        return;
      }
      if (!pkt) {
        return;
      }
      onPacket(self, *pkt);
      if (!self->conn->open()) {
        return;
      }
    }
  });
  sess->conn->setCloseCallback(
      [this, self](std::error_code) { onSessionClosed(self); });
  sess->conn->start();
}

void Broker::onPacket(const std::shared_ptr<Session>& sess, const Packet& p) {
  switch (p.type) {
    case PacketType::kConnect:
      handleConnect(sess, p);
      break;
    case PacketType::kPublish:
      bumpCounter("broker.publish_received");
      handlePublish(p);
      break;
    case PacketType::kSubscribe: {
      if (!sess->connected) {
        sess->conn->close(std::make_error_code(std::errc::protocol_error));
        return;
      }
      auto& ctx = contexts_[sess->userId];
      Packet ack;
      ack.type = PacketType::kSuback;
      ack.packetId = p.packetId;
      ack.topics = p.topics;
      for (const auto& t : p.topics) {
        ctx.subscriptions.insert(t);
        topicSubs_[t].insert(sess->userId);
      }
      sess->send(ack);
      break;
    }
    case PacketType::kPingreq: {
      Packet pong;
      pong.type = PacketType::kPingresp;
      sess->send(pong);
      break;
    }
    case PacketType::kDisconnect: {
      // Clean shutdown: the user's context is discarded entirely.
      if (!sess->userId.empty()) {
        auto it = contexts_.find(sess->userId);
        if (it != contexts_.end()) {
          for (const auto& t : it->second.subscriptions) {
            topicSubs_[t].erase(sess->userId);
          }
          contexts_.erase(it);
        }
      }
      sess->conn->closeAfterFlush();
      break;
    }
    default:
      break;
  }
}

void Broker::handleConnect(const std::shared_ptr<Session>& sess,
                           const Packet& p) {
  Packet ack;
  ack.type = PacketType::kConnack;

  auto it = contexts_.find(p.clientId);
  if (!p.cleanSession) {
    // Resume attempt — the DCR re_connect path.
    if (it == contexts_.end()) {
      // No context: refuse; the Edge will drop the tunnel and the end
      // user re-initiates the connection the normal way (§4.2).
      ack.sessionPresent = false;
      ack.returnCode = kConnRefusedIdRejected;
      bumpCounter("broker.connect_refused");
      sess->send(ack);
      sess->conn->closeAfterFlush();
      return;
    }
    // Context found: displace any stale attachment and re-attach.
    if (it->second.attached && it->second.attached != sess) {
      it->second.attached->conn->close({});
    }
    sess->userId = p.clientId;
    sess->connected = true;
    it->second.attached = sess;
    ack.sessionPresent = true;
    ack.returnCode = kConnAccepted;
    bumpCounter("broker.connect_resumed");
    if (metrics_) {
      // DCR re_connect landed: the detached session is live again.
      metrics_->timeline().point("broker", "dcr_session_attach", p.clientId);
    }
    sess->send(ack);
    // Flush publishes buffered while the user was detached.
    auto queued = std::move(it->second.queued);
    it->second.queued.clear();
    for (const auto& pub : queued) {
      sess->send(pub);
      bumpCounter("broker.publish_delivered");
    }
    return;
  }

  // Fresh connect: (re)create the context.
  if (it != contexts_.end()) {
    for (const auto& t : it->second.subscriptions) {
      topicSubs_[t].erase(p.clientId);
    }
    if (it->second.attached && it->second.attached != sess) {
      it->second.attached->conn->close({});
    }
    contexts_.erase(it);
  }
  sess->userId = p.clientId;
  sess->connected = true;
  auto& ctx = contexts_[p.clientId];
  ctx.attached = sess;
  ack.sessionPresent = false;
  ack.returnCode = kConnAccepted;
  bumpCounter("broker.connack_new");
  sess->send(ack);
}

void Broker::handlePublish(const Packet& p) {
  auto subsIt = topicSubs_.find(p.topic);
  if (subsIt == topicSubs_.end()) {
    return;
  }
  for (const auto& userId : subsIt->second) {
    auto ctxIt = contexts_.find(userId);
    if (ctxIt != contexts_.end()) {
      deliver(ctxIt->second, p);
    }
  }
}

void Broker::deliver(UserContext& ctx, const Packet& publish) {
  if (ctx.attached && ctx.attached->conn->open()) {
    ctx.attached->send(publish);
    bumpCounter("broker.publish_delivered");
    return;
  }
  // Detached (mid-handoff): buffer so the stream resumes seamlessly.
  if (ctx.queued.size() >= opts_.maxQueuedPublishes) {
    ctx.queued.pop_front();
    bumpCounter("broker.publish_dropped");
  }
  ctx.queued.push_back(publish);
  bumpCounter("broker.publish_queued");
}

void Broker::onSessionClosed(const std::shared_ptr<Session>& sess) {
  sessions_.erase(sess);
  if (sess->userId.empty()) {
    return;
  }
  auto it = contexts_.find(sess->userId);
  if (it != contexts_.end() && it->second.attached == sess) {
    // Transport died but the context survives for contextTtl — this is
    // exactly the window Downstream Connection Reuse exploits.
    it->second.attached = nullptr;
    it->second.detachedAt = Clock::now();
    bumpCounter("broker.context_detached");
  }
}

void Broker::reapExpiredContexts() {
  TimePoint now = Clock::now();
  for (auto it = contexts_.begin(); it != contexts_.end();) {
    if (!it->second.attached &&
        now - it->second.detachedAt > opts_.contextTtl) {
      for (const auto& t : it->second.subscriptions) {
        topicSubs_[t].erase(it->first);
      }
      bumpCounter("broker.context_reaped");
      it = contexts_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace zdr::mqtt
