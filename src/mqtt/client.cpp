#include "mqtt/client.h"

namespace zdr::mqtt {

void Client::connect(const SocketAddr& server, bool cleanSession,
                     ConnackCallback onConnack) {
  connackCb_ = std::move(onConnack);
  auto self = shared_from_this();
  Connector::connect(loop_, server,
                     [self, cleanSession](TcpSocket sock, std::error_code ec) {
                       if (ec) {
                         if (self->closeCb_) {
                           self->closeCb_(ec);
                         }
                         return;
                       }
                       self->onSocket(std::move(sock), cleanSession);
                     });
}

void Client::onSocket(TcpSocket sock, bool cleanSession) {
  conn_ = Connection::make(loop_, std::move(sock));
  auto self = shared_from_this();
  conn_->setDataCallback([self](Buffer& in) { self->onInput(in); });
  conn_->setCloseCallback([self](std::error_code ec) {
    self->connected_ = false;
    self->connackCb_ = nullptr;  // drop potential self-references
    // The keepalive timer holds a shared_ptr to this client; cancel it
    // or the client (and its callbacks) would outlive the transport.
    self->loop_.cancelTimer(self->keepAliveTimer_);
    self->keepAliveTimer_ = 0;
    if (self->closeCb_) {
      self->closeCb_(ec);
    }
  });
  conn_->start();

  Packet p;
  p.type = PacketType::kConnect;
  p.clientId = clientId_;
  p.cleanSession = cleanSession;
  send(p);
}

void Client::onInput(Buffer& in) {
  while (true) {
    bool malformed = false;
    auto pkt = decode(in, malformed);
    if (malformed) {
      conn_->close(std::make_error_code(std::errc::protocol_error));
      return;
    }
    if (!pkt) {
      return;
    }
    switch (pkt->type) {
      case PacketType::kConnack: {
        connected_ = pkt->returnCode == kConnAccepted;
        // One-shot: release the callback after use (callers routinely
        // capture shared_ptrs to this client in it).
        auto cb = std::move(connackCb_);
        connackCb_ = nullptr;
        if (cb) {
          cb(pkt->sessionPresent, pkt->returnCode);
        }
        break;
      }
      case PacketType::kPublish:
        if (publishCb_) {
          publishCb_(pkt->topic, pkt->payload);
        }
        break;
      case PacketType::kPingresp:
        awaitingPong_ = false;
        missedPongs_ = 0;
        break;
      default:
        break;
    }
    if (!conn_ || !conn_->open()) {
      return;
    }
  }
}

void Client::send(const Packet& p) {
  if (!conn_ || !conn_->open()) {
    return;
  }
  Buffer out;
  encode(p, out);
  conn_->send(out.readable());
}

void Client::subscribe(std::vector<std::string> topics) {
  Packet p;
  p.type = PacketType::kSubscribe;
  p.packetId = nextPacketId_++;
  p.topics = std::move(topics);
  send(p);
}

void Client::publish(const std::string& topic, const std::string& payload) {
  Packet p;
  p.type = PacketType::kPublish;
  p.topic = topic;
  p.payload = payload;
  send(p);
}

void Client::ping() {
  Packet p;
  p.type = PacketType::kPingreq;
  send(p);
}

void Client::enableKeepAlive(Duration interval, int maxMissedPongs) {
  maxMissedPongs_ = maxMissedPongs;
  loop_.cancelTimer(keepAliveTimer_);
  auto self = shared_from_this();
  keepAliveTimer_ = loop_.runEvery(interval, [self] {
    if (!self->conn_ || !self->conn_->open()) {
      return;
    }
    if (self->awaitingPong_) {
      ++self->missedPongs_;
      if (self->missedPongs_ >= self->maxMissedPongs_) {
        // Transport is silently dead (e.g. a proxy died without FIN):
        // declare it broken so the owner can reconnect.
        self->conn_->close(std::make_error_code(std::errc::timed_out));
        return;
      }
    }
    self->awaitingPong_ = true;
    self->ping();
  });
}

void Client::disconnect() {
  Packet p;
  p.type = PacketType::kDisconnect;
  send(p);
  if (conn_) {
    conn_->closeAfterFlush();
  }
}

void Client::abort() {
  if (conn_) {
    conn_->close(std::make_error_code(std::errc::connection_aborted));
  }
}

}  // namespace zdr::mqtt
