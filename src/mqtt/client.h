// Asynchronous MQTT client (QoS 0 subset).
//
// In the testbed this plays the end-user device: it connects to the
// Edge VIP, subscribes to its notification topic, and measures the
// publish stream continuity across restarts (Fig 9).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mqtt/codec.h"
#include "netcore/connection.h"

namespace zdr::mqtt {

class Client : public std::enable_shared_from_this<Client> {
 public:
  using ConnackCallback = std::function<void(bool sessionPresent,
                                             uint8_t returnCode)>;
  using PublishCallback =
      std::function<void(const std::string& topic, const std::string& payload)>;
  using CloseCallback = std::function<void(std::error_code)>;

  static std::shared_ptr<Client> make(EventLoop& loop, std::string clientId) {
    return std::shared_ptr<Client>(new Client(loop, std::move(clientId)));
  }

  // Dials `server` and sends CONNECT (cleanSession as given).
  void connect(const SocketAddr& server, bool cleanSession,
               ConnackCallback onConnack);
  void subscribe(std::vector<std::string> topics);
  void publish(const std::string& topic, const std::string& payload);
  void ping();

  // Periodic PINGREQ keepalive (§4.2: "MQTT clients periodically
  // exchange ping and initiate new connections as soon as transport
  // layer sessions are broken"). If `maxMissedPongs` consecutive pings
  // go unanswered, the transport is considered dead and closed — which
  // triggers the close callback and, at the workload layer, a
  // client-side reconnect.
  void enableKeepAlive(Duration interval, int maxMissedPongs = 2);
  void disconnect();  // graceful
  void abort();       // slam the transport shut

  void setPublishCallback(PublishCallback cb) { publishCb_ = std::move(cb); }
  void setCloseCallback(CloseCallback cb) { closeCb_ = std::move(cb); }

  [[nodiscard]] bool connected() const noexcept { return connected_; }
  [[nodiscard]] const std::string& clientId() const noexcept {
    return clientId_;
  }

 private:
  Client(EventLoop& loop, std::string clientId)
      : loop_(loop), clientId_(std::move(clientId)) {}

  void onSocket(TcpSocket sock, bool cleanSession);
  void onInput(Buffer& in);
  void send(const Packet& p);

  EventLoop& loop_;
  std::string clientId_;
  ConnectionPtr conn_;
  ConnackCallback connackCb_;
  PublishCallback publishCb_;
  CloseCallback closeCb_;
  bool connected_ = false;
  uint16_t nextPacketId_ = 1;

  // keepalive state
  EventLoop::TimerId keepAliveTimer_ = 0;
  int missedPongs_ = 0;
  int maxMissedPongs_ = 2;
  bool awaitingPong_ = false;
};

}  // namespace zdr::mqtt
