// MQTT back-end broker with persistent per-user connection contexts.
//
// The property Downstream Connection Reuse relies on (§4.2): the
// broker holds the end-user's connection context keyed by the globally
// unique user-id, so when a re_connect arrives through a *different*
// Origin proxy it can re-attach the context ("accepts re_connect if
// one exists") and the publish stream continues; otherwise it refuses
// and the end user must reconnect from scratch.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "metrics/metrics.h"
#include "mqtt/codec.h"
#include "netcore/connection.h"

namespace zdr::mqtt {

class Broker {
 public:
  struct Options {
    // How long a detached user context survives before being reaped.
    Duration contextTtl = Duration{60000};
    // Publishes buffered for a detached user (drops oldest beyond this).
    size_t maxQueuedPublishes = 1024;
    Duration reapInterval = Duration{1000};
  };

  // Binds on `addr` (port 0 ⇒ kernel-assigned; see localAddr()).
  Broker(EventLoop& loop, const SocketAddr& addr, Options opts,
         MetricsRegistry* metrics = nullptr);
  Broker(EventLoop& loop, const SocketAddr& addr)
      : Broker(loop, addr, Options{}, nullptr) {}
  ~Broker();

  [[nodiscard]] SocketAddr localAddr() const { return acceptor_->localAddr(); }

  // Introspection for tests/experiments.
  [[nodiscard]] size_t contextCount() const noexcept {
    return contexts_.size();
  }
  [[nodiscard]] size_t attachedCount() const noexcept;
  [[nodiscard]] bool hasContext(const std::string& userId) const {
    return contexts_.count(userId) > 0;
  }

 private:
  struct Session;  // one accepted transport connection
  struct UserContext {
    std::set<std::string> subscriptions;
    std::deque<Packet> queued;
    std::shared_ptr<Session> attached;  // null while detached
    TimePoint detachedAt{};
  };

  void onAccept(TcpSocket sock);
  void onPacket(const std::shared_ptr<Session>& sess, const Packet& p);
  void onSessionClosed(const std::shared_ptr<Session>& sess);
  void handleConnect(const std::shared_ptr<Session>& sess, const Packet& p);
  void handlePublish(const Packet& p);
  void deliver(UserContext& ctx, const Packet& publish);
  void reapExpiredContexts();
  void bumpCounter(const std::string& name);

  EventLoop& loop_;
  Options opts_;
  MetricsRegistry* metrics_;
  std::unique_ptr<Acceptor> acceptor_;
  std::set<std::shared_ptr<Session>> sessions_;
  std::map<std::string, UserContext> contexts_;
  std::map<std::string, std::set<std::string>> topicSubs_;  // topic→userIds
  EventLoop::TimerId reapTimer_ = 0;
};

}  // namespace zdr::mqtt
