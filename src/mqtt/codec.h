// MQTT 3.1.1-subset packet codec.
//
// The reproduction needs CONNECT/CONNACK (with session resumption so a
// broker can re-attach a user context after Downstream Connection
// Reuse), PUBLISH (QoS 0), SUBSCRIBE/SUBACK, PING and DISCONNECT.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netcore/buffer.h"

namespace zdr::mqtt {

enum class PacketType : uint8_t {
  kConnect = 1,
  kConnack = 2,
  kPublish = 3,
  kSubscribe = 8,
  kSuback = 9,
  kPingreq = 12,
  kPingresp = 13,
  kDisconnect = 14,
};

// CONNACK return codes (3.1.1 table 3.1).
inline constexpr uint8_t kConnAccepted = 0;
inline constexpr uint8_t kConnRefusedIdRejected = 2;

struct Packet {
  PacketType type = PacketType::kPingreq;

  // CONNECT
  std::string clientId;     // the paper's globally-unique user-id
  bool cleanSession = true; // false ⇒ resume existing context (DCR)
  uint16_t keepAliveSec = 60;

  // CONNACK
  bool sessionPresent = false;
  uint8_t returnCode = kConnAccepted;

  // PUBLISH
  std::string topic;
  std::string payload;

  // SUBSCRIBE / SUBACK
  uint16_t packetId = 0;
  std::vector<std::string> topics;
};

// Serializes `p` onto `out`.
void encode(const Packet& p, Buffer& out);

// Decodes one packet if fully buffered (consuming it); nullopt if
// incomplete. Sets `malformed` on protocol violation.
std::optional<Packet> decode(Buffer& in, bool& malformed);

}  // namespace zdr::mqtt
