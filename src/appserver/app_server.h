// App. Server tier (HHVM model) with Partial Post Replay server side.
//
// Paper properties reproduced (§2.1, §4.3, §4.4):
//  * workload dominated by short-lived API requests, plus long-lived
//    HTTP POST uploads;
//  * very brief draining period (10–15 s in production; scaled down in
//    tests) — too short for large uploads to finish organically;
//  * too memory/CPU-constrained to run two instances in parallel, so
//    Socket Takeover is NOT used here; instead, a restarting server
//    answers each unfinished POST with status 379 ("Partial POST
//    Replay") carrying the partial body and echoed request context so
//    the downstream proxy can replay it to a healthy peer.
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <string>

#include "http/codec.h"
#include "metrics/metrics.h"
#include "netcore/connection.h"

namespace zdr::appserver {

class AppServer {
 public:
  struct Options {
    std::string name = "appserver";
    // Whether this build implements the PPR server side. Off ⇒ a
    // restart fails unfinished POSTs with 500 (§4.3 option i).
    bool pprEnabled = true;
    // Synthetic per-new-connection CPU (TLS/TCP state rebuild model,
    // §2.5). Zero disables.
    uint64_t handshakeCpuUnits = 0;
    // Synthetic per-request CPU.
    uint64_t requestCpuUnits = 0;
    // Upper bound on the drain phase, enforced by the server itself:
    // if the orchestrator has not terminated us by then, remaining
    // connections are force-closed (counted as drain_forced_closes).
    // Zero disables the watchdog (the orchestrator owns the clock).
    Duration drainDeadline = Duration{0};
    // Span ring capacity ("<name>.w0" sink; the app server is
    // single-loop, so one ring).
    size_t spanSinkCapacity = 8192;
  };

  // App logic: fills `res` from a fully received request.
  using Handler = std::function<void(const http::Request&, http::Response&)>;

  AppServer(EventLoop& loop, const SocketAddr& addr, Options opts,
            MetricsRegistry* metrics = nullptr);
  ~AppServer();
  AppServer(const AppServer&) = delete;
  AppServer& operator=(const AppServer&) = delete;

  [[nodiscard]] SocketAddr localAddr() const { return acceptor_->localAddr(); }
  void setHandler(Handler h) { handler_ = std::move(h); }

  // --- release workflow ---
  // Enters draining: health checks fail, no new connections are
  // accepted, and every in-flight incomplete POST is answered with 379
  // (PPR on) or 500 (PPR off).
  void startDrain();
  // End of the drain period: remaining connections are reset.
  void terminate();

  [[nodiscard]] bool draining() const noexcept { return draining_; }
  [[nodiscard]] const std::string& name() const noexcept {
    return opts_.name;
  }
  [[nodiscard]] size_t activeConnections() const noexcept {
    return conns_.size();
  }
  [[nodiscard]] size_t inFlightPosts() const;

 private:
  struct ConnState;

  void onAccept(TcpSocket sock);
  void onRequestComplete(const std::shared_ptr<ConnState>& cs);
  void respondPartialPost(const std::shared_ptr<ConnState>& cs);
  void respond500(const std::shared_ptr<ConnState>& cs);
  void bump(const std::string& name);

  EventLoop& loop_;
  Options opts_;
  MetricsRegistry* metrics_;
  Handler handler_;
  std::unique_ptr<Acceptor> acceptor_;
  std::set<std::shared_ptr<ConnState>> conns_;
  bool draining_ = false;
  EventLoop::TimerId drainDeadlineTimer_ = 0;

  // Observability handles (null without a registry).
  trace::SpanSink* spans_ = nullptr;      // "<name>.w0"
  HdrHistogram* handleUs_ = nullptr;      // "<name>.w0.handle_us"
  uint32_t traceInstance_ = 0;
};

// Builds the 379 response for an incomplete request: echoes the
// request line and headers (prefixed per §5.2: ':'-pseudo-headers get
// "pseudo-echo-", the rest "echo-") and carries the partial body.
[[nodiscard]] http::Response buildPartialPostResponse(
    const http::Request& partial, std::string partialBody);

// Reverses buildPartialPostResponse at the proxy: reconstructs the
// original request from a 379 response. Returns nullopt if the
// response is not a genuine PPR response (wrong code OR wrong status
// message — both are required, §5.2).
[[nodiscard]] std::optional<http::Request> reconstructRequestFrom379(
    const http::Response& res);

}  // namespace zdr::appserver
