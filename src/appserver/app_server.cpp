#include "appserver/app_server.h"

#include <algorithm>

#include "netcore/fault_injection.h"

namespace zdr::appserver {

namespace {

// Headers that describe the 379 response itself rather than the echoed
// request; never copied back during reconstruction.
bool isResponseOwnHeader(std::string_view name) {
  return http::Headers::nameEquals(name, "Content-Length") ||
         http::Headers::nameEquals(name, "Transfer-Encoding") ||
         http::Headers::nameEquals(name, "Connection");
}

// Records one app-tier hop span ending now. No-op without a sink or
// without a propagated trace.
void recordAppSpan(trace::SpanSink* sink, uint64_t traceId,
                   uint64_t parentSpan, trace::SpanKind kind,
                   uint32_t instance, uint64_t startNs, uint64_t detail) {
  if (sink == nullptr || traceId == 0 || !trace::tracingEnabled()) {
    return;
  }
  trace::Span s;
  s.traceId = traceId;
  s.spanId = trace::newId();
  s.parentId = parentSpan;
  s.kind = static_cast<uint32_t>(kind);
  s.instance = instance;
  s.startNs = startNs;
  s.endNs = trace::nowNs();
  s.detail = detail;
  sink->record(s);
}

// Extracts the x-zdr-trace context the origin proxy stamped on the
// request (the attempt span is the parent of the app-handle span).
void parseReqTrace(const http::Request& req, uint64_t& traceId,
                   uint64_t& parentSpan) {
  if (!trace::tracingEnabled()) {
    return;
  }
  if (auto tv = req.headers.get(trace::kTraceHeaderName)) {
    trace::parseTraceHeader(*tv, traceId, parentSpan);
  }
}

}  // namespace

struct AppServer::ConnState
    : std::enable_shared_from_this<AppServer::ConnState> {
  ConnectionPtr conn;
  http::RequestParser parser;
  bool closing = false;
  uint64_t reqStartNs = 0;  // first byte of the current request
};

AppServer::AppServer(EventLoop& loop, const SocketAddr& addr, Options opts,
                     MetricsRegistry* metrics)
    : loop_(loop), opts_(opts), metrics_(metrics) {
  handler_ = [](const http::Request& req, http::Response& res) {
    res.status = 200;
    res.body = "ok:" + req.path;
  };
  traceInstance_ = trace::internInstance(opts_.name);
  if (metrics_ != nullptr) {
    spans_ = &metrics_->spanSink(opts_.name + ".w0", opts_.spanSinkCapacity);
    handleUs_ = &metrics_->hdr(opts_.name + ".w0.handle_us");
  }
  acceptor_ = std::make_unique<Acceptor>(
      loop_, TcpListener(addr),
      [this](TcpSocket sock) { onAccept(std::move(sock)); });
}

AppServer::~AppServer() { terminate(); }

void AppServer::bump(const std::string& name) {
  if (metrics_) {
    metrics_->counter(opts_.name + "." + name).add();
  }
}

size_t AppServer::inFlightPosts() const {
  size_t n = 0;
  for (const auto& cs : conns_) {
    if (cs->parser.headersComplete() && !cs->parser.messageComplete() &&
        cs->parser.message().isPost()) {
      ++n;
    }
  }
  return n;
}

void AppServer::onAccept(TcpSocket sock) {
  if (draining_) {
    // Draining servers take no new connections (§2.3).
    bump("conn_refused_draining");
    return;  // socket closes via RAII
  }
  bump("conn_accepted");
  if (opts_.handshakeCpuUnits > 0) {
    burnCpu(opts_.handshakeCpuUnits);  // TLS/TCP state rebuild model
  }

  auto cs = std::make_shared<ConnState>();
  fault::tagFd(sock.fd(), "appserver.conn");
  cs->conn = Connection::make(loop_, std::move(sock));
  conns_.insert(cs);

  auto self = cs;
  cs->conn->setDataCallback([this, self](Buffer& in) {
    while (!in.empty() && !self->closing) {
      if (self->reqStartNs == 0) {
        self->reqStartNs = trace::nowNs();
      }
      auto st = self->parser.feed(in);
      if (st == http::ParseStatus::kError) {
        bump("parse_error");
        self->conn->close(std::make_error_code(std::errc::protocol_error));
        return;
      }
      if (self->parser.messageComplete()) {
        onRequestComplete(self);
        if (self->closing) {
          return;
        }
        self->parser.reset();  // keep-alive: next request
        self->reqStartNs = 0;
        continue;
      }
      // A POST whose headers land while we are already draining will
      // not finish before termination — bounce it with 379 right away
      // (it was not yet in flight when the drain sweep ran).
      if (draining_ && opts_.pprEnabled && self->parser.headersComplete() &&
          self->parser.message().isPost()) {
        respondPartialPost(self);
        return;
      }
      break;  // need more bytes
    }
  });
  cs->conn->setCloseCallback(
      [this, self](std::error_code) { conns_.erase(self); });
  cs->conn->start();
}

void AppServer::onRequestComplete(const std::shared_ptr<ConnState>& cs) {
  const http::Request& req = cs->parser.message();
  http::Response res;
  uint64_t traceId = 0;
  uint64_t parentSpan = 0;
  parseReqTrace(req, traceId, parentSpan);

  if (req.path == "/__health") {
    res.status = draining_ ? 503 : 200;
    res.body = draining_ ? "draining" : "ok";
  } else if (draining_ && opts_.pprEnabled && req.isPost()) {
    // A complete POST that raced the drain start: hand it back whole —
    // cheaper than processing on a dying server, and the proxy replays
    // it losslessly.
    res = buildPartialPostResponse(req, req.body);
    bump("ppr_379_sent");
    recordAppSpan(spans_, traceId, parentSpan, trace::SpanKind::kAppDrainBounce,
                  traceInstance_, cs->reqStartNs, http::kPartialPostStatus);
    Buffer out;
    http::serialize(res, out);
    cs->conn->send(out.readable());
    cs->closing = true;  // see respondPartialPost: proxy closes, not us
    return;
  } else {
    if (opts_.requestCpuUnits > 0) {
      burnCpu(opts_.requestCpuUnits);
    }
    handler_(req, res);
    bump("requests_served");
    if (req.isPost()) {
      bump("posts_served");
    }
  }
  if (handleUs_ != nullptr && cs->reqStartNs != 0) {
    handleUs_->record(
        static_cast<double>(trace::nowNs() - cs->reqStartNs) / 1000.0);
  }
  recordAppSpan(spans_, traceId, parentSpan, trace::SpanKind::kAppHandle,
                traceInstance_, cs->reqStartNs,
                static_cast<uint64_t>(res.status));
  res.reason = std::string(http::defaultReason(res.status));
  Buffer out;
  http::serialize(res, out);
  cs->conn->send(out.readable());
}

void AppServer::startDrain() {
  if (draining_) {
    return;
  }
  draining_ = true;
  bump("drain_started");
  if (metrics_) {
    metrics_->timeline().begin(opts_.name, "app_drain");
  }

  // Stop listening: a SYN must be REFUSED, not accepted-and-dropped —
  // the downstream proxy turns a refused connect into a clean retry
  // against a healthy peer, whereas an accepted-then-reset connection
  // looks like a mid-request failure it cannot safely retry.
  if (acceptor_) {
    acceptor_->close();
  }

  // Answer every in-flight incomplete POST now — these cannot finish
  // within the brief drain period (§4.3).
  std::vector<std::shared_ptr<ConnState>> pending(conns_.begin(),
                                                  conns_.end());
  for (const auto& cs : pending) {
    // First account for every byte the kernel has already delivered:
    // the 379 must echo everything the proxy managed to send us.
    if (!cs->closing && cs->conn->open()) {
      cs->conn->drainPending();
    }
  }
  for (const auto& cs : pending) {
    if (cs->closing || !cs->parser.headersComplete() ||
        cs->parser.messageComplete()) {
      continue;
    }
    if (cs->parser.message().isPost()) {
      if (opts_.pprEnabled) {
        respondPartialPost(cs);
      } else {
        respond500(cs);
      }
    }
  }

  // Drain-deadline watchdog: the drain phase must be bounded even if
  // the orchestrator stalls — a straggler holding a connection open
  // must not postpone the restart indefinitely.
  if (opts_.drainDeadline > Duration{0}) {
    drainDeadlineTimer_ = loop_.runAfter(opts_.drainDeadline, [this] {
      drainDeadlineTimer_ = 0;
      if (!conns_.empty()) {
        bump("drain_deadline_exceeded");
        if (metrics_) {
          metrics_->counter(opts_.name + ".drain_forced_closes")
              .add(conns_.size());
        }
      }
      terminate();
    });
  }
}

void AppServer::respondPartialPost(const std::shared_ptr<ConnState>& cs) {
  const http::Request& partial = cs->parser.message();
  http::Response res = buildPartialPostResponse(partial, partial.body);
  bump("ppr_379_sent");
  uint64_t traceId = 0;
  uint64_t parentSpan = 0;
  parseReqTrace(partial, traceId, parentSpan);
  recordAppSpan(spans_, traceId, parentSpan, trace::SpanKind::kAppDrainBounce,
                traceInstance_, cs->reqStartNs, http::kPartialPostStatus);
  Buffer out;
  http::serialize(res, out);
  cs->conn->send(out.readable());
  // Deliberately no close: the downstream proxy may still be writing
  // body chunks, and a full close would RST the unread 379 away. The
  // proxy closes the connection once it has read the response; anything
  // left is reset at terminate().
  cs->closing = true;
}

void AppServer::respond500(const std::shared_ptr<ConnState>& cs) {
  http::Response res;
  res.status = 500;
  res.reason = "Internal Server Error";
  res.body = "server restarting";
  bump("500_sent");
  Buffer out;
  http::serialize(res, out);
  cs->conn->send(out.readable());
  cs->closing = true;  // same RST hazard as the 379 path
}

void AppServer::terminate() {
  if (drainDeadlineTimer_ != 0) {
    loop_.cancelTimer(drainDeadlineTimer_);
    drainDeadlineTimer_ = 0;
  }
  if (draining_ && metrics_) {
    metrics_->timeline().end(opts_.name, "app_drain");
  }
  bump("terminated");
  // Remaining connections are reset — this is what produces TCP RSTs
  // and user-visible disruption in the HardRestart baseline.
  std::vector<std::shared_ptr<ConnState>> remaining(conns_.begin(),
                                                    conns_.end());
  for (const auto& cs : remaining) {
    bump("conn_reset");
    cs->conn->close(std::make_error_code(std::errc::connection_reset));
  }
  conns_.clear();
  if (acceptor_) {
    acceptor_->close();
  }
}

http::Response buildPartialPostResponse(const http::Request& partial,
                                        std::string partialBody) {
  http::Response res;
  res.status = http::kPartialPostStatus;
  res.reason = std::string(http::kPartialPostReason);

  // Echo the request line.
  res.headers.add(std::string(http::kEchoHeaderPrefix) + "method",
                  partial.method);
  res.headers.add(std::string(http::kEchoHeaderPrefix) + "path",
                  partial.path);

  // Echo every request header. HTTP/2+ pseudo-headers (":path" etc.)
  // get the "pseudo-echo-" prefix per §5.2.
  for (const auto& [name, value] : partial.headers.all()) {
    if (!name.empty() && name[0] == ':') {
      res.headers.add(std::string(http::kPseudoEchoPrefix) + name.substr(1),
                      value);
    } else {
      res.headers.add(std::string(http::kEchoHeaderPrefix) + name, value);
    }
  }
  res.body = std::move(partialBody);
  return res;
}

std::optional<http::Request> reconstructRequestFrom379(
    const http::Response& res) {
  if (!res.isPartialPostReplay()) {
    // §5.2: a bare 379 without the exact status message must be
    // treated as an ordinary (buggy) response, never replayed.
    return std::nullopt;
  }
  http::Request req;
  bool haveMethod = false;
  bool havePath = false;
  for (const auto& [name, value] : res.headers.all()) {
    std::string_view n(name);
    if (n.rfind(http::kPseudoEchoPrefix, 0) == 0) {
      std::string orig = ":" + name.substr(http::kPseudoEchoPrefix.size());
      if (orig == ":method") {
        req.method = value;
        haveMethod = true;
      } else if (orig == ":path") {
        req.path = value;
        havePath = true;
      } else {
        req.headers.add(orig, value);
      }
      continue;
    }
    if (n.rfind(http::kEchoHeaderPrefix, 0) == 0) {
      std::string orig = name.substr(http::kEchoHeaderPrefix.size());
      if (http::Headers::nameEquals(orig, "method")) {
        req.method = value;
        haveMethod = true;
      } else if (http::Headers::nameEquals(orig, "path")) {
        req.path = value;
        havePath = true;
      } else if (!isResponseOwnHeader(orig)) {
        req.headers.add(orig, value);
      }
      continue;
    }
    // Headers belonging to the 379 response itself are skipped.
  }
  if (!haveMethod || !havePath) {
    return std::nullopt;
  }
  req.body = res.body;  // the partial body received so far
  return req;
}

}  // namespace zdr::appserver
